//! The kernel engine and device profiles.
//!
//! # Arbitration model
//!
//! Each client (CUDA context) owns a submission queue. The device executes
//! one kernel at a time — large-batch DNN kernels saturate the GPU, so the
//! paper argues only temporal multiplexing matters — and, whenever it goes
//! idle, picks the next kernel from a non-empty queue with probability
//! proportional to a per-context *arbitration bias*. The bias models the
//! driver- and OS-level nondeterminism the paper blames for TF-Serving's
//! unpredictable finish times (Figure 3): the driver cannot tell DNNs
//! apart, and which context's kernels it favours varies run to run. Under
//! Olympian only one job has kernels queued at a time, so the bias becomes
//! irrelevant — exactly why time-slicing restores predictability.
//!
//! A fixed inter-kernel gap models per-launch driver/hardware setup time;
//! it is why measured GPU utilization sits below 100% even under saturation.

use simtime::{DetRng, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Opaque client/context identity attached to kernels.
///
/// The *scheduling* layer never consults it beyond arbitration (the real
/// driver cannot tell which DNN a kernel belongs to); the measurement layer
/// uses it for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobTag(pub u64);

/// A GPU hardware model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    /// Execution-time multiplier relative to the reference device (GTX 1080
    /// Ti = 1.0; slower devices have larger factors).
    speed_factor: f64,
    /// On-board memory in bytes.
    memory_bytes: u64,
    /// Stream multiprocessor count (reported, not scheduled over — see the
    /// serial-execution rationale in the module docs).
    sm_count: u32,
    /// Relative run-to-run jitter (σ) applied to each kernel's duration.
    duration_jitter: f64,
    /// Idle setup time between consecutive kernels.
    kernel_gap: SimDuration,
    /// Relative spread (lognormal σ) of a per-*device-instance* clock factor
    /// modelling boost-clock/thermal variation between runs — the reason a
    /// model's measured GPU duration varies ~1.7% across runs (paper §4.4).
    clock_wobble: f64,
}

impl DeviceProfile {
    /// The paper's primary platform: GeForce GTX 1080 Ti (11 GB).
    pub fn gtx_1080_ti() -> Self {
        DeviceProfile {
            name: "gtx-1080-ti".into(),
            speed_factor: 1.0,
            memory_bytes: 11 * 1024 * 1024 * 1024,
            sm_count: 28,
            duration_jitter: 0.01,
            kernel_gap: SimDuration::from_micros(6),
            clock_wobble: 0.017,
        }
    }

    /// The paper's portability platform: NVIDIA Titan X (12 GB), slightly
    /// slower per kernel than the 1080 Ti for inference workloads.
    pub fn titan_x() -> Self {
        DeviceProfile {
            name: "titan-x".into(),
            speed_factor: 1.22,
            memory_bytes: 12 * 1024 * 1024 * 1024,
            sm_count: 24,
            duration_jitter: 0.01,
            kernel_gap: SimDuration::from_micros(7),
            clock_wobble: 0.017,
        }
    }

    /// A custom device.
    ///
    /// # Panics
    ///
    /// Panics if `speed_factor` is not positive or `duration_jitter` is
    /// negative.
    pub fn custom(
        name: impl Into<String>,
        speed_factor: f64,
        memory_bytes: u64,
        sm_count: u32,
        duration_jitter: f64,
    ) -> Self {
        assert!(speed_factor > 0.0, "speed factor must be positive");
        assert!(duration_jitter >= 0.0, "jitter must be non-negative");
        DeviceProfile {
            name: name.into(),
            speed_factor,
            memory_bytes,
            sm_count,
            duration_jitter,
            kernel_gap: SimDuration::ZERO,
            clock_wobble: 0.0,
        }
    }

    /// Sets the inter-kernel setup gap.
    pub fn with_kernel_gap(mut self, gap: SimDuration) -> Self {
        self.kernel_gap = gap;
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution-time multiplier.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// On-board memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Stream multiprocessor count.
    pub fn sm_count(&self) -> u32 {
        self.sm_count
    }

    /// Idle setup time between consecutive kernels.
    pub fn kernel_gap(&self) -> SimDuration {
        self.kernel_gap
    }

    /// Sets the run-to-run clock wobble (lognormal σ).
    ///
    /// # Panics
    ///
    /// Panics if `wobble` is negative.
    pub fn with_clock_wobble(mut self, wobble: f64) -> Self {
        assert!(wobble >= 0.0, "negative clock wobble");
        self.clock_wobble = wobble;
        self
    }

    /// The run-to-run clock wobble (lognormal σ).
    pub fn clock_wobble(&self) -> f64 {
        self.clock_wobble
    }
}

#[derive(Debug, Clone)]
struct Pending {
    payload: u64,
    duration: SimDuration,
    factor: f64,
}

/// Per-context state, stored densely so the arbitration scan and the busy
/// accounting never touch a hash table on the kernel hot path.
#[derive(Debug)]
struct TagState {
    tag: JobTag,
    queue: VecDeque<Pending>,
    bias: f64,
    busy: SimDuration,
    /// Whether this tag has entered `order` (set on its first enqueue).
    ordered: bool,
}

impl TagState {
    fn new(tag: JobTag) -> Self {
        TagState {
            tag,
            queue: VecDeque::new(),
            bias: 1.0,
            busy: SimDuration::ZERO,
            ordered: false,
        }
    }
}

/// Tags below this value index a dense lookup vector; rarer larger tags fall
/// back to the hash map. Serving clients are numbered densely from zero, so
/// in practice every lookup takes the vector path.
const FAST_TAGS: u64 = 1 << 16;

/// A kernel the device has started executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedKernel {
    /// Caller-provided identity from [`GpuDevice::enqueue`].
    pub payload: u64,
    /// Owning context.
    pub tag: JobTag,
    /// Execution start (≥ the pump time; possibly delayed by the
    /// inter-kernel gap).
    pub start: SimTime,
    /// Execution end.
    pub end: SimTime,
    /// Actual duration (`end - start`).
    pub duration: SimDuration,
}

/// The simulated GPU: per-context submission queues in front of a serial,
/// non-preemptive execution engine.
///
/// Drive it with the enqueue/pump protocol:
///
/// 1. [`enqueue`](Self::enqueue) a kernel, then call
///    [`try_start`](Self::try_start);
/// 2. when a started kernel's `end` time arrives, call
///    [`try_start`](Self::try_start) again.
///
/// `try_start` returns at most one kernel per call and only when the engine
/// is free, so following the protocol keeps exactly one completion
/// outstanding.
#[derive(Debug)]
pub struct GpuDevice {
    profile: DeviceProfile,
    rng: DetRng,
    /// Dense per-context state; an index, once assigned, is stable for the
    /// device's lifetime.
    tags: Vec<TagState>,
    /// Small-tag lookup: `fast_index[tag.0]` is the tag's index into `tags`
    /// (`u32::MAX` = unassigned). Grown on demand, capped at [`FAST_TAGS`].
    fast_index: Vec<u32>,
    /// Fallback lookup for tags at or above [`FAST_TAGS`].
    slow_index: HashMap<u64, u32>,
    /// First-enqueue ordering of tag indices — the deterministic candidate
    /// iteration order for weighted picks.
    order: Vec<u32>,
    busy_until: SimTime,
    started_any: bool,
    /// This instance's clock factor, drawn once from the profile's wobble.
    run_clock_factor: f64,
    busy_total: SimDuration,
    kernel_count: u64,
}

impl GpuDevice {
    /// Creates a device with the given profile; `seed` drives kernel-duration
    /// jitter and arbitration picks.
    pub fn new(profile: DeviceProfile, seed: u64) -> Self {
        let mut rng = DetRng::new(seed ^ 0xD00D_CE00);
        let run_clock_factor = if profile.clock_wobble > 0.0 {
            rng.lognormal(0.0, profile.clock_wobble)
        } else {
            1.0
        };
        GpuDevice {
            profile,
            rng,
            tags: Vec::new(),
            fast_index: Vec::new(),
            slow_index: HashMap::new(),
            order: Vec::new(),
            busy_until: SimTime::ZERO,
            started_any: false,
            run_clock_factor,
            busy_total: SimDuration::ZERO,
            kernel_count: 0,
        }
    }

    /// Index of `tag` in `tags`, if it has one.
    #[inline]
    fn tag_slot(&self, tag: JobTag) -> Option<u32> {
        if tag.0 < FAST_TAGS {
            match self.fast_index.get(tag.0 as usize) {
                Some(&i) if i != u32::MAX => Some(i),
                _ => None,
            }
        } else {
            self.slow_index.get(&tag.0).copied()
        }
    }

    /// Index of `tag`, creating its dense slot on first sight.
    fn tag_slot_or_insert(&mut self, tag: JobTag) -> u32 {
        if let Some(i) = self.tag_slot(tag) {
            return i;
        }
        let i = self.tags.len() as u32;
        self.tags.push(TagState::new(tag));
        if tag.0 < FAST_TAGS {
            if self.fast_index.len() <= tag.0 as usize {
                self.fast_index.resize(tag.0 as usize + 1, u32::MAX);
            }
            self.fast_index[tag.0 as usize] = i;
        } else {
            self.slow_index.insert(tag.0, i);
        }
        i
    }

    /// The device's hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Sets a context's arbitration bias (default 1.0). Higher values make
    /// the driver favour this context's queue when picking the next kernel.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn set_bias(&mut self, tag: JobTag, weight: f64) {
        assert!(weight > 0.0 && weight.is_finite(), "bias must be positive");
        let i = self.tag_slot_or_insert(tag);
        self.tags[i as usize].bias = weight;
    }

    /// Queues a kernel with mean duration `true_duration`; `payload` is
    /// returned verbatim when the kernel starts. `extra_factor` models
    /// transient slowdowns (e.g. the online profiler's instrumentation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `extra_factor` is not positive.
    pub fn enqueue(
        &mut self,
        tag: JobTag,
        payload: u64,
        true_duration: SimDuration,
        extra_factor: f64,
    ) {
        debug_assert!(extra_factor > 0.0, "extra factor must be positive");
        let i = self.tag_slot_or_insert(tag) as usize;
        let t = &mut self.tags[i];
        if !t.ordered {
            t.ordered = true;
            self.order.push(i as u32);
        }
        t.queue.push_back(Pending {
            payload,
            duration: true_duration,
            factor: extra_factor,
        });
    }

    /// Starts the next kernel if the engine is free at `now` and any queue
    /// is non-empty. Returns the started kernel's placement; schedule the
    /// next pump at its `end`.
    pub fn try_start(&mut self, now: SimTime) -> Option<StartedKernel> {
        if now < self.busy_until {
            return None;
        }
        let slot = self.pick_tag()? as usize;
        let jitter = if self.profile.duration_jitter > 0.0 {
            self.rng.jitter(self.profile.duration_jitter)
        } else {
            1.0
        };
        let t = &mut self.tags[slot];
        let tag = t.tag;
        let pending = t.queue.pop_front().expect("picked queue is non-empty");
        let duration = pending
            .duration
            .mul_f64(self.profile.speed_factor * self.run_clock_factor * jitter * pending.factor);
        let ready_at = if self.started_any {
            self.busy_until + self.profile.kernel_gap
        } else {
            SimTime::ZERO
        };
        let start = now.max(ready_at);
        let end = start + duration;
        self.busy_until = end;
        self.started_any = true;
        self.busy_total += duration;
        self.kernel_count += 1;
        t.busy += duration;
        Some(StartedKernel {
            payload: pending.payload,
            tag,
            start,
            end,
            duration,
        })
    }

    /// Weighted pick among non-empty queues, deterministic given the seed.
    /// Returns the picked tag's index into `tags`.
    ///
    /// Two allocation-free passes over the first-enqueue ordering replace
    /// the old candidate vector; the weight arithmetic visits candidates in
    /// the same order with the same float operations, and the RNG is drawn
    /// only on contested picks — so every pick is bit-identical to the
    /// candidate-vector implementation it replaced.
    fn pick_tag(&mut self) -> Option<u32> {
        let mut total = 0.0;
        let mut count = 0usize;
        let mut first = 0u32;
        for &idx in &self.order {
            let t = &self.tags[idx as usize];
            if !t.queue.is_empty() {
                total += t.bias;
                if count == 0 {
                    first = idx;
                }
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        if count == 1 {
            return Some(first);
        }
        let mut x = self.rng.next_f64() * total;
        let mut last = first;
        for &idx in &self.order {
            let t = &self.tags[idx as usize];
            if !t.queue.is_empty() {
                x -= t.bias;
                last = idx;
                if x <= 0.0 {
                    return Some(idx);
                }
            }
        }
        Some(last)
    }

    /// Cancels queued (not yet started) kernels whose payloads appear in
    /// `payloads`, returning how many were removed. Already-started kernels
    /// are unaffected — a real GPU cannot preempt them either (the paper's
    /// overflow argument).
    pub fn cancel_payloads(&mut self, payloads: &std::collections::HashSet<u64>) -> usize {
        let mut removed = 0;
        for t in &mut self.tags {
            let before = t.queue.len();
            t.queue.retain(|p| !payloads.contains(&p.payload));
            removed += before - t.queue.len();
        }
        removed
    }

    /// Number of queued (not yet started) kernels.
    pub fn queued(&self) -> usize {
        self.tags.iter().map(|t| t.queue.len()).sum()
    }

    /// Number of kernels queued by one context.
    pub fn queued_for(&self, tag: JobTag) -> usize {
        self.tag_slot(tag)
            .map_or(0, |i| self.tags[i as usize].queue.len())
    }

    /// Instant at which all *started* work will have drained.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time across all started kernels.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of kernels started.
    pub fn kernel_count(&self) -> u64 {
        self.kernel_count
    }

    /// Total busy time attributed to one context (measurement only).
    pub fn job_busy(&self, tag: JobTag) -> SimDuration {
        self.tag_slot(tag)
            .map_or(SimDuration::ZERO, |i| self.tags[i as usize].busy)
    }

    /// Busy fraction of the window `[0, as_of]`, the quantity `nvidia-smi`
    /// approximates by sampling.
    ///
    /// # Panics
    ///
    /// Panics if `as_of` is earlier than the end of started work (the window
    /// would double-count running kernels) or zero.
    pub fn utilization(&self, as_of: SimTime) -> f64 {
        assert!(as_of > SimTime::ZERO, "empty utilization window");
        assert!(
            as_of >= self.busy_until,
            "utilization window ends before started work drains"
        );
        self.busy_total.as_nanos() as f64 / as_of.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        let profile = DeviceProfile::custom("test", 1.0, 1 << 30, 8, 0.0);
        GpuDevice::new(profile, 7)
    }

    fn run_one(
        gpu: &mut GpuDevice,
        tag: JobTag,
        now: SimTime,
        dur_us: u64,
    ) -> StartedKernel {
        gpu.enqueue(tag, 0, SimDuration::from_micros(dur_us), 1.0);
        gpu.try_start(now).expect("device free")
    }

    #[test]
    fn idle_device_starts_immediately() {
        let mut gpu = device();
        let k = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        assert_eq!(k.start, SimTime::ZERO);
        assert_eq!(k.end, SimTime::from_micros(10));
    }

    #[test]
    fn busy_device_defers_start() {
        let mut gpu = device();
        let a = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        gpu.enqueue(JobTag(2), 7, SimDuration::from_micros(5), 1.0);
        // Pump while busy: nothing starts.
        assert!(gpu.try_start(SimTime::from_micros(3)).is_none());
        // Pump at completion: the queued kernel starts back-to-back.
        let b = gpu.try_start(a.end).expect("free now");
        assert_eq!(b.payload, 7);
        assert_eq!(b.start, a.end);
        assert_eq!(gpu.queued(), 0);
    }

    #[test]
    fn kernel_gap_inserts_idle_time() {
        let profile = DeviceProfile::custom("gappy", 1.0, 1 << 30, 8, 0.0)
            .with_kernel_gap(SimDuration::from_micros(3));
        let mut gpu = GpuDevice::new(profile, 7);
        let a = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        gpu.enqueue(JobTag(1), 0, SimDuration::from_micros(10), 1.0);
        let b = gpu.try_start(a.end).expect("free");
        assert_eq!(b.start, a.end + SimDuration::from_micros(3));
        // Gap time is idle: busy_total only counts execution.
        assert_eq!(gpu.busy_total(), SimDuration::from_micros(20));
    }

    #[test]
    fn fifo_within_one_context() {
        let mut gpu = device();
        gpu.enqueue(JobTag(1), 100, SimDuration::from_micros(1), 1.0);
        gpu.enqueue(JobTag(1), 101, SimDuration::from_micros(1), 1.0);
        let a = gpu.try_start(SimTime::ZERO).unwrap();
        let b = gpu.try_start(a.end).unwrap();
        assert_eq!((a.payload, b.payload), (100, 101));
    }

    #[test]
    fn bias_shifts_service_share() {
        let mut gpu = device();
        gpu.set_bias(JobTag(1), 4.0);
        gpu.set_bias(JobTag(2), 1.0);
        let mut served = [0u32; 2];
        let mut now = SimTime::ZERO;
        for _ in 0..400 {
            // Keep both queues non-empty so every pick is contested.
            if gpu.queued_for(JobTag(1)) == 0 {
                gpu.enqueue(JobTag(1), 1, SimDuration::from_micros(1), 1.0);
            }
            if gpu.queued_for(JobTag(2)) == 0 {
                gpu.enqueue(JobTag(2), 2, SimDuration::from_micros(1), 1.0);
            }
            let k = gpu.try_start(now).unwrap();
            served[(k.tag.0 - 1) as usize] += 1;
            now = k.end;
        }
        let share = served[0] as f64 / 400.0;
        assert!(share > 0.70 && share < 0.90, "biased share {share}");
    }

    #[test]
    fn unknown_bias_defaults_to_one() {
        let mut gpu = device();
        gpu.enqueue(JobTag(9), 0, SimDuration::from_micros(1), 1.0);
        assert!(gpu.try_start(SimTime::ZERO).is_some());
    }

    #[test]
    fn per_job_attribution() {
        let mut gpu = device();
        let a = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        let b = run_one(&mut gpu, JobTag(2), a.end, 30);
        let _c = run_one(&mut gpu, JobTag(1), b.end, 5);
        assert_eq!(gpu.job_busy(JobTag(1)), SimDuration::from_micros(15));
        assert_eq!(gpu.job_busy(JobTag(2)), SimDuration::from_micros(30));
        assert_eq!(gpu.job_busy(JobTag(99)), SimDuration::ZERO);
        assert_eq!(gpu.kernel_count(), 3);
    }

    #[test]
    fn speed_factor_scales_duration() {
        let profile = DeviceProfile::custom("slow", 2.0, 1 << 30, 8, 0.0);
        let mut gpu = GpuDevice::new(profile, 7);
        let k = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        assert_eq!(k.duration, SimDuration::from_micros(20));
    }

    #[test]
    fn utilization_counts_gaps() {
        let mut gpu = device();
        let a = run_one(&mut gpu, JobTag(1), SimTime::ZERO, 10);
        let _b = run_one(&mut gpu, JobTag(1), a.end + SimDuration::from_micros(80), 10);
        let util = gpu.utilization(SimTime::from_micros(100));
        assert!((util - 0.2).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            let mut gpu = GpuDevice::new(DeviceProfile::gtx_1080_ti(), 5);
            gpu.set_bias(JobTag(1), 1.3);
            gpu.set_bias(JobTag(2), 0.8);
            let mut ends = Vec::new();
            let mut now = SimTime::ZERO;
            for i in 0..100 {
                gpu.enqueue(JobTag(1 + i % 2), i, SimDuration::from_micros(50), 1.0);
                if let Some(k) = gpu.try_start(now) {
                    now = k.end;
                    ends.push((k.tag, k.end));
                }
            }
            ends
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn builtin_profiles_are_sane() {
        let g = DeviceProfile::gtx_1080_ti();
        let t = DeviceProfile::titan_x();
        assert!(t.speed_factor() > g.speed_factor(), "Titan X is slower");
        assert!(t.memory_bytes() > g.memory_bytes());
        assert_eq!(g.name(), "gtx-1080-ti");
        assert!(g.kernel_gap() > SimDuration::ZERO);
    }

    #[test]
    fn profile_constructor_table() {
        // One row per constructor: (profile, name, speed, memory, SMs, gap).
        let rows: Vec<(DeviceProfile, &str, f64, u64, u32, SimDuration)> = vec![
            (
                DeviceProfile::gtx_1080_ti(),
                "gtx-1080-ti",
                1.0,
                11 * 1024 * 1024 * 1024,
                28,
                SimDuration::from_micros(6),
            ),
            (
                DeviceProfile::titan_x(),
                "titan-x",
                1.22,
                12 * 1024 * 1024 * 1024,
                24,
                SimDuration::from_micros(7),
            ),
            (
                DeviceProfile::custom("lab", 2.5, 1 << 30, 16, 0.0),
                "lab",
                2.5,
                1 << 30,
                16,
                SimDuration::ZERO,
            ),
        ];
        for (p, name, speed, mem, sms, gap) in rows {
            assert_eq!(p.name(), name);
            assert_eq!(p.speed_factor(), speed, "{name} speed factor");
            assert_eq!(p.memory_bytes(), mem, "{name} memory");
            assert_eq!(p.sm_count(), sms, "{name} SM count");
            assert_eq!(p.kernel_gap(), gap, "{name} kernel gap");
        }
        // The speed factor is relative to the 1080 Ti: the Titan X is
        // slower per kernel (multiplier above 1.0), not faster.
        assert!(DeviceProfile::titan_x().speed_factor() > 1.0);
        assert_eq!(DeviceProfile::gtx_1080_ti().speed_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn custom_profile_rejects_zero_speed() {
        let _ = DeviceProfile::custom("bad", 0.0, 1 << 20, 4, 0.0);
    }

    #[test]
    fn profile_transfer_time_table() {
        // Weight transfer is bytes / (gbps · 1e9): one row per fleet-
        // relevant size at the lifecycle default of 12 GB/s.
        let rows: Vec<(u64, f64, u64)> = vec![
            (12_000_000_000, 12.0, 1_000_000_000), // 12 GB at 12 GB/s = 1 s
            (64 << 20, 12.0, 5_592_405),           // 64 MiB ≈ 5.6 ms
            (0, 12.0, 0),
            (1_000_000_000, 4.0, 250_000_000), // 1 GB at 4 GB/s = 250 ms
        ];
        for (bytes, gbps, want_ns) in rows {
            let got = crate::MemoryPool::transfer_time(bytes, gbps).as_nanos();
            assert_eq!(got, want_ns, "{bytes} bytes at {gbps} GB/s");
        }
    }

    #[test]
    #[should_panic(expected = "drains")]
    fn utilization_mid_kernel_panics() {
        let mut gpu = device();
        run_one(&mut gpu, JobTag(1), SimTime::ZERO, 100);
        gpu.utilization(SimTime::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "bias must be positive")]
    fn non_positive_bias_panics() {
        device().set_bias(JobTag(1), 0.0);
    }
}
