#![deny(missing_docs)]

//! A simulated GPU: device profiles, a serial kernel engine behind a driver
//! FIFO, a memory pool, and utilization accounting.
//!
//! # Model
//!
//! The paper observes (§"GPU multiplexing") that large-batch DNN kernels
//! saturate the GPU's parallelism, so *spatial* multiplexing between jobs is
//! ineffective and only *temporal* multiplexing matters. The device model
//! follows that observation: kernels execute **serially**, each taking its
//! true duration scaled by the device's speed factor plus per-run jitter,
//! with per-context queues arbitrated by a (seeded, per-run) driver bias —
//! the nondeterminism that spreads vanilla TF-Serving's finish times. The
//! driver — like the real one — has no idea which job a kernel belongs to;
//! attribution exists only for measurement.
//!
//! ```
//! use gpusim::{DeviceProfile, GpuDevice, JobTag};
//! use simtime::{SimDuration, SimTime};
//!
//! let mut gpu = GpuDevice::new(DeviceProfile::gtx_1080_ti(), 42);
//! gpu.enqueue(JobTag(0), 7, SimDuration::from_micros(100), 1.0);
//! let exec = gpu.try_start(SimTime::ZERO).expect("device is free");
//! assert_eq!(exec.payload, 7);
//! assert!(exec.end > exec.start);
//! ```

mod device;
mod memory;

pub use device::{DeviceProfile, GpuDevice, JobTag, StartedKernel};
pub use memory::{Allocation, MemoryError, MemoryPool};
