//! GPU memory accounting.
//!
//! The paper's scalability limit (§4.3) is GPU memory: a GTX 1080 Ti holds
//! roughly 45 concurrent clients' model instances. The pool tracks
//! allocations so the serving layer can refuse clients that do not fit.

use simtime::SimDuration;
use std::fmt;

/// Error returned when an allocation does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub available: u64,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for MemoryError {}

/// Handle for a live allocation. Dropping it does *not* free the memory —
/// freeing is explicit through [`MemoryPool::free`], so the pool can verify
/// double-frees instead of masking them.
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    id: u64,
    bytes: u64,
}

impl Allocation {
    /// Size of the allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A simple capacity-tracked GPU memory pool.
///
/// ```
/// use gpusim::MemoryPool;
///
/// let mut pool = MemoryPool::new(1024);
/// let a = pool.alloc(600)?;
/// assert!(pool.alloc(600).is_err());
/// pool.free(a);
/// assert!(pool.alloc(600).is_ok());
/// # Ok::<(), gpusim::MemoryError>(())
/// ```
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    next_id: u64,
    live: std::collections::HashSet<u64>,
    peak: u64,
}

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            next_id: 0,
            live: std::collections::HashSet::new(),
            peak: 0,
        }
    }

    /// Allocates `bytes`, failing (without side effects) if they do not fit.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] when fewer than `bytes` are free.
    pub fn alloc(&mut self, bytes: u64) -> Result<Allocation, MemoryError> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(MemoryError {
                requested: bytes,
                available,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id);
        Ok(Allocation { id, bytes })
    }

    /// Frees a previously returned allocation.
    ///
    /// # Panics
    ///
    /// Panics on double-free (an allocation forged or already freed).
    pub fn free(&mut self, allocation: Allocation) {
        assert!(
            self.live.remove(&allocation.id),
            "double free of GPU allocation {}",
            allocation.id
        );
        self.used -= allocation.bytes;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Time to copy `bytes` over PCIe at `gbps` effective gigabytes/second —
    /// used to model model-load latency.
    pub fn transfer_time(bytes: u64, gbps: f64) -> SimDuration {
        assert!(gbps > 0.0, "transfer rate must be positive");
        SimDuration::from_secs_f64(bytes as f64 / (gbps * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(60).unwrap();
        assert_eq!(pool.used(), 60);
        assert_eq!(pool.available(), 40);
        pool.free(a);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn oom_reports_request_and_available() {
        let mut pool = MemoryPool::new(100);
        let _a = pool.alloc(80).unwrap();
        let err = pool.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
    }

    #[test]
    fn failed_alloc_has_no_side_effects() {
        let mut pool = MemoryPool::new(100);
        let _ = pool.alloc(80).unwrap();
        let _ = pool.alloc(999);
        assert_eq!(pool.used(), 80);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(70).unwrap();
        pool.free(a);
        let _b = pool.alloc(20).unwrap();
        assert_eq!(pool.peak(), 70);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(10).unwrap();
        let forged = Allocation { id: a.id, bytes: a.bytes };
        pool.free(a);
        pool.free(forged);
    }

    #[test]
    fn exact_fit_fills_the_pool() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(100).unwrap();
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.used(), pool.capacity());
        // A zero-byte allocation still fits a full pool.
        let z = pool.alloc(0).unwrap();
        assert_eq!(z.bytes(), 0);
        assert!(pool.alloc(1).is_err());
        pool.free(a);
        pool.free(z);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn free_then_reuse_keeps_accounting_exact() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(40).unwrap();
        let b = pool.alloc(40).unwrap();
        pool.free(a);
        // The freed 40 bytes are immediately reusable; ids never repeat.
        let c = pool.alloc(50).unwrap();
        assert_eq!(pool.used(), 90);
        assert_eq!(pool.peak(), 90);
        pool.free(b);
        pool.free(c);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 90);
    }

    #[test]
    fn memory_error_displays_request_and_availability() {
        let mut pool = MemoryPool::new(64);
        let _a = pool.alloc(50).unwrap();
        let err = pool.alloc(32).unwrap_err();
        assert_eq!(
            err.to_string(),
            "out of GPU memory: requested 32 bytes, 14 available"
        );
        // MemoryError is a real std error with no wrapped source.
        let dynerr: &dyn std::error::Error = &err;
        assert!(dynerr.source().is_none());
    }

    #[test]
    fn transfer_time_scales() {
        let t = MemoryPool::transfer_time(12_000_000_000, 12.0);
        assert_eq!(t, SimDuration::from_secs(1));
    }
}
