//! Fixed-width ASCII tables and bar charts for experiment output.
//!
//! The figure binaries print the same *series* the paper plots; since the
//! harness is terminal-only, bar charts stand in for the paper's bar figures.

/// Renders a fixed-width ASCII table.
///
/// ```
/// use metrics::table::render_table;
///
/// let out = render_table(
///     &["model", "nodes"],
///     &[vec!["inception".into(), "15599".into()]],
/// );
/// assert!(out.contains("inception"));
/// assert!(out.starts_with('+'));
/// ```
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width {} != header width {}",
            row.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let render_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            s.push(' ');
            s.push_str(cell);
            s.push_str(&" ".repeat(w - cell.len() + 1));
            s.push('|');
        }
        s
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&render_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Renders a horizontal ASCII bar chart: one labelled bar per `(label, value)`
/// pair, scaled so the longest bar is `width` characters.
///
/// ```
/// use metrics::table::render_bars;
///
/// let chart = render_bars(&[("a".into(), 1.0), ("b".into(), 2.0)], 10);
/// assert!(chart.lines().count() == 2);
/// ```
///
/// # Panics
///
/// Panics if `width` is zero or any value is negative/NaN.
pub fn render_bars(items: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "bar width must be positive");
    assert!(
        items.iter().all(|(_, v)| v.is_finite() && *v >= 0.0),
        "bar values must be non-negative and finite"
    );
    let max_val = items.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = if max_val == 0.0 {
            0
        } else {
            ((value / max_val) * width as f64).round() as usize
        };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.3}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders an ASCII Gantt chart: one labelled row per series of `[start,
/// end)` spans over a shared `[0, horizon)` window, `width` characters wide.
/// Spans are drawn with `#`; sub-cell spans round to one cell.
///
/// ```
/// use metrics::table::render_gantt;
///
/// let chart = render_gantt(
///     &[("a".into(), vec![(0.0, 0.25)]), ("b".into(), vec![(0.5, 1.0)])],
///     1.0,
///     8,
/// );
/// assert_eq!(chart.lines().count(), 2);
/// assert!(chart.lines().next().unwrap().contains("##"));
/// ```
///
/// # Panics
///
/// Panics if `horizon` or `width` is zero, or any span is inverted, not
/// finite, or outside `[0, horizon]`.
pub fn render_gantt(rows: &[(String, Vec<(f64, f64)>)], horizon: f64, width: usize) -> String {
    assert!(horizon > 0.0 && horizon.is_finite(), "bad horizon {horizon}");
    assert!(width > 0, "gantt width must be positive");
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, spans) in rows {
        let mut cells = vec![b' '; width];
        for &(start, end) in spans {
            assert!(
                start.is_finite() && end.is_finite() && start <= end,
                "inverted span {start}..{end}"
            );
            assert!(
                (0.0..=horizon).contains(&start) && end <= horizon,
                "span {start}..{end} outside horizon {horizon}"
            );
            let a = ((start / horizon) * width as f64).floor() as usize;
            let b = (((end / horizon) * width as f64).ceil() as usize).min(width);
            for cell in cells.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
                *cell = b'#';
            }
        }
        let bar = String::from_utf8(cells).expect("ASCII cells");
        out.push_str(&format!("{label:<label_w$} |{bar}|\n"));
    }
    out
}

/// Formats a float series as `x<TAB>y` lines, the raw data behind a figure,
/// convenient for piping into external plotting tools.
pub fn render_series(series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (x, y) in series {
        out.push_str(&format!("{x:.6}\t{y:.6}\n"));
    }
    out
}

/// ASCII level ramp used by [`render_sparkline`], lowest to highest.
const SPARK_RAMP: &[u8] = b" .:-=+*#@";

/// Renders a one-line ASCII sparkline: one character per value, scaled to
/// the sample's own finite `[min, max]` range.
///
/// Degenerate inputs degrade instead of failing: a flat series (all
/// values equal — including a single point) renders entirely at the
/// middle level rather than dividing by its zero range, and non-finite
/// values (`NaN`, `±inf`) render as the middle level without entering
/// the scaling arithmetic — the output is always plain ASCII of the
/// input's length, never a panic.
///
/// ```
/// use metrics::table::render_sparkline;
///
/// let line = render_sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(line.len(), 4);
/// assert!(line.ends_with('@'));
/// assert_eq!(render_sparkline(&[7.0, 7.0, 7.0]), "===");
/// assert_eq!(render_sparkline(&[f64::NAN, 0.0, 4.0]), "= @");
/// ```
pub fn render_sparkline(values: &[f64]) -> String {
    let mid = SPARK_RAMP[SPARK_RAMP.len() / 2] as char;
    let mut finite = values.iter().copied().filter(|v| v.is_finite());
    let Some(first) = finite.next() else {
        // Empty input or nothing finite to scale against.
        return values.iter().map(|_| mid).collect();
    };
    let (min, max) = finite.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v)));
    let range = max - min;
    let top = (SPARK_RAMP.len() - 1) as f64;
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return mid;
            }
            let level = if range == 0.0 {
                SPARK_RAMP.len() / 2
            } else {
                ((((v - min) / range) * top).round() as usize).min(SPARK_RAMP.len() - 1)
            };
            SPARK_RAMP[level] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_expands_to_widest_cell() {
        let out = render_table(
            &["a", "long-header"],
            &[vec!["wider-than-header".into(), "x".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn bars_scale_to_width() {
        let out = render_bars(&[("x".into(), 5.0), ("y".into(), 10.0)], 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 20);
    }

    #[test]
    fn bars_all_zero() {
        let out = render_bars(&[("x".into(), 0.0)], 10);
        assert_eq!(out.lines().count(), 1);
        assert_eq!(out.matches('#').count(), 0);
    }

    #[test]
    fn gantt_places_spans_proportionally() {
        let out = render_gantt(
            &[
                ("x".into(), vec![(0.0, 0.5)]),
                ("y".into(), vec![(0.5, 1.0)]),
            ],
            1.0,
            10,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("|#####     |"), "{out}");
        assert!(lines[1].contains("|     #####|"), "{out}");
    }

    #[test]
    fn gantt_tiny_span_still_visible() {
        let out = render_gantt(&[("x".into(), vec![(0.42, 0.42001)])], 1.0, 10);
        assert_eq!(out.matches('#').count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside horizon")]
    fn gantt_rejects_out_of_window_spans() {
        render_gantt(&[("x".into(), vec![(0.5, 2.0)])], 1.0, 10);
    }

    #[test]
    fn gantt_with_no_rows_renders_nothing() {
        assert_eq!(render_gantt(&[], 1.0, 10), "");
    }

    #[test]
    fn gantt_row_with_no_spans_is_blank() {
        let out = render_gantt(&[("idle".into(), vec![])], 1.0, 8);
        assert_eq!(out, "idle |        |\n");
    }

    #[test]
    fn gantt_spans_at_window_edges_stay_inside() {
        // Spans touching 0.0 and the horizon exactly must render without
        // panicking and without spilling past the bar.
        let out = render_gantt(
            &[("x".into(), vec![(0.0, 0.1), (0.9, 1.0)])],
            1.0,
            10,
        );
        assert_eq!(out, "x |#        #|\n");
        // A zero-length span exactly at the horizon marks no cell (there is
        // no cell to its right) but is still accepted.
        let edge = render_gantt(&[("y".into(), vec![(1.0, 1.0)])], 1.0, 10);
        assert_eq!(edge.matches('#').count(), 0);
        // A full-window span fills every cell.
        let full = render_gantt(&[("z".into(), vec![(0.0, 1.0)])], 1.0, 10);
        assert_eq!(full.matches('#').count(), 10);
    }

    #[test]
    fn sparkline_scales_to_range() {
        let line = render_sparkline(&[0.0, 4.0, 8.0]);
        assert_eq!(line.len(), 3);
        assert!(line.starts_with(' '));
        assert!(line.ends_with('@'));
    }

    #[test]
    fn sparkline_flat_and_empty() {
        assert_eq!(render_sparkline(&[]), "");
        let flat = render_sparkline(&[5.0; 4]);
        assert_eq!(flat, "====", "flat series renders the mid band");
    }

    #[test]
    fn sparkline_single_point_is_mid_band() {
        assert_eq!(render_sparkline(&[3.25]), "=");
        assert_eq!(render_sparkline(&[0.0]), "=");
    }

    #[test]
    fn sparkline_nonfinite_degrades_to_mid_band() {
        // NaN and infinities render as the mid level and never reach the
        // scaling arithmetic; finite neighbours still scale normally.
        assert_eq!(render_sparkline(&[1.0, f64::NAN]), "==");
        assert_eq!(render_sparkline(&[f64::NAN, f64::INFINITY]), "==");
        let line = render_sparkline(&[0.0, f64::NEG_INFINITY, 8.0]);
        assert_eq!(line, " =@");
        assert!(line.is_ascii());
    }

    #[test]
    fn sparkline_output_is_nan_free_ascii_of_input_length() {
        let inputs: &[&[f64]] = &[
            &[],
            &[f64::NAN],
            &[f64::NAN, f64::NAN],
            &[1.0, 2.0, f64::INFINITY, -1.0],
            &[-0.0, 0.0],
        ];
        for vals in inputs {
            let line = render_sparkline(vals);
            assert_eq!(line.chars().count(), vals.len());
            assert!(line.chars().all(|c| SPARK_RAMP.contains(&(c as u8))));
        }
    }

    #[test]
    fn series_lines() {
        let out = render_series(&[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("1.000000\t2.000000"));
    }
}
