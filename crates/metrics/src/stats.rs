//! Summary statistics, fairness indices and least-squares fitting.

use std::fmt;

/// Summary statistics over a sample of `f64` values.
///
/// ```
/// use metrics::Summary;
///
/// let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    median: f64,
}

impl Summary {
    /// Computes summary statistics of the sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn of<I>(values: I) -> Summary
    where
        I: IntoIterator<Item = f64>,
    {
        let v: Vec<f64> = values.into_iter().collect();
        assert!(!v.is_empty(), "summary of empty sample");
        assert!(v.iter().all(|x| !x.is_nan()), "summary of NaN sample");
        Summary::of_clean(v)
    }

    /// Non-panicking [`of`](Summary::of): `None` when the sample is empty
    /// or contains NaN. Online paths (telemetry snapshots over possibly
    /// idle windows) use this instead of the asserting constructor.
    ///
    /// ```
    /// use metrics::Summary;
    ///
    /// assert!(Summary::try_of([]).is_none());
    /// assert!(Summary::try_of([f64::NAN]).is_none());
    /// assert_eq!(Summary::try_of([3.0]).unwrap().mean(), 3.0);
    /// ```
    pub fn try_of<I>(values: I) -> Option<Summary>
    where
        I: IntoIterator<Item = f64>,
    {
        let v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() || v.iter().any(|x| x.is_nan()) {
            return None;
        }
        Some(Summary::of_clean(v))
    }

    /// Shared implementation: `v` is non-empty and NaN-free.
    fn of_clean(mut v: Vec<f64>) -> Summary {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        // Population standard deviation (matches how the paper reports spread
        // over a fixed set of clients).
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        };
        Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            max: v[n - 1],
            median,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Coefficient of variation (`std_dev / mean`), the "σ/µ" the paper
    /// quotes for quantum stability; 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        self.median
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} ({:.1}%) min={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev,
            self.cv() * 100.0,
            self.min,
            self.max
        )
    }
}

/// Jain's fairness index over per-client allocations: 1.0 is perfectly fair,
/// `1/n` is maximally unfair.
///
/// ```
/// use metrics::jain_fairness;
///
/// assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
/// assert!(jain_fairness(&[1.0, 0.0, 0.0]) < 0.34);
/// ```
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "fairness of empty sample");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Non-panicking [`jain_fairness`]: `None` on an empty or NaN-tainted
/// sample.
///
/// ```
/// use metrics::try_jain_fairness;
///
/// assert!(try_jain_fairness(&[]).is_none());
/// assert_eq!(try_jain_fairness(&[2.0, 2.0]), Some(1.0));
/// ```
pub fn try_jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    Some(jain_fairness(xs))
}

/// Ratio of the largest to the smallest sample — the paper's "finish times
/// vary by up to 1.7x" style metric.
///
/// # Panics
///
/// Panics if `xs` is empty or the smallest value is not positive.
pub fn max_min_ratio(xs: &[f64]) -> f64 {
    let s = Summary::of(xs.iter().copied());
    assert!(s.min() > 0.0, "max/min ratio requires positive samples");
    s.max() / s.min()
}

/// Non-panicking [`max_min_ratio`]: `None` when the sample is empty,
/// contains NaN, or its smallest value is not positive.
///
/// ```
/// use metrics::try_max_min_ratio;
///
/// assert!(try_max_min_ratio(&[]).is_none());
/// assert!(try_max_min_ratio(&[0.0, 1.0]).is_none());
/// assert_eq!(try_max_min_ratio(&[2.0, 4.0]), Some(2.0));
/// ```
pub fn try_max_min_ratio(xs: &[f64]) -> Option<f64> {
    let s = Summary::try_of(xs.iter().copied())?;
    if s.min() <= 0.0 {
        return None;
    }
    Some(s.max() / s.min())
}

/// Ordinary least-squares fit `y = intercept + slope * x`.
///
/// Returns `(intercept, slope)`. Used by the profiler's linear batch-size
/// cost model (Figure 20 of the paper).
///
/// ```
/// use metrics::linear_fit;
///
/// let (a, b) = linear_fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]);
/// assert!((a - 1.0).abs() < 1e-9);
/// assert!((b - 2.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics with fewer than two points or when all `x` are identical.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "linear fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "linear fit is degenerate (all x equal)");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of([7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of([5.0, 1.0, 3.0]);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(std::iter::empty());
    }

    #[test]
    fn jain_bounds() {
        let even = jain_fairness(&[5.0; 10]);
        assert!((even - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_all_zero_is_fair() {
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn max_min_ratio_works() {
        assert!((max_min_ratio(&[2.0, 3.4]) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn try_of_mirrors_of_without_panicking() {
        assert_eq!(Summary::try_of([]), None);
        assert_eq!(Summary::try_of([1.0, f64::NAN]), None);
        let a = Summary::try_of([1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Summary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn try_jain_handles_degenerate_samples() {
        assert_eq!(try_jain_fairness(&[]), None);
        assert_eq!(try_jain_fairness(&[1.0, f64::NAN]), None);
        assert_eq!(try_jain_fairness(&[0.0, 0.0]), Some(1.0));
        let some = try_jain_fairness(&[1.0, 1.0, 1.0]).unwrap();
        assert!((some - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_max_min_ratio_handles_degenerate_samples() {
        assert_eq!(try_max_min_ratio(&[]), None);
        assert_eq!(try_max_min_ratio(&[-1.0, 2.0]), None);
        assert_eq!(try_max_min_ratio(&[1.0, f64::NAN]), None);
        assert!((try_max_min_ratio(&[2.0, 3.4]).unwrap() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 4.0 + 0.5 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 4.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_fit_degenerate_panics() {
        linear_fit(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
