#![deny(missing_docs)]

//! Statistics and reporting helpers for the Olympian experiment harness.
//!
//! Every figure and table binary in `crates/bench` funnels its raw
//! measurements through this crate: summary statistics ([`Summary`]),
//! empirical CDFs ([`Cdf`]), fairness indices ([`jain_fairness`]) and
//! fixed-width ASCII tables/bars ([`table`]).

mod cdf;
mod stats;
pub mod table;

pub use cdf::Cdf;
pub use stats::{
    jain_fairness, linear_fit, max_min_ratio, try_jain_fairness, try_max_min_ratio, Summary,
};
