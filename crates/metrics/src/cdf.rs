//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples.
///
/// Used to regenerate Figure 4 of the paper (node-duration CDFs) and for
/// assertions like "80% of nodes run for less than 20 µs".
///
/// ```
/// use metrics::Cdf;
///
/// let cdf = Cdf::of([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn of<I>(values: I) -> Cdf
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        assert!(!sorted.is_empty(), "CDF of empty sample");
        assert!(sorted.iter().all(|x| !x.is_nan()), "CDF of NaN sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples (never true for a constructed CDF,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples strictly below `x`, in `[0, 1]`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Evaluates the CDF at `n` evenly spaced x positions spanning the sample
    /// range, returning `(x, F(x))` pairs — the series a plotting tool needs.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "series needs at least two points");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                // Use <= at the far end so the series reaches 1.0.
                let frac = if i == n - 1 {
                    1.0
                } else {
                    self.fraction_below(x)
                };
                (x, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_below_is_monotone() {
        let cdf = Cdf::of((1..=100).map(f64::from));
        assert_eq!(cdf.fraction_below(0.0), 0.0);
        assert_eq!(cdf.fraction_below(50.5), 0.5);
        assert_eq!(cdf.fraction_below(1_000.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::of([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.5), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
    }

    #[test]
    fn series_spans_range_and_ends_at_one() {
        let cdf = Cdf::of([0.0, 5.0, 10.0]);
        let s = cdf.series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10], (10.0, 1.0));
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        let _ = Cdf::of(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_panics() {
        let _ = Cdf::of([1.0, f64::NAN]);
    }

    #[test]
    fn single_sample_is_degenerate_but_consistent() {
        let cdf = Cdf::of([7.0]);
        assert_eq!(cdf.len(), 1);
        assert!(!cdf.is_empty());
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(cdf.quantile(q), 7.0);
        }
        assert_eq!(cdf.fraction_below(7.0), 0.0, "strictly below");
        assert_eq!(cdf.fraction_below(7.0 + f64::EPSILON * 8.0), 1.0);
        // A zero-width range still yields a well-formed, non-decreasing series.
        let s = cdf.series(2);
        assert_eq!(s, vec![(7.0, 0.0), (7.0, 1.0)]);
    }

    #[test]
    fn ties_count_together() {
        let cdf = Cdf::of([5.0, 5.0, 5.0, 1.0]);
        assert_eq!(cdf.fraction_below(5.0), 0.25);
        assert_eq!(cdf.fraction_below(5.1), 1.0);
        assert_eq!(cdf.quantile(0.5), 5.0);
        assert_eq!(cdf.quantile(0.25), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        Cdf::of([1.0]).quantile(1.5);
    }
}
