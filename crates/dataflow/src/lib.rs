#![deny(missing_docs)]

//! Dataflow graphs: the TensorFlow-graph substrate of the Olympian
//! reproduction.
//!
//! A [`Graph`] is an immutable DAG of [`Node`]s. Each node carries:
//!
//! * an operation kind ([`OpKind`]) — convolution, matmul, decode, …
//! * a [`Placement`] — CPU or GPU, mirroring TensorFlow's device placement,
//! * a *true* execution duration (what the simulated device will take), and
//! * a *true* cost (what TensorFlow's cost-model API would report after an
//!   instrumented run; the paper's `C_j` is the sum of these).
//!
//! The serving engine (crate `serving`) walks graphs with the same
//! breadth-first, readiness-driven processing loop as TF-Serving
//! (Algorithm 1 of the paper); Olympian's scheduler hooks in at node
//! boundaries (Algorithm 2).
//!
//! ```
//! use dataflow::{GraphBuilder, NodeTemplate, OpKind, Placement};
//! use simtime::SimDuration;
//!
//! let mut b = GraphBuilder::new();
//! let decode = b.add_node(NodeTemplate::cpu("decode", OpKind::InputDecode,
//!     SimDuration::from_micros(50)));
//! let conv = b.add_node(NodeTemplate::gpu("conv1", OpKind::Conv2d,
//!     SimDuration::from_micros(200), 3000));
//! b.add_edge(decode, conv).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.gpu_node_count(), 1);
//! ```

mod builder;
mod cost;
mod graph;
mod json;
mod node;

pub use builder::{GraphBuilder, NodeTemplate};
pub use cost::CostModel;
pub use graph::{Graph, GraphError};
pub use node::{Node, NodeId, OpKind, Placement};
