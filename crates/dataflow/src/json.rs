//! JSON conversions for graphs and cost tables.
//!
//! The on-disk formats (servables, profile stores) persist [`Graph`] and
//! [`CostModel`] values. Conversions live here, next to the private fields
//! they serialize; loading re-validates every structural invariant rather
//! than trusting the file.

use crate::cost::CostModel;
use crate::graph::Graph;
use crate::node::{Node, NodeId, OpKind, Placement};
use microjson::{Error, Value};
use simtime::SimDuration;

fn u64_field(v: &Value, key: &str) -> Result<u64, Error> {
    v.field(key)?
        .as_u64()
        .ok_or_else(|| Error::decode(format!("field {key:?} is not a non-negative integer")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, Error> {
    v.field(key)?
        .as_str()
        .ok_or_else(|| Error::decode(format!("field {key:?} is not a string")))
}

fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], Error> {
    v.field(key)?
        .as_array()
        .ok_or_else(|| Error::decode(format!("field {key:?} is not an array")))
}

impl OpKind {
    fn json_name(self) -> &'static str {
        match self {
            OpKind::InputDecode => "InputDecode",
            OpKind::BatchAssemble => "BatchAssemble",
            OpKind::Conv2d => "Conv2d",
            OpKind::MatMul => "MatMul",
            OpKind::BatchNorm => "BatchNorm",
            OpKind::Activation => "Activation",
            OpKind::Pool => "Pool",
            OpKind::Concat => "Concat",
            OpKind::Add => "Add",
            OpKind::Lrn => "Lrn",
            OpKind::Softmax => "Softmax",
            OpKind::Bookkeeping => "Bookkeeping",
        }
    }

    fn from_json_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|op| op.json_name() == name)
    }
}

impl Placement {
    fn json_name(self) -> &'static str {
        match self {
            Placement::Cpu => "Cpu",
            Placement::Gpu => "Gpu",
        }
    }

    fn from_json_name(name: &str) -> Option<Placement> {
        match name {
            "Cpu" => Some(Placement::Cpu),
            "Gpu" => Some(Placement::Gpu),
            _ => None,
        }
    }
}

impl Node {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::str(&self.name)),
            ("op".into(), Value::str(self.op.json_name())),
            ("placement".into(), Value::str(self.placement.json_name())),
            ("duration".into(), Value::UInt(self.duration.as_nanos())),
            ("true_cost".into(), Value::UInt(self.true_cost)),
        ])
    }

    fn from_json(v: &Value) -> Result<Node, Error> {
        let op_name = str_field(v, "op")?;
        let op = OpKind::from_json_name(op_name)
            .ok_or_else(|| Error::decode(format!("unknown op kind {op_name:?}")))?;
        let placement_name = str_field(v, "placement")?;
        let placement = Placement::from_json_name(placement_name)
            .ok_or_else(|| Error::decode(format!("unknown placement {placement_name:?}")))?;
        Ok(Node {
            name: str_field(v, "name")?.to_string(),
            op,
            placement,
            duration: SimDuration::from_nanos(u64_field(v, "duration")?),
            true_cost: u64_field(v, "true_cost")?,
        })
    }
}

impl Graph {
    /// Converts the graph to its JSON document form.
    pub fn to_json(&self) -> Value {
        let nodes: Vec<Value> = self.nodes.iter().map(Node::to_json).collect();
        let children: Vec<Value> = self
            .children
            .iter()
            .map(|kids| Value::Array(kids.iter().map(|c| Value::UInt(u64::from(c.0))).collect()))
            .collect();
        Value::Object(vec![
            ("nodes".into(), Value::Array(nodes)),
            ("children".into(), Value::Array(children)),
        ])
    }

    /// Rebuilds a graph from [`Graph::to_json`] output, re-deriving parent
    /// counts and GPU-node totals and re-checking node-id bounds.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on missing fields, wrong types, out-of-range child
    /// ids or an empty node list.
    pub fn from_json(v: &Value) -> Result<Graph, Error> {
        let nodes: Vec<Node> = array_field(v, "nodes")?
            .iter()
            .map(Node::from_json)
            .collect::<Result<_, _>>()?;
        if nodes.is_empty() {
            return Err(Error::decode("graph has no nodes"));
        }
        let raw_children = array_field(v, "children")?;
        if raw_children.len() != nodes.len() {
            return Err(Error::decode(format!(
                "children table covers {} nodes but graph has {}",
                raw_children.len(),
                nodes.len()
            )));
        }
        let mut children: Vec<Vec<NodeId>> = Vec::with_capacity(nodes.len());
        let mut parent_count = vec![0u32; nodes.len()];
        for kids in raw_children {
            let kids = kids
                .as_array()
                .ok_or_else(|| Error::decode("children entry is not an array"))?;
            let mut ids = Vec::with_capacity(kids.len());
            for kid in kids {
                let idx = kid
                    .as_u64()
                    .ok_or_else(|| Error::decode("child id is not an integer"))?;
                if idx >= nodes.len() as u64 {
                    return Err(Error::decode(format!("child id {idx} out of range")));
                }
                parent_count[idx as usize] += 1;
                ids.push(NodeId(idx as u32));
            }
            children.push(ids);
        }
        let gpu_nodes = nodes.iter().filter(|n| n.placement == Placement::Gpu).count() as u32;
        Ok(Graph {
            nodes,
            children,
            parent_count,
            gpu_nodes,
        })
    }
}

impl CostModel {
    /// Converts the cost table to a JSON array of per-node costs.
    pub fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|(_, c)| Value::UInt(c)).collect())
    }

    /// Rebuilds a cost table from [`CostModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the value is not an array of non-negative
    /// integers.
    pub fn from_json(v: &Value) -> Result<CostModel, Error> {
        let costs = v
            .as_array()
            .ok_or_else(|| Error::decode("cost table is not an array"))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .ok_or_else(|| Error::decode("cost is not a non-negative integer"))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(CostModel::from_costs(costs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NodeTemplate};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeTemplate::cpu(
            "in",
            OpKind::InputDecode,
            SimDuration::from_micros(5),
        ));
        let l = b.add_node(NodeTemplate::gpu(
            "left",
            OpKind::Conv2d,
            SimDuration::from_micros(20),
            300,
        ));
        let r = b.add_node(NodeTemplate::gpu(
            "right",
            OpKind::Pool,
            SimDuration::from_micros(10),
            150,
        ));
        let out = b.add_node(NodeTemplate::gpu(
            "out",
            OpKind::Concat,
            SimDuration::from_micros(2),
            30,
        ));
        b.add_edge(a, l).unwrap();
        b.add_edge(a, r).unwrap();
        b.add_edge(l, out).unwrap();
        b.add_edge(r, out).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn graph_roundtrips() {
        let g = diamond();
        let back = Graph::from_json(&g.to_json()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn graph_roundtrips_through_text() {
        let g = diamond();
        let text = g.to_json().to_string();
        let back = Graph::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn out_of_range_child_rejected() {
        let g = diamond();
        let mut v = g.to_json();
        if let Value::Object(fields) = &mut v {
            fields[1].1 = Value::Array(vec![
                Value::Array(vec![Value::UInt(99)]),
                Value::Array(vec![]),
                Value::Array(vec![]),
                Value::Array(vec![]),
            ]);
        }
        assert!(Graph::from_json(&v).is_err());
    }

    #[test]
    fn cost_model_roundtrips() {
        let cm = CostModel::from_costs(vec![0, 17, 4_058_477]);
        let back = CostModel::from_json(&cm.to_json()).unwrap();
        assert_eq!(back, cm);
    }

    #[test]
    fn every_op_kind_roundtrips() {
        for op in OpKind::ALL {
            assert_eq!(OpKind::from_json_name(op.json_name()), Some(op));
        }
    }
}
