//! The cost-model API.
//!
//! Mirrors TensorFlow's cost-model interface that Olympian's profiler
//! consumes: a per-node cost table for one `(model, batch)` configuration.
//! In TensorFlow the table is filled by the CUPTI-based cost profiler; here
//! it is filled by the simulated profiler in `olympian::profiler`, which
//! measures each node's true cost with realistic noise.

use crate::graph::Graph;
use crate::node::NodeId;

/// Per-node cost table for one graph, in TensorFlow cost-model units.
///
/// ```
/// use dataflow::CostModel;
///
/// let cm = CostModel::from_costs(vec![10, 0, 25]);
/// assert_eq!(cm.total(), 35);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    costs: Vec<u64>,
}

impl CostModel {
    /// Builds a cost model from a dense per-node cost vector (indexed by
    /// `NodeId::index`).
    pub fn from_costs(costs: Vec<u64>) -> Self {
        CostModel { costs }
    }

    /// The exact cost model of a graph — the table a noise-free profiler
    /// would produce. Real profiling adds measurement noise on top; tests
    /// use this as the oracle.
    pub fn exact(graph: &Graph) -> Self {
        CostModel {
            costs: graph.nodes.iter().map(|n| n.true_cost).collect(),
        }
    }

    /// Cost of one node; 0 for CPU nodes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the graph this model was built for.
    pub fn cost(&self, id: NodeId) -> u64 {
        self.costs[id.index()]
    }

    /// Sum of all node costs — the paper's `C_j`.
    pub fn total(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Returns a scaled copy: every cost multiplied by `factor` (used by the
    /// linear batch-size model to synthesize tables for unprofiled batches).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn scaled(&self, factor: f64) -> CostModel {
        debug_assert!(factor >= 0.0, "negative cost scale {factor}");
        CostModel {
            costs: self
                .costs
                .iter()
                .map(|&c| (c as f64 * factor).round() as u64)
                .collect(),
        }
    }

    /// Elementwise affine combination `a + b·x` of two tables, used for
    /// per-node linear interpolation across batch sizes.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different lengths.
    pub fn affine_combine(intercepts: &CostModel, slopes: &CostModel, x: f64) -> CostModel {
        assert_eq!(
            intercepts.len(),
            slopes.len(),
            "cost tables cover different graphs"
        );
        CostModel {
            costs: intercepts
                .costs
                .iter()
                .zip(&slopes.costs)
                .map(|(&a, &b)| (a as f64 + b as f64 * x).round().max(0.0) as u64)
                .collect(),
        }
    }

    /// Iterates over `(NodeId, cost)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.costs
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NodeTemplate};
    use crate::node::OpKind;
    use simtime::SimDuration;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeTemplate::cpu("a", OpKind::Bookkeeping, SimDuration::from_nanos(1)));
        let c = b.add_node(NodeTemplate::gpu("c", OpKind::Conv2d, SimDuration::from_nanos(10), 180));
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exact_matches_graph_costs() {
        let g = sample_graph();
        let cm = CostModel::exact(&g);
        assert_eq!(cm.total(), g.total_true_cost());
        assert_eq!(cm.cost(NodeId(0)), 0);
        assert_eq!(cm.cost(NodeId(1)), 180);
    }

    #[test]
    fn scaling_rounds() {
        let cm = CostModel::from_costs(vec![10, 15]);
        let s = cm.scaled(1.5);
        assert_eq!(s.cost(NodeId(0)), 15);
        assert_eq!(s.cost(NodeId(1)), 23);
    }

    #[test]
    fn affine_combination() {
        let a = CostModel::from_costs(vec![100, 0]);
        let b = CostModel::from_costs(vec![2, 5]);
        let c = CostModel::affine_combine(&a, &b, 10.0);
        assert_eq!(c.cost(NodeId(0)), 120);
        assert_eq!(c.cost(NodeId(1)), 50);
    }

    #[test]
    #[should_panic(expected = "different graphs")]
    fn affine_mismatch_panics() {
        let a = CostModel::from_costs(vec![1]);
        let b = CostModel::from_costs(vec![1, 2]);
        CostModel::affine_combine(&a, &b, 1.0);
    }
}
