//! Nodes and operations.

use simtime::SimDuration;
use std::fmt;

/// Identifier of a node within one [`crate::Graph`] (a dense index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Normally node ids come from the graph that owns them; this is for
    /// code that stores per-node tables keyed by dense index (profiles,
    /// schedulers) and for tests.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a node executes, mirroring TensorFlow device placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Runs on a CPU worker thread.
    Cpu,
    /// Runs as one (or a few) GPU kernels; the managing CPU thread blocks on
    /// completion, exactly like TF-Serving's async kernel threads.
    Gpu,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::Cpu => "cpu",
            Placement::Gpu => "gpu",
        })
    }
}

/// Kind of operation a node performs.
///
/// The scheduler is oblivious to semantics; the kind matters for (a) default
/// placement, (b) the cost-per-nanosecond profile of the TensorFlow cost
/// model (different op implementations report different cost densities,
/// which is why the paper's `C_j/D_j` rate is model-specific).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// JPEG/PNG decode and resize of a batch of input images (CPU).
    InputDecode,
    /// Assembles decoded inputs into the batched input tensor (CPU).
    BatchAssemble,
    /// 2-D convolution.
    Conv2d,
    /// Dense matrix multiplication / fully connected layer.
    MatMul,
    /// Batch normalization.
    BatchNorm,
    /// Elementwise activation (ReLU and friends).
    Activation,
    /// Spatial pooling (max/avg).
    Pool,
    /// Channel-wise concatenation (Inception-style branch joins).
    Concat,
    /// Elementwise addition (ResNet-style shortcut joins).
    Add,
    /// Local response normalization (AlexNet/GoogLeNet era).
    Lrn,
    /// Softmax classifier head.
    Softmax,
    /// Small bookkeeping ops: identity, reshape, shape inference (CPU).
    Bookkeeping,
}

impl OpKind {
    /// Default placement TensorFlow would choose for the op.
    pub fn default_placement(self) -> Placement {
        match self {
            OpKind::InputDecode | OpKind::BatchAssemble | OpKind::Bookkeeping => Placement::Cpu,
            _ => Placement::Gpu,
        }
    }

    /// Cost-model density: cost units reported by the (simulated) TensorFlow
    /// cost profiler per nanosecond of true device time.
    ///
    /// Calibrated so that whole-model `C/D` rates land near the ≈15.4 ratio
    /// the paper measures for Inception (total cost 4,058,477 ns vs GPU
    /// duration 262,773 ns, §4.4).
    pub fn cost_density(self) -> f64 {
        match self {
            OpKind::Conv2d => 16.5,
            OpKind::MatMul => 16.0,
            OpKind::BatchNorm => 14.5,
            OpKind::Activation => 14.0,
            OpKind::Pool => 15.0,
            OpKind::Concat => 13.5,
            OpKind::Add => 13.5,
            OpKind::Lrn => 15.0,
            OpKind::Softmax => 14.0,
            OpKind::InputDecode | OpKind::BatchAssemble | OpKind::Bookkeeping => 1.0,
        }
    }

    /// Every op kind, for enumeration in tests and generators.
    pub const ALL: [OpKind; 12] = [
        OpKind::InputDecode,
        OpKind::BatchAssemble,
        OpKind::Conv2d,
        OpKind::MatMul,
        OpKind::BatchNorm,
        OpKind::Activation,
        OpKind::Pool,
        OpKind::Concat,
        OpKind::Add,
        OpKind::Lrn,
        OpKind::Softmax,
        OpKind::Bookkeeping,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::InputDecode => "input_decode",
            OpKind::BatchAssemble => "batch_assemble",
            OpKind::Conv2d => "conv2d",
            OpKind::MatMul => "matmul",
            OpKind::BatchNorm => "batch_norm",
            OpKind::Activation => "activation",
            OpKind::Pool => "pool",
            OpKind::Concat => "concat",
            OpKind::Add => "add",
            OpKind::Lrn => "lrn",
            OpKind::Softmax => "softmax",
            OpKind::Bookkeeping => "bookkeeping",
        };
        f.write_str(name)
    }
}

/// A single operation in a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) op: OpKind,
    pub(crate) placement: Placement,
    pub(crate) duration: SimDuration,
    pub(crate) true_cost: u64,
}

impl Node {
    /// Human-readable node name (unique within a graph by construction).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operation kind.
    pub fn op(&self) -> OpKind {
        self.op
    }

    /// Device placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// True execution duration on its device (mean; the simulated device adds
    /// run-to-run jitter on top).
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// True cost in TensorFlow cost-model units; what an instrumented run
    /// would (noisily) measure.
    pub fn true_cost(&self) -> u64 {
        self.true_cost
    }

    /// Whether the node runs on the GPU.
    pub fn is_gpu(&self) -> bool {
        self.placement == Placement::Gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_placements() {
        assert_eq!(OpKind::InputDecode.default_placement(), Placement::Cpu);
        assert_eq!(OpKind::Conv2d.default_placement(), Placement::Gpu);
        assert_eq!(OpKind::Bookkeeping.default_placement(), Placement::Cpu);
    }

    #[test]
    fn cost_densities_positive() {
        for op in OpKind::ALL {
            assert!(op.cost_density() > 0.0, "{op} has non-positive density");
        }
    }

    #[test]
    fn gpu_ops_have_higher_density_than_cpu_ops() {
        assert!(OpKind::Conv2d.cost_density() > OpKind::Bookkeeping.cost_density());
    }

    #[test]
    fn display_is_snake_case() {
        assert_eq!(OpKind::Conv2d.to_string(), "conv2d");
        assert_eq!(Placement::Gpu.to_string(), "gpu");
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
