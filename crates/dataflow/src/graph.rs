//! The immutable dataflow graph.

use crate::node::{Node, NodeId, OpKind, Placement};
use simtime::SimDuration;
use std::fmt;

/// Errors produced while building or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node id that does not exist.
    UnknownNode(NodeId),
    /// The graph contains a dependency cycle (node named here is on it).
    Cycle(String),
    /// The graph has no nodes.
    Empty,
    /// An edge would connect a node to itself.
    SelfEdge(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::Cycle(name) => write!(f, "dependency cycle through node {name:?}"),
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::SelfEdge(id) => write!(f, "self edge on {id}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, validated dataflow DAG.
///
/// Construct one with [`crate::GraphBuilder`]. Node ids are dense indices;
/// adjacency is stored forward (children) with per-node parent counts, which
/// is exactly the state the readiness-driven executor needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) children: Vec<Vec<NodeId>>,
    pub(crate) parent_count: Vec<u32>,
    pub(crate) gpu_nodes: u32,
}

impl Graph {
    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of GPU-placed nodes.
    pub fn gpu_node_count(&self) -> usize {
        self.gpu_nodes as usize
    }

    /// Number of CPU-placed nodes.
    pub fn cpu_node_count(&self) -> usize {
        self.node_count() - self.gpu_node_count()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Children (downstream dependents) of a node.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.index()]
    }

    /// Number of parents (upstream dependencies) of a node.
    pub fn parent_count(&self, id: NodeId) -> u32 {
        self.parent_count[id.index()]
    }

    /// All node ids in dense order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Nodes with no parents — where execution starts (TF-Serving's BFS
    /// queue is seeded with these).
    pub fn roots(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.parent_count(*id) == 0)
            .collect()
    }

    /// Sum of true durations of all GPU nodes: the job's serial GPU busy
    /// time, the paper's `D_j` under exclusive access.
    pub fn total_gpu_time(&self) -> SimDuration {
        self.nodes
            .iter()
            .filter(|n| n.is_gpu())
            .map(|n| n.duration)
            .sum()
    }

    /// Sum of true durations of all CPU nodes.
    pub fn total_cpu_time(&self) -> SimDuration {
        self.nodes
            .iter()
            .filter(|n| !n.is_gpu())
            .map(|n| n.duration)
            .sum()
    }

    /// Sum of true costs over all GPU nodes: the paper's `C_j` as an
    /// instrumented run would measure it (up to measurement noise).
    pub fn total_true_cost(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.is_gpu())
            .map(|n| n.true_cost)
            .sum()
    }

    /// A topological order of all nodes (Kahn's algorithm, deterministic
    /// FIFO tie-breaking). Guaranteed to exist: graphs are validated acyclic
    /// at build time.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indegree = self.parent_count.clone();
        let mut queue: std::collections::VecDeque<NodeId> = self
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.node_count());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &child in self.children(id) {
                indegree[child.index()] -= 1;
                if indegree[child.index()] == 0 {
                    queue.push_back(child);
                }
            }
        }
        debug_assert_eq!(order.len(), self.node_count(), "graph must be acyclic");
        order
    }

    /// The length (in nodes) of the longest dependency chain — a lower bound
    /// on achievable pipeline depth.
    pub fn critical_path_len(&self) -> usize {
        let order = self.topo_order();
        let mut depth = vec![1usize; self.node_count()];
        let mut best = 0;
        for id in order {
            let d = depth[id.index()];
            best = best.max(d);
            for &child in self.children(id) {
                depth[child.index()] = depth[child.index()].max(d + 1);
            }
        }
        best
    }

    /// Iterates over `(NodeId, &Node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Per-node placement vector, indexable by `NodeId::index`.
    pub fn placements(&self) -> Vec<Placement> {
        self.nodes.iter().map(|n| n.placement).collect()
    }

    /// Per-op-kind `(count, total GPU time)` statistics, sorted by total
    /// time descending — a quick profile of where a model's work lives.
    pub fn op_histogram(&self) -> Vec<(OpKind, usize, SimDuration)> {
        let mut acc: std::collections::HashMap<OpKind, (usize, SimDuration)> =
            std::collections::HashMap::new();
        for node in &self.nodes {
            let entry = acc.entry(node.op).or_insert((0, SimDuration::ZERO));
            entry.0 += 1;
            entry.1 += node.duration;
        }
        let mut rows: Vec<(OpKind, usize, SimDuration)> =
            acc.into_iter().map(|(op, (n, d))| (op, n, d)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| b.1.cmp(&a.1)));
        rows
    }

    /// Renders the graph in Graphviz DOT format for inspection.
    ///
    /// GPU nodes are drawn as boxes, CPU nodes as ellipses; labels carry the
    /// op kind and true duration. Zoo-scale graphs (>1000 nodes) are huge —
    /// this is meant for the miniatures and for debugging generators.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "digraph {:?} {{", name).expect("write to string");
        writeln!(out, "  rankdir=TB;").expect("write to string");
        for (id, node) in self.iter() {
            let shape = if node.is_gpu() { "box" } else { "ellipse" };
            writeln!(
                out,
                "  n{} [shape={shape}, label=\"{}\\n{} {}\"];",
                id.index(),
                node.name(),
                node.op(),
                node.duration(),
            )
            .expect("write to string");
        }
        for id in self.node_ids() {
            for child in self.children(id) {
                writeln!(out, "  n{} -> n{};", id.index(), child.index())
                    .expect("write to string");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Overwrites one node's true duration and true cost.
    ///
    /// Intended for graph *generators* that assign timing in a normalization
    /// pass after the structure is built (e.g. scaling a duration mixture to
    /// a calibrated total). Structure is immutable; only timing may change.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn set_node_timing(&mut self, id: NodeId, duration: SimDuration, true_cost: u64) {
        let node = &mut self.nodes[id.index()];
        node.duration = duration;
        node.true_cost = if node.is_gpu() { true_cost } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, NodeTemplate};

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                b.add_node(NodeTemplate::gpu(
                    format!("g{i}"),
                    OpKind::Conv2d,
                    SimDuration::from_micros(10),
                    100,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_has_one_root_and_full_critical_path() {
        let g = chain(5);
        assert_eq!(g.roots().len(), 1);
        assert_eq!(g.critical_path_len(), 5);
        assert_eq!(g.topo_order().len(), 5);
    }

    #[test]
    fn totals_sum_durations_and_costs() {
        let g = chain(4);
        assert_eq!(g.total_gpu_time(), SimDuration::from_micros(40));
        assert_eq!(g.total_cpu_time(), SimDuration::ZERO);
        assert_eq!(g.total_true_cost(), 400);
    }

    #[test]
    fn diamond_counts_parents() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeTemplate::cpu("a", OpKind::Bookkeeping, SimDuration::from_nanos(1)));
        let l = b.add_node(NodeTemplate::gpu("l", OpKind::Conv2d, SimDuration::from_nanos(1), 1));
        let r = b.add_node(NodeTemplate::gpu("r", OpKind::Conv2d, SimDuration::from_nanos(1), 1));
        let j = b.add_node(NodeTemplate::gpu("j", OpKind::Concat, SimDuration::from_nanos(1), 1));
        b.add_edge(a, l).unwrap();
        b.add_edge(a, r).unwrap();
        b.add_edge(l, j).unwrap();
        b.add_edge(r, j).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.parent_count(j), 2);
        assert_eq!(g.children(a), &[l, r]);
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.gpu_node_count(), 3);
        assert_eq!(g.cpu_node_count(), 1);
    }

    #[test]
    fn op_histogram_sorts_by_total_time() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeTemplate::gpu("a", OpKind::Conv2d, SimDuration::from_micros(5), 1));
        let c = b.add_node(NodeTemplate::gpu("c", OpKind::Activation, SimDuration::from_micros(50), 1));
        let d = b.add_node(NodeTemplate::gpu("d", OpKind::Conv2d, SimDuration::from_micros(10), 1));
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        let g = b.build().unwrap();
        let hist = g.op_histogram();
        assert_eq!(hist[0], (OpKind::Activation, 1, SimDuration::from_micros(50)));
        assert_eq!(hist[1], (OpKind::Conv2d, 2, SimDuration::from_micros(15)));
    }

    #[test]
    fn dot_export_lists_every_node_and_edge() {
        let g = chain(3);
        let dot = g.to_dot("chain");
        assert!(dot.starts_with("digraph \"chain\""));
        assert_eq!(dot.matches("[shape=box").count(), 3);
        assert_eq!(dot.matches(" -> ").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = chain(10);
        let order = g.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 10];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for id in g.node_ids() {
            for child in g.children(id) {
                assert!(pos[id.index()] < pos[child.index()]);
            }
        }
    }
}
