//! Incremental graph construction with validation.

use crate::graph::{Graph, GraphError};
use crate::node::{Node, NodeId, OpKind, Placement};
use simtime::SimDuration;
use std::collections::HashSet;

/// Everything needed to declare one node before the graph is wired up.
#[derive(Debug, Clone)]
pub struct NodeTemplate {
    name: String,
    op: OpKind,
    placement: Placement,
    duration: SimDuration,
    true_cost: u64,
}

impl NodeTemplate {
    /// A node with explicit placement.
    pub fn new(
        name: impl Into<String>,
        op: OpKind,
        placement: Placement,
        duration: SimDuration,
        true_cost: u64,
    ) -> Self {
        NodeTemplate {
            name: name.into(),
            op,
            placement,
            duration,
            true_cost,
        }
    }

    /// A CPU node; CPU nodes carry no GPU cost.
    pub fn cpu(name: impl Into<String>, op: OpKind, duration: SimDuration) -> Self {
        NodeTemplate::new(name, op, Placement::Cpu, duration, 0)
    }

    /// A GPU node with the given true duration and true cost.
    pub fn gpu(
        name: impl Into<String>,
        op: OpKind,
        duration: SimDuration,
        true_cost: u64,
    ) -> Self {
        NodeTemplate::new(name, op, Placement::Gpu, duration, true_cost)
    }

    /// A GPU node whose cost follows the op's default cost density
    /// (`duration_ns × density`).
    pub fn gpu_auto_cost(name: impl Into<String>, op: OpKind, duration: SimDuration) -> Self {
        let cost = (duration.as_nanos() as f64 * op.cost_density()).round() as u64;
        NodeTemplate::new(name, op, Placement::Gpu, duration, cost)
    }
}

/// Builds a validated [`Graph`].
///
/// ```
/// use dataflow::{GraphBuilder, NodeTemplate, OpKind};
/// use simtime::SimDuration;
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node(NodeTemplate::cpu("a", OpKind::Bookkeeping, SimDuration::from_nanos(5)));
/// let c = b.add_node(NodeTemplate::gpu("c", OpKind::MatMul, SimDuration::from_micros(8), 90));
/// b.add_edge(a, c)?;
/// let graph = b.build()?;
/// assert_eq!(graph.roots(), vec![a]);
/// # Ok::<(), dataflow::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    children: Vec<Vec<NodeId>>,
    parent_count: Vec<u32>,
    edges_seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, template: NodeTemplate) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: template.name,
            op: template.op,
            placement: template.placement,
            duration: template.duration,
            true_cost: if template.placement == Placement::Cpu {
                0
            } else {
                template.true_cost
            },
        });
        self.children.push(Vec::new());
        self.parent_count.push(0);
        id
    }

    /// Adds a dependency edge `from -> to` (`to` cannot start before `from`
    /// finishes).
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint was not added.
    /// * [`GraphError::SelfEdge`] if `from == to`.
    /// * [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        let n = self.nodes.len() as u32;
        for id in [from, to] {
            if id.0 >= n {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if from == to {
            return Err(GraphError::SelfEdge(from));
        }
        if !self.edges_seen.insert((from.0, to.0)) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.children[from.index()].push(to);
        self.parent_count[to.index()] += 1;
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validates acyclicity and produces the immutable graph.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if no nodes were added.
    /// * [`GraphError::Cycle`] if the edges form a cycle.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        // Kahn's algorithm to verify acyclicity.
        let mut indegree = self.parent_count.clone();
        let mut queue: std::collections::VecDeque<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop_front() {
            visited += 1;
            for child in &self.children[i] {
                let c = child.index();
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if visited != self.nodes.len() {
            // Some node still has indegree > 0: it is on (or behind) a cycle.
            let culprit = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies positive indegree");
            return Err(GraphError::Cycle(self.nodes[culprit].name.clone()));
        }
        let gpu_nodes = self.nodes.iter().filter(|n| n.is_gpu()).count() as u32;
        Ok(Graph {
            nodes: self.nodes,
            children: self.children,
            parent_count: self.parent_count,
            gpu_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpl(name: &str) -> NodeTemplate {
        NodeTemplate::gpu(name, OpKind::Conv2d, SimDuration::from_nanos(10), 100)
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn self_edge_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(tmpl("a"));
        assert_eq!(b.add_edge(a, a).unwrap_err(), GraphError::SelfEdge(a));
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(tmpl("a"));
        let ghost = NodeId(42);
        assert_eq!(
            b.add_edge(a, ghost).unwrap_err(),
            GraphError::UnknownNode(ghost)
        );
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(tmpl("a"));
        let c = b.add_node(tmpl("c"));
        b.add_edge(a, c).unwrap();
        assert_eq!(
            b.add_edge(a, c).unwrap_err(),
            GraphError::DuplicateEdge(a, c)
        );
    }

    #[test]
    fn cycle_is_rejected_with_culprit_name() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(tmpl("a"));
        let c = b.add_node(tmpl("c"));
        let d = b.add_node(tmpl("d"));
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.add_edge(d, a).unwrap();
        match b.build().unwrap_err() {
            GraphError::Cycle(name) => assert!(["a", "c", "d"].contains(&name.as_str())),
            other => panic!("expected cycle error, got {other}"),
        }
    }

    #[test]
    fn cpu_nodes_have_zero_cost_even_if_requested() {
        let mut b = GraphBuilder::new();
        let id = b.add_node(NodeTemplate::new(
            "x",
            OpKind::Bookkeeping,
            Placement::Cpu,
            SimDuration::from_nanos(5),
            999,
        ));
        let g = b.build().unwrap();
        assert_eq!(g.node(id).true_cost(), 0);
    }

    #[test]
    fn auto_cost_uses_density() {
        let t = NodeTemplate::gpu_auto_cost("c", OpKind::Conv2d, SimDuration::from_nanos(100));
        let mut b = GraphBuilder::new();
        let id = b.add_node(t);
        let g = b.build().unwrap();
        assert_eq!(g.node(id).true_cost(), 1650); // 100ns * 16.5
    }
}
