//! The dashboard exporter: one self-contained HTML file per run —
//! inline SVG sparkline per series, a per-metric heatmap when a metric
//! fans out over label sets, alert markers on every timeline, and a
//! run-vs-baseline delta table when a baseline store is supplied.
//!
//! No external assets, no scripts, no wall-clock timestamps: the file is
//! a pure function of the store(s), so dashboards inherit the store's
//! byte-determinism and diff cleanly in CI artifacts.

use crate::{Point, Series, Store};

const SVG_W: f64 = 640.0;
const SVG_H: f64 = 80.0;
const PAD: f64 = 6.0;

/// Renders the dashboard for `run`, optionally against a named baseline.
pub fn render_dashboard(run: &str, store: &Store, baseline: Option<(&str, &Store)>) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>");
    out.push_str(&esc(run));
    out.push_str(" · tsdb</title><style>\n");
    out.push_str(
        "body{font:14px/1.4 monospace;background:#111;color:#ddd;margin:24px}\
         h1,h2{font-weight:normal}h1{color:#fff}h2{color:#9cf;margin:4px 0}\
         .card{background:#1a1a1a;border:1px solid #333;border-radius:6px;\
         padding:10px 14px;margin:10px 0}.stats{color:#888}\
         table{border-collapse:collapse;margin:8px 0}\
         td,th{border:1px solid #333;padding:3px 10px;text-align:right}\
         th{color:#9cf}td.key{text-align:left}\
         .pos{color:#f88}.neg{color:#8f8}.alert{color:#fc6}\n",
    );
    out.push_str("</style></head><body>\n");

    let series = store.sorted_series();
    out.push_str(&format!(
        "<h1>run {}</h1>\n<p class=\"stats\">{} series · {} retained points · {} alerts</p>\n",
        esc(run),
        series.len(),
        store.total_points(),
        store.alerts().len()
    ));

    if !store.alerts().is_empty() {
        out.push_str("<div class=\"card\"><h2>alerts</h2><table><tr><th>t (us)</th><th>kind</th><th>detail</th></tr>\n");
        for a in store.alerts() {
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"alert\">{}</td><td class=\"key\">{}</td></tr>\n",
                a.at_ns / 1_000,
                esc(&a.kind),
                esc(&a.detail)
            ));
        }
        out.push_str("</table></div>\n");
    }

    if let Some((base_name, base)) = baseline {
        out.push_str(&delta_table(run, store, base_name, base));
    }

    // Heatmaps first: one per metric that fans out over >1 label set.
    let mut m = 0;
    while m < series.len() {
        let end = series[m..]
            .iter()
            .position(|s| s.metric != series[m].metric)
            .map_or(series.len(), |off| m + off);
        if end - m > 1 {
            out.push_str(&heatmap(&series[m..end]));
        }
        m = end;
    }

    for s in &series {
        out.push_str(&series_card(store, s));
    }

    out.push_str("</body></html>\n");
    out
}

/// One series card: title, lifetime stats, inline SVG sparkline with
/// alert markers.
fn series_card(store: &Store, s: &Series) -> String {
    let t = s.totals();
    let mut out = format!(
        "<div class=\"card\"><h2>{}</h2><p class=\"stats\">count {} · min {} · max {} · last {}</p>\n",
        esc(&store.series_key(s)),
        t.count,
        fmt(if t.count == 0 { 0.0 } else { t.min }),
        fmt(if t.count == 0 { 0.0 } else { t.max }),
        fmt(t.last)
    );
    out.push_str(&sparkline_svg(store, s));
    out.push_str("</div>\n");
    out
}

/// The inline SVG sparkline of a series' retained raw window. Exactly
/// one `class="series"` SVG is emitted per series — the CI dashboard
/// check counts on it.
fn sparkline_svg(store: &Store, s: &Series) -> String {
    let pts: Vec<Point> = s.raw().copied().collect();
    let mut out = format!(
        "<svg class=\"series\" viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\">"
    );
    if pts.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let (t0, t1) = (pts[0].at_ns, pts[pts.len() - 1].at_ns);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &pts {
        lo = lo.min(p.value);
        hi = hi.max(p.value);
    }
    let x = |t: u64| -> f64 {
        if t1 == t0 {
            SVG_W / 2.0
        } else {
            PAD + (t - t0) as f64 / (t1 - t0) as f64 * (SVG_W - 2.0 * PAD)
        }
    };
    // Flat series draw a mid-band line rather than dividing by the zero
    // range — same convention as `metrics::render_sparkline`.
    let y = |v: f64| -> f64 {
        if hi == lo {
            SVG_H / 2.0
        } else {
            SVG_H - PAD - (v - lo) / (hi - lo) * (SVG_H - 2.0 * PAD)
        }
    };
    for a in store.alerts() {
        if a.at_ns >= t0 && a.at_ns <= t1 {
            let ax = x(a.at_ns);
            out.push_str(&format!(
                "<line x1=\"{ax:.1}\" y1=\"0\" x2=\"{ax:.1}\" y2=\"{SVG_H}\" stroke=\"#fc6\" stroke-dasharray=\"2,3\"><title>{}</title></line>",
                esc(&a.kind)
            ));
        }
    }
    let mut path = String::new();
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            path.push(' ');
        }
        path.push_str(&format!("{:.1},{:.1}", x(p.at_ns), y(p.value)));
    }
    if pts.len() == 1 {
        out.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#9cf\"/>",
            x(pts[0].at_ns),
            y(pts[0].value)
        ));
    } else {
        out.push_str(&format!(
            "<polyline points=\"{path}\" fill=\"none\" stroke=\"#9cf\" stroke-width=\"1.5\"/>"
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// A heatmap over every label-set variant of one metric: one row per
/// series, columns binned over the shared time range, cell intensity
/// normalized over the metric's value range.
fn heatmap(group: &[&Series]) -> String {
    const COLS: usize = 64;
    let cell_w = SVG_W / COLS as f64;
    let cell_h = 14.0;
    let h = cell_h * group.len() as f64;
    let (mut t0, mut t1) = (u64::MAX, 0u64);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in group {
        for p in s.raw() {
            t0 = t0.min(p.at_ns);
            t1 = t1.max(p.at_ns);
            lo = lo.min(p.value);
            hi = hi.max(p.value);
        }
    }
    if t0 > t1 {
        return String::new();
    }
    let mut out = format!(
        "<div class=\"card\"><h2>{} × {} series</h2><svg class=\"heatmap\" viewBox=\"0 0 {SVG_W} {h}\" width=\"{SVG_W}\" height=\"{h}\">",
        esc(&group[0].metric),
        group.len()
    );
    for (row, s) in group.iter().enumerate() {
        // Bin the retained points; a cell takes the max of its bin.
        let mut bins = vec![f64::NEG_INFINITY; COLS];
        for p in s.raw() {
            let col = if t1 == t0 {
                0
            } else {
                (((p.at_ns - t0) as f64 / (t1 - t0) as f64) * (COLS as f64 - 1.0)) as usize
            };
            bins[col] = bins[col].max(p.value);
        }
        for (col, &v) in bins.iter().enumerate() {
            if v == f64::NEG_INFINITY {
                continue;
            }
            let norm = if hi == lo { 0.5 } else { (v - lo) / (hi - lo) };
            let shade = 30 + (norm * 200.0) as u32;
            out.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{cell_w:.1}\" height=\"{cell_h}\" fill=\"rgb({shade},{},{})\"/>",
                col as f64 * cell_w,
                row as f64 * cell_h,
                40 + shade / 3,
                230 - shade.min(200),
            ));
        }
    }
    out.push_str("</svg></div>\n");
    out
}

/// The run-vs-baseline table: lifetime `last` values joined by series
/// key, with signed deltas.
fn delta_table(run: &str, store: &Store, base_name: &str, base: &Store) -> String {
    let mut keys: Vec<String> = store
        .sorted_series()
        .iter()
        .map(|s| store.series_key(s))
        .chain(base.sorted_series().iter().map(|s| base.series_key(s)))
        .collect();
    keys.sort();
    keys.dedup();
    let last_of = |st: &Store, key: &str| -> Option<f64> {
        st.sorted_series()
            .into_iter()
            .find(|s| st.series_key(s) == key)
            .map(|s| s.totals().last)
    };
    let mut out = format!(
        "<div class=\"card\"><h2>{} vs {}</h2><table><tr><th>series</th><th>{}</th><th>{}</th><th>delta</th></tr>\n",
        esc(run),
        esc(base_name),
        esc(run),
        esc(base_name)
    );
    for key in keys {
        let t = last_of(store, &key);
        let b = last_of(base, &key);
        let delta = match (t, b) {
            (Some(t), Some(b)) => {
                let d = t - b;
                let class = if d > 0.0 { "pos" } else { "neg" };
                format!("<td class=\"{class}\">{}</td>", fmt_signed(d))
            }
            _ => "<td>·</td>".to_string(),
        };
        out.push_str(&format!(
            "<tr><td class=\"key\">{}</td><td>{}</td><td>{}</td>{delta}</tr>\n",
            esc(&key),
            t.map_or("·".into(), fmt),
            b.map_or("·".into(), fmt),
        ));
    }
    out.push_str("</table></div>\n");
    out
}

fn fmt(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn fmt_signed(v: f64) -> String {
    if v >= 0.0 {
        format!("+{}", fmt(v))
    } else {
        fmt(v)
    }
}

/// Minimal HTML escaping for text nodes and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Store {
        let mut s = Store::new();
        for i in 0..40u64 {
            s.push("lat_us", &[("client", "0")], i * 1_000, 100.0 + i as f64);
            s.push("lat_us", &[("client", "1")], i * 1_000, 90.0 + (i % 7) as f64);
            s.push("flat", &[], i * 1_000, 5.0);
        }
        s.mark_alert(20_000, "drift", "client 0 <drifting> & \"fast\"".into());
        s
    }

    #[test]
    fn one_series_svg_per_series_plus_heatmaps() {
        let store = demo();
        let html = render_dashboard("smoke", &store, None);
        assert_eq!(html.matches("class=\"series\"").count(), store.series_count());
        // lat_us fans out over two label sets -> exactly one heatmap.
        assert_eq!(html.matches("class=\"heatmap\"").count(), 1);
        assert!(html.contains("&lt;drifting&gt;"));
        assert!(html.contains("&quot;fast&quot;"));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn baseline_adds_delta_table() {
        let a = demo();
        let mut b = demo();
        b.push("lat_us", &[("client", "0")], 50_000, 250.0);
        let html = render_dashboard("drifted", &b, Some(("smoke", &a)));
        assert!(html.contains("drifted vs smoke"));
        assert!(html.contains("+111")); // 250 vs 139 last-value delta
    }

    #[test]
    fn deterministic_and_single_point_safe() {
        let mut s = Store::new();
        s.push("one", &[], 7, 3.0);
        let html = render_dashboard("r", &s, None);
        assert!(html.contains("<circle"));
        assert_eq!(html, render_dashboard("r", &s, None));
    }
}
