//! The run catalog: a directory of persisted `tsdb-run/v1` documents
//! plus a `catalog.json` index, so finished runs (and imported
//! `BENCH_engine.json` baselines) become queryable history.
//!
//! Layout under the catalog directory:
//!
//! ```text
//! runs/
//!   catalog.json      {"schema":"tsdb-catalog/v1","runs":["smoke",...]}
//!   smoke.json        a tsdb-run/v1 document
//!   drifted.json
//! ```
//!
//! The index preserves *insertion order* — deliberately not timestamps,
//! which would make the files differ run-to-run and break the
//! byte-identity the determinism matrix enforces. "Latest" means "most
//! recently stored", which is what `--vs baseline` workflows want.

use crate::Store;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag of the catalog index.
pub const CATALOG_SCHEMA: &str = "tsdb-catalog/v1";

/// A directory-backed catalog of stored runs.
#[derive(Debug, Clone)]
pub struct RunCatalog {
    dir: PathBuf,
}

impl RunCatalog {
    /// Opens (creating if needed) a catalog at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<RunCatalog> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(RunCatalog { dir: dir.as_ref().to_path_buf() })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stored run names, insertion order. Empty when no index exists yet.
    pub fn runs(&self) -> Vec<String> {
        let Ok(text) = fs::read_to_string(self.dir.join("catalog.json")) else {
            return Vec::new();
        };
        let Ok(doc) = microjson::Value::parse(&text) else { return Vec::new() };
        if doc.get("schema").and_then(|v| v.as_str()) != Some(CATALOG_SCHEMA) {
            return Vec::new();
        }
        doc.get("runs")
            .and_then(|v| v.as_array())
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect()
    }

    /// The most recently stored run, skipping `except` (so "diff the
    /// latest run against this baseline" defaults sensibly).
    pub fn latest(&self, except: Option<&str>) -> Option<String> {
        self.runs().into_iter().rev().find(|r| Some(r.as_str()) != except)
    }

    /// Persists a store under `name` (re-storing a name overwrites its
    /// file and keeps its original index position). Returns the file
    /// path. Names are restricted to `[A-Za-z0-9._-]` so they map to
    /// safe file names.
    pub fn store_run(&self, name: &str, store: &Store) -> io::Result<PathBuf> {
        validate_name(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let path = self.run_path(name);
        let mut text = String::new();
        store.to_json(name).write(&mut text);
        text.push('\n');
        fs::write(&path, text)?;

        let mut runs = self.runs();
        if !runs.iter().any(|r| r == name) {
            runs.push(name.to_string());
        }
        let index = microjson::Value::Object(vec![
            ("schema".into(), microjson::Value::str(CATALOG_SCHEMA)),
            (
                "runs".into(),
                microjson::Value::Array(runs.into_iter().map(microjson::Value::str).collect()),
            ),
        ]);
        let mut itext = String::new();
        index.write(&mut itext);
        itext.push('\n');
        fs::write(self.dir.join("catalog.json"), itext)?;
        Ok(path)
    }

    /// Loads a stored run back into a [`Store`].
    pub fn load_run(&self, name: &str) -> Result<Store, String> {
        validate_name(name)?;
        let path = self.run_path(name);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read run {name:?} at {}: {e}", path.display()))?;
        let doc = microjson::Value::parse(&text).map_err(|e| format!("run {name:?}: {e}"))?;
        Store::from_json(&doc)
    }

    /// Path of a run's document.
    pub fn run_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }
}

fn validate_name(name: &str) -> Result<(), String> {
    let ok = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(format!("invalid run name {name:?} (use [A-Za-z0-9._-], not starting with '.')"))
    }
}

/// Flattens a `BENCH_engine.json`-style benchmark document into a store,
/// so perf trajectory becomes queryable history alongside real runs.
///
/// Mapping: every numeric leaf at path `section.key` becomes a point on
/// metric `section.key`; deeper paths `section.mid....key` become metric
/// `section.key` with the middle components as a `case` label (so
/// `engine.fifo.events_per_sec` and `engine.olympian.events_per_sec`
/// land on one metric, split by `case`). A trailing `_per_sec` is
/// normalized to `_per_s`. Strings and booleans are skipped. All points
/// are stamped at t=0 — a benchmark document is one observation.
pub fn import_bench(doc: &microjson::Value) -> Store {
    let mut store = Store::new();
    let microjson::Value::Object(sections) = doc else { return store };
    for (section, body) in sections {
        flatten(&mut store, section, &[], body);
    }
    store
}

fn flatten(store: &mut Store, section: &str, mid: &[&str], v: &microjson::Value) {
    match v {
        microjson::Value::Object(fields) => {
            for (k, child) in fields {
                let mut path: Vec<&str> = mid.to_vec();
                path.push(k);
                flatten(store, section, &path, child);
            }
        }
        microjson::Value::UInt(_) | microjson::Value::Int(_) | microjson::Value::Float(_) => {
            let Some(value) = v.as_f64() else { return };
            let Some((leaf, mids)) = mid.split_last() else { return };
            let leaf = match leaf.strip_suffix("_per_sec") {
                Some(stem) => format!("{stem}_per_s"),
                None => leaf.to_string(),
            };
            let metric = format!("{section}.{leaf}");
            if mids.is_empty() {
                store.push(&metric, &[], 0, value);
            } else {
                let case = mids.join(".");
                store.push(&metric, &[("case", &case)], 0, value);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tsdb-catalog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_roundtrip_and_index_order() {
        let dir = tmpdir("roundtrip");
        let cat = RunCatalog::open(&dir).unwrap();
        assert!(cat.runs().is_empty());
        assert_eq!(cat.latest(None), None);

        let mut a = Store::new();
        a.push("m", &[("k", "v")], 5, 1.5);
        cat.store_run("smoke", &a).unwrap();
        let mut b = Store::new();
        b.push("m", &[], 7, 2.0);
        cat.store_run("drifted", &b).unwrap();
        // Re-storing keeps the original index slot.
        cat.store_run("smoke", &a).unwrap();

        assert_eq!(cat.runs(), vec!["smoke", "drifted"]);
        assert_eq!(cat.latest(None).as_deref(), Some("drifted"));
        assert_eq!(cat.latest(Some("drifted")).as_deref(), Some("smoke"));

        let back = cat.load_run("smoke").unwrap();
        assert_eq!(back.series_count(), 1);
        assert_eq!(back.sorted_series()[0].totals().last, 1.5);

        assert!(cat.store_run("../escape", &a).is_err());
        assert!(cat.load_run("missing").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_bench_flattens_with_case_labels() {
        let doc = microjson::Value::parse(
            r#"{"schema":"BENCH_engine/v1","engine":{"fifo":{"events_per_sec":100.5,"events":7},
                "olympian":{"events_per_sec":90.25}},"queue":{"pushes_per_sec":3.5},
                "mode":"release"}"#,
        )
        .unwrap();
        let store = import_bench(&doc);
        let keys: Vec<String> =
            store.sorted_series().iter().map(|s| store.series_key(s)).collect();
        assert_eq!(
            keys,
            vec![
                "engine.events{case=\"fifo\"}",
                "engine.events_per_s{case=\"fifo\"}",
                "engine.events_per_s{case=\"olympian\"}",
                "queue.pushes_per_s",
            ]
        );
        let e = crate::Expr::parse("engine.events_per_s").unwrap();
        let rows = crate::evaluate(&store, &e);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, 100.5);
        assert_eq!(rows[1].value, 90.25);
    }
}
