//! The query layer: a tiny expression language over a [`Store`], plus
//! the window primitives (`range`, `rate`, `quantile_over_time`,
//! `group_by`) and run-vs-run diffing the CLI and dashboards build on.
//!
//! # Expressions
//!
//! ```text
//! expr     := [func ":"] metric [ "{" matcher ("," matcher)* "}" ]
//! func     := "rate"
//! matcher  := key "=" ( "*" | value | '"' value '"' )
//! ```
//!
//! Two shorthands make regression checks one-liners:
//!
//! * A metric named `pNN` (e.g. `p99`, `p50`) is a nearest-rank quantile
//!   over the exact `run_latency_ns` stream: `p99{client=*}` evaluates
//!   the same `ceil(0.99 · n)` rank the blame experiment's attribution
//!   layer uses, so a stored run reproduces its p99 deltas bit-for-bit.
//! * `rate:counter` is the per-second rate of a cumulative counter over
//!   its retained window.
//!
//! Everything else evaluates to the series' latest value.

use crate::{Point, Series, Store, Totals};

/// What an expression computes per matching series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Func {
    /// The latest value.
    Last,
    /// Per-second rate of a cumulative counter over the retained window.
    Rate,
    /// Nearest-rank quantile (`0 < q <= 1`) over the raw window of the
    /// exact run-latency stream.
    Quantile(f64),
}

/// One label matcher.
#[derive(Debug, Clone, PartialEq)]
pub enum Matcher {
    /// Key must be present, any value (`k=*`).
    Any,
    /// Key must equal the value exactly.
    Eq(String),
}

/// A parsed query expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Computation to apply.
    pub func: Func,
    /// Target metric name (quantile shorthands target `run_latency_ns`).
    pub metric: String,
    /// Label matchers; a series matches when every matcher is satisfied.
    pub matchers: Vec<(String, Matcher)>,
}

impl Expr {
    /// Parses an expression; see the module docs for the grammar.
    pub fn parse(text: &str) -> Result<Expr, String> {
        let text = text.trim();
        let (func_txt, rest) = match text.split_once(':') {
            Some((f, r)) if f == "rate" => (Some(f), r),
            _ => (None, text),
        };
        let (name, matcher_txt) = match rest.split_once('{') {
            Some((n, m)) => {
                let m = m.strip_suffix('}').ok_or_else(|| format!("unclosed '{{' in {text:?}"))?;
                (n.trim(), Some(m))
            }
            None => (rest.trim(), None),
        };
        if name.is_empty() {
            return Err(format!("empty metric in {text:?}"));
        }
        let mut matchers = Vec::new();
        if let Some(m) = matcher_txt {
            for part in m.split(',').filter(|p| !p.trim().is_empty()) {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| format!("matcher {part:?} is not key=value"))?;
                let v = v.trim().trim_matches('"');
                let matcher = if v == "*" { Matcher::Any } else { Matcher::Eq(v.to_string()) };
                matchers.push((k.trim().to_string(), matcher));
            }
        }
        // pNN shorthand: a quantile over the exact per-run latency log.
        if func_txt.is_none() && name.len() >= 2 && name.starts_with('p') {
            if let Ok(pct) = name[1..].parse::<u32>() {
                if (1..=100).contains(&pct) {
                    return Ok(Expr {
                        func: Func::Quantile(pct as f64 / 100.0),
                        metric: "run_latency_ns".to_string(),
                        matchers,
                    });
                }
            }
        }
        let func = if func_txt.is_some() { Func::Rate } else { Func::Last };
        Ok(Expr { func, metric: name.to_string(), matchers })
    }

    /// Display unit of evaluated values (`us` for quantiles over the
    /// nanosecond latency stream, `/s` for rates, empty otherwise).
    pub fn unit(&self) -> &'static str {
        match self.func {
            Func::Quantile(_) => "us",
            Func::Rate => "/s",
            Func::Last => "",
        }
    }

    fn matches(&self, store: &Store, s: &Series) -> bool {
        if s.metric != self.metric {
            return false;
        }
        let labels = &store.label_sets()[s.labels as usize];
        self.matchers.iter().all(|(k, m)| match (labels.get(k), m) {
            (Some(_), Matcher::Any) => true,
            (Some(v), Matcher::Eq(want)) => v == want,
            (None, _) => false,
        })
    }
}

/// Raw points of a series inside `[lo_ns, hi_ns]`, oldest first.
pub fn range(series: &Series, lo_ns: u64, hi_ns: u64) -> Vec<Point> {
    series.raw().filter(|p| p.at_ns >= lo_ns && p.at_ns <= hi_ns).copied().collect()
}

/// Per-second rate of a cumulative series over `[lo_ns, hi_ns]`: the
/// value delta between the first and last covered point divided by their
/// time span. `None` with fewer than two points or a zero span.
pub fn rate(series: &Series, lo_ns: u64, hi_ns: u64) -> Option<f64> {
    let pts = range(series, lo_ns, hi_ns);
    let (first, last) = (pts.first()?, pts.last()?);
    let dt = last.at_ns.checked_sub(first.at_ns)?;
    if dt == 0 {
        return None;
    }
    Some((last.value - first.value) * 1e9 / dt as f64)
}

/// Nearest-rank quantile (`0 < q <= 1`) over the raw points of a series
/// inside `[lo_ns, hi_ns]`: values sorted ascending, rank `ceil(q · n)`.
/// This is the same rank rule the attribution layer's `p99_run` uses, so
/// quantiles over the stored `run_latency_ns` stream reproduce blame
/// numbers exactly.
pub fn quantile_over_time(series: &Series, q: f64, lo_ns: u64, hi_ns: u64) -> Option<f64> {
    let mut vals: Vec<f64> =
        range(series, lo_ns, hi_ns).into_iter().map(|p| p.value).collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("tsdb values are finite"));
    let rank = ((vals.len() as f64) * q).ceil() as usize;
    Some(vals[rank.clamp(1, vals.len()) - 1])
}

/// Merges the lifetime totals of every series of `metric`, grouped by
/// the value of `label`. Sorted by label value; series without the label
/// group under `""`.
pub fn group_by(store: &Store, metric: &str, label: &str) -> Vec<(String, Totals)> {
    let mut groups: Vec<(String, Totals)> = Vec::new();
    for s in store.sorted_series() {
        if s.metric != metric {
            continue;
        }
        let key = store.label_sets()[s.labels as usize].get(label).unwrap_or("").to_string();
        let t = s.totals();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => {
                g.count += t.count;
                g.sum += t.sum;
                g.min = g.min.min(t.min);
                g.max = g.max.max(t.max);
                g.last = t.last;
                g.last_at_ns = g.last_at_ns.max(t.last_at_ns);
                g.first_at_ns = g.first_at_ns.min(t.first_at_ns);
            }
            None => groups.push((key, *t)),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    groups
}

/// One evaluated series.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Canonical series key, `metric{labels}`.
    pub key: String,
    /// Evaluated value (nanoseconds for quantile shorthands).
    pub value: f64,
}

/// Evaluates an expression against a store: one row per matching series,
/// in sorted key order. Rate and quantile evaluate over the full
/// retained window; series the function cannot evaluate (e.g. a rate
/// over one point) are skipped.
pub fn evaluate(store: &Store, expr: &Expr) -> Vec<EvalRow> {
    let mut rows = Vec::new();
    for s in store.sorted_series() {
        if !expr.matches(store, s) {
            continue;
        }
        let value = match expr.func {
            Func::Last => Some(s.totals().last),
            Func::Rate => rate(s, 0, u64::MAX),
            Func::Quantile(q) => quantile_over_time(s, q, 0, u64::MAX),
        };
        if let Some(value) = value {
            rows.push(EvalRow { key: store.series_key(s), value });
        }
    }
    rows
}

/// One joined row of a run-vs-baseline diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Canonical series key.
    pub key: String,
    /// Value in the target run, if the series evaluated there.
    pub target: Option<f64>,
    /// Value in the baseline run, if the series evaluated there.
    pub base: Option<f64>,
}

impl DiffRow {
    /// `target - base` when both sides evaluated.
    pub fn delta(&self) -> Option<f64> {
        Some(self.target? - self.base?)
    }
}

/// Evaluates `expr` on both stores and joins the rows by series key
/// (sorted). This is `diff` between two stored runs: no re-simulation,
/// just history.
pub fn diff_rows(target: &Store, base: &Store, expr: &Expr) -> Vec<DiffRow> {
    let t = evaluate(target, expr);
    let b = evaluate(base, expr);
    let mut keys: Vec<String> =
        t.iter().chain(b.iter()).map(|r| r.key.clone()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|key| DiffRow {
            target: t.iter().find(|r| r.key == key).map(|r| r.value),
            base: b.iter().find(|r| r.key == key).map(|r| r.value),
            key,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        let mut s = Store::new();
        for i in 0..100u64 {
            s.push("run_latency_ns", &[("client", "0")], i * 1_000, (1_000 + i) as f64);
            s.push("run_latency_ns", &[("client", "1")], i * 1_000, (2_000 + i) as f64);
            s.push("runs_completed", &[], i * 1_000, (2 * i) as f64);
        }
        s
    }

    #[test]
    fn parse_covers_the_grammar() {
        let e = Expr::parse("p99{client=*}").unwrap();
        assert_eq!(e.func, Func::Quantile(0.99));
        assert_eq!(e.metric, "run_latency_ns");
        assert_eq!(e.matchers, vec![("client".into(), Matcher::Any)]);
        assert_eq!(e.unit(), "us");

        let e = Expr::parse("rate:runs_completed").unwrap();
        assert_eq!(e.func, Func::Rate);
        assert_eq!(e.unit(), "/s");

        let e = Expr::parse("engine.events_per_s{case=\"fifo\"}").unwrap();
        assert_eq!(e.func, Func::Last);
        assert_eq!(e.matchers, vec![("case".into(), Matcher::Eq("fifo".into()))]);

        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("m{unclosed").is_err());
        assert!(Expr::parse("m{novalue}").is_err());
        // p-followed-by-non-number is a plain metric, not a quantile.
        assert_eq!(Expr::parse("pressure").unwrap().func, Func::Last);
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let s = store();
        let e = Expr::parse("p99{client=0}").unwrap();
        let rows = evaluate(&s, &e);
        assert_eq!(rows.len(), 1);
        // 100 values 1000..=1099; rank ceil(0.99*100)=99 -> index 98.
        assert_eq!(rows[0].value, 1_098.0);
        let e50 = Expr::parse("p50{client=0}").unwrap();
        assert_eq!(evaluate(&s, &e50)[0].value, 1_049.0);
    }

    #[test]
    fn rate_spans_the_window() {
        let s = store();
        let e = Expr::parse("rate:runs_completed").unwrap();
        let rows = evaluate(&s, &e);
        // 198 events over 99us -> 2 events/us -> 2e6/s... in ns: 198/99000ns.
        assert!((rows[0].value - 198.0 * 1e9 / 99_000.0).abs() < 1e-6);
    }

    #[test]
    fn diff_joins_by_key_and_orders() {
        let a = store();
        let mut b = store();
        b.push("run_latency_ns", &[("client", "2")], 0, 9.0);
        let e = Expr::parse("p99{client=*}").unwrap();
        let rows = diff_rows(&b, &a, &e);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].key.contains("client=\"2\""));
        assert_eq!(rows[0].delta(), Some(0.0));
        assert_eq!(rows[2].base, None);
    }

    #[test]
    fn group_by_merges_totals() {
        let s = store();
        let g = group_by(&s, "run_latency_ns", "client");
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, "0");
        assert_eq!(g[0].1.count, 100);
        assert_eq!(g[1].1.max, 2_099.0);
    }

    #[test]
    fn range_filters_inclusive() {
        let s = store();
        let series = s.sorted_series();
        let r = range(series[0], 10_000, 12_000);
        assert_eq!(r.len(), 3);
    }
}
