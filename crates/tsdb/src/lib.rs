//! An embedded, deterministic time-series store over telemetry.
//!
//! Every other observability surface in the suite is point-in-time: the
//! trace ring replays one run, the telemetry report summarizes one run,
//! the blame report diffs exactly two attributions it just computed. This
//! crate is the layer that *retains*: it ingests a finished
//! [`telemetry::TelemetryReport`] into per-series tiered rings, answers
//! range/rate/quantile queries over them, persists finished runs to a
//! versioned on-disk catalog, and renders run-comparison dashboards —
//! so "p99 over the last N windows" and "this run vs. the stored
//! baseline" become queries over history instead of re-simulations.
//!
//! # Storage layout
//!
//! A [`Store`] holds one [`Series`] per `(metric, label set)` pair. Label
//! sets are interned: each distinct sorted `key=value` list is stored
//! once and series reference it by id. A series keeps three tiers:
//!
//! * **raw** — the last [`RAW_CAP`] `(t_ns, value)` points, verbatim;
//! * **tier 1** — one [`Bucket`] per [`TIER1_FOLD`] (16) raw points,
//!   last [`TIER_CAP`] buckets;
//! * **tier 2** — one bucket per [`TIER2_FOLD`] (16) tier-1 buckets
//!   (256 raw points), last [`TIER_CAP`] buckets.
//!
//! Buckets carry `min`/`max`/`sum`/`count`/`last` plus their covered
//! `[start_ns, end_ns]` span, so coarse tiers answer aggregate queries
//! loss-free long after the raw window evicted the points. Folding is by
//! *point count*, not wall span: the simulator's snapshot cadence is
//! already uniform in virtual time, and count-based folds keep every
//! bucket exactly recomputable from the raw stream — the property the
//! tier-correctness test enforces.
//!
//! # Determinism
//!
//! Stores are byte-identical across `--jobs N` and shard counts: all
//! timestamps are integer virtual nanoseconds, ingestion order is the
//! registry's registration order, serialization iterates series in
//! sorted `(metric, labels)` order, and nothing reads the wall clock.
//! The umbrella `tests/tsdb.rs` matrix enforces this end to end.

#![deny(missing_docs)]

use std::collections::HashMap;
use telemetry::TelemetryReport;

pub mod catalog;
pub mod dashboard;
pub mod query;

pub use catalog::RunCatalog;
pub use dashboard::render_dashboard;
pub use query::{diff_rows, evaluate, DiffRow, EvalRow, Expr, Func, Matcher};

/// Raw points retained per series.
pub const RAW_CAP: usize = 4096;
/// Closed buckets retained per downsampling tier.
pub const TIER_CAP: usize = 1024;
/// Raw points folded into one tier-1 bucket.
pub const TIER1_FOLD: u32 = 16;
/// Tier-1 buckets folded into one tier-2 bucket (256 raw points).
pub const TIER2_FOLD: u32 = 16;

/// One raw observation: integer virtual nanoseconds and a finite value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Virtual time of the observation.
    pub at_ns: u64,
    /// Observed value.
    pub value: f64,
}

/// One downsampled bucket: the loss-free aggregate of the raw points it
/// covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Virtual time of the first covered point.
    pub start_ns: u64,
    /// Virtual time of the last covered point.
    pub end_ns: u64,
    /// Smallest covered value.
    pub min: f64,
    /// Largest covered value.
    pub max: f64,
    /// Sum of covered values.
    pub sum: f64,
    /// Number of covered points.
    pub count: u64,
    /// Most recent covered value.
    pub last: f64,
}

impl Bucket {
    fn seed(at_ns: u64, v: f64) -> Bucket {
        Bucket { start_ns: at_ns, end_ns: at_ns, min: v, max: v, sum: v, count: 1, last: v }
    }

    fn fold_point(&mut self, at_ns: u64, v: f64) {
        self.end_ns = at_ns;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
        self.last = v;
    }

    fn fold_bucket(&mut self, b: &Bucket) {
        self.end_ns = b.end_ns;
        self.min = self.min.min(b.min);
        self.max = self.max.max(b.max);
        self.sum += b.sum;
        self.count += b.count;
        self.last = b.last;
    }
}

/// Running aggregate over *every* point a series ever saw — unlike the
/// rings, totals never forget, so `count`/`sum`/`min`/`max`/`last`
/// survive raw-window eviction (and catalog round-trips, which restore
/// them from the stored file rather than recomputing from the retained
/// window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Totals {
    /// Total points ingested.
    pub count: u64,
    /// Sum of all values.
    pub sum: f64,
    /// Smallest value ever seen.
    pub min: f64,
    /// Largest value ever seen.
    pub max: f64,
    /// Most recent value.
    pub last: f64,
    /// Virtual time of the first point.
    pub first_at_ns: u64,
    /// Virtual time of the most recent point.
    pub last_at_ns: u64,
}

impl Default for Totals {
    fn default() -> Totals {
        Totals {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            first_at_ns: 0,
            last_at_ns: 0,
        }
    }
}

/// A fixed-capacity overwrite-oldest ring. Tracks how many elements it
/// has evicted so absolute ingest indices stay recoverable.
#[derive(Debug, Clone)]
struct Ring<T> {
    buf: Vec<T>,
    head: usize,
    evicted: u64,
    cap: usize,
}

impl<T: Copy> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring { buf: Vec::new(), head: 0, evicted: 0, cap }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Elements oldest-to-newest.
    fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

/// An interned label set: sorted `key=value` pairs, stored once per
/// distinct combination and referenced by id from every series using it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// Builds a label set; pairs are sorted by key (then value).
    pub fn new(pairs: &[(&str, &str)]) -> LabelSet {
        let mut v: Vec<(String, String)> =
            pairs.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
        v.sort();
        LabelSet(v)
    }

    /// The sorted pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Value of a label key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Canonical rendering: `{k="v",k2="v2"}`, or the empty string for
    /// the empty set. This is the sort key for series iteration.
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// One `(metric, labels)` time series with its three tiers.
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name.
    pub metric: String,
    /// Interned label-set id (index into [`Store::label_sets`]).
    pub labels: u32,
    raw: Ring<Point>,
    tier1: Ring<Bucket>,
    tier2: Ring<Bucket>,
    open1: Option<(Bucket, u32)>,
    open2: Option<(Bucket, u32)>,
    totals: Totals,
    /// Raw evictions inherited from a persisted run (a reloaded store
    /// only re-ingests the retained window; this keeps the written
    /// `evicted` count stable across save/load/save).
    prior_evicted: u64,
}

impl Series {
    fn new(metric: String, labels: u32) -> Series {
        Series {
            metric,
            labels,
            raw: Ring::new(RAW_CAP),
            tier1: Ring::new(TIER_CAP),
            tier2: Ring::new(TIER_CAP),
            open1: None,
            open2: None,
            totals: Totals::default(),
            prior_evicted: 0,
        }
    }

    fn push(&mut self, at_ns: u64, value: f64) {
        debug_assert!(value.is_finite(), "tsdb values must be finite");
        let t = &mut self.totals;
        if t.count == 0 {
            t.first_at_ns = at_ns;
        }
        t.count += 1;
        t.sum += value;
        t.min = t.min.min(value);
        t.max = t.max.max(value);
        t.last = value;
        t.last_at_ns = at_ns;

        self.raw.push(Point { at_ns, value });

        match &mut self.open1 {
            None => self.open1 = Some((Bucket::seed(at_ns, value), 1)),
            Some((b, n)) => {
                b.fold_point(at_ns, value);
                *n += 1;
            }
        }
        if self.open1.as_ref().is_some_and(|(_, n)| *n == TIER1_FOLD) {
            let (b, _) = self.open1.take().expect("checked above");
            self.tier1.push(b);
            match &mut self.open2 {
                None => self.open2 = Some((b, 1)),
                Some((b2, n2)) => {
                    b2.fold_bucket(&b);
                    *n2 += 1;
                }
            }
            if self.open2.as_ref().is_some_and(|(_, n)| *n == TIER2_FOLD) {
                let (b2, _) = self.open2.take().expect("checked above");
                self.tier2.push(b2);
            }
        }
    }

    /// Retained raw points, oldest to newest.
    pub fn raw(&self) -> impl Iterator<Item = &Point> + '_ {
        self.raw.iter()
    }

    /// Retained raw point count.
    pub fn raw_len(&self) -> usize {
        self.raw.len()
    }

    /// Raw points evicted from the retained window (including evictions
    /// recorded by a persisted run this store was reloaded from).
    pub fn raw_evicted(&self) -> u64 {
        self.prior_evicted + self.raw.evicted
    }

    /// Closed tier-1 buckets, oldest to newest.
    pub fn tier1(&self) -> impl Iterator<Item = &Bucket> + '_ {
        self.tier1.iter()
    }

    /// Tier-1 buckets evicted from the ring.
    pub fn tier1_evicted(&self) -> u64 {
        self.tier1.evicted
    }

    /// Closed tier-2 buckets, oldest to newest.
    pub fn tier2(&self) -> impl Iterator<Item = &Bucket> + '_ {
        self.tier2.iter()
    }

    /// Tier-2 buckets evicted from the ring.
    pub fn tier2_evicted(&self) -> u64 {
        self.tier2.evicted
    }

    /// Lifetime aggregate of the series.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }
}

/// A time mark for an alert, carried alongside the series so dashboards
/// can overlay incident markers on every sparkline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertMark {
    /// Virtual time of the alert.
    pub at_ns: u64,
    /// Stable kebab-case kind (`drift`, `slo-burn`, ...).
    pub kind: String,
    /// One-line human detail.
    pub detail: String,
}

/// The store: interned label sets, one series per `(metric, labels)`,
/// and the run's alert marks.
#[derive(Debug, Clone, Default)]
pub struct Store {
    series: Vec<Series>,
    /// Lookup index; never iterated (iteration goes through the sorted
    /// order), so the map's nondeterministic internal order is inert.
    index: HashMap<(String, u32), u32>,
    label_sets: Vec<LabelSet>,
    label_index: HashMap<LabelSet, u32>,
    alerts: Vec<AlertMark>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Interns a label set, returning its id.
    pub fn intern(&mut self, labels: &[(&str, &str)]) -> u32 {
        let set = LabelSet::new(labels);
        if let Some(&id) = self.label_index.get(&set) {
            return id;
        }
        let id = self.label_sets.len() as u32;
        self.label_sets.push(set.clone());
        self.label_index.insert(set, id);
        id
    }

    /// The interned label sets, in intern order.
    pub fn label_sets(&self) -> &[LabelSet] {
        &self.label_sets
    }

    /// Resolves (creating if needed) the series for `(metric, labels)`
    /// and returns its id. Resolve once, then feed the hot loop through
    /// [`push_to`](Store::push_to) — the id path does no hashing and no
    /// allocation.
    pub fn series_id(&mut self, metric: &str, labels: &[(&str, &str)]) -> u32 {
        let lid = self.intern(labels);
        let key = (metric.to_string(), lid);
        if let Some(&sid) = self.index.get(&key) {
            return sid;
        }
        let sid = self.series.len() as u32;
        self.series.push(Series::new(key.0.clone(), lid));
        self.index.insert(key, sid);
        sid
    }

    /// Appends a point to a series by id (the allocation-free hot path).
    pub fn push_to(&mut self, sid: u32, at_ns: u64, value: f64) {
        self.series[sid as usize].push(at_ns, value);
    }

    /// Convenience: resolve-and-push in one call.
    pub fn push(&mut self, metric: &str, labels: &[(&str, &str)], at_ns: u64, value: f64) {
        let sid = self.series_id(metric, labels);
        self.push_to(sid, at_ns, value);
    }

    /// Records an alert mark.
    pub fn mark_alert(&mut self, at_ns: u64, kind: &str, detail: String) {
        self.alerts.push(AlertMark { at_ns, kind: kind.to_string(), detail });
    }

    /// Alert marks in record order (telemetry emits them in time order).
    pub fn alerts(&self) -> &[AlertMark] {
        &self.alerts
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total retained raw points across all series.
    pub fn total_points(&self) -> usize {
        self.series.iter().map(Series::raw_len).sum()
    }

    /// A series by id.
    pub fn series(&self, sid: u32) -> &Series {
        &self.series[sid as usize]
    }

    /// The canonical display key of a series: `metric{labels}`.
    pub fn series_key(&self, s: &Series) -> String {
        format!("{}{}", s.metric, self.label_sets[s.labels as usize].render())
    }

    /// Series in sorted `(metric, rendered labels)` order — the only
    /// iteration order queries and serialization use, which is what makes
    /// every output byte-deterministic.
    pub fn sorted_series(&self) -> Vec<&Series> {
        let mut v: Vec<&Series> = self.series.iter().collect();
        v.sort_by_key(|s| (s.metric.clone(), self.label_sets[s.labels as usize].render()));
        v
    }

    /// Ingests a finished telemetry report: every counter, gauge and
    /// histogram digest per snapshot, per-client attributed GPU time, the
    /// exact per-run latency log, and the alert stream. Returns an empty
    /// store when telemetry was disabled.
    pub fn from_telemetry(report: &TelemetryReport) -> Store {
        let mut store = Store::new();
        if !report.enabled {
            return store;
        }

        // Resolve every snapshot-level series id once, outside the loop:
        // the per-snapshot path is then pure `push_to`.
        let counter_ids: Vec<u32> =
            report.counter_names.iter().map(|n| store.series_id(n, &[])).collect();
        let gauge_ids: Vec<u32> =
            report.gauge_names.iter().map(|n| store.series_id(n, &[])).collect();
        let mut hist_ids: Vec<[u32; 3]> = Vec::with_capacity(report.hist_names.len());
        for n in &report.hist_names {
            hist_ids.push([
                store.series_id(&format!("{n}.count"), &[]),
                store.series_id(&format!("{n}.p50"), &[]),
                store.series_id(&format!("{n}.p99"), &[]),
            ]);
        }
        // The client table grows during a run (gpu rows are ragged), so
        // client series resolve lazily on first sight.
        let mut gpu_ids: Vec<u32> = Vec::new();
        let mut latency_ids: Vec<u32> = Vec::new();
        let client_model = |c: usize| -> &str {
            report.client_models.get(c).map(String::as_str).unwrap_or("?")
        };

        for snap in report.snapshots.iter() {
            let t = snap.at.as_nanos();
            for (i, &sid) in counter_ids.iter().enumerate() {
                store.push_to(sid, t, snap.counters[i] as f64);
            }
            for (i, &sid) in gauge_ids.iter().enumerate() {
                store.push_to(sid, t, snap.gauges[i]);
            }
            for (i, ids) in hist_ids.iter().enumerate() {
                let h = &snap.hists[i];
                store.push_to(ids[0], t, h.count as f64);
                store.push_to(ids[1], t, h.p50);
                store.push_to(ids[2], t, h.p99);
            }
            for (c, &gpu) in snap.client_gpu_ns.iter().enumerate() {
                while gpu_ids.len() <= c {
                    let cl = gpu_ids.len();
                    let id = store.series_id(
                        "client_gpu_ns",
                        &[("client", &cl.to_string()), ("model", client_model(cl))],
                    );
                    gpu_ids.push(id);
                }
                store.push_to(gpu_ids[c], t, gpu as f64);
            }
        }

        // The exact per-run latency stream: loss-free, unlike the
        // log-linear registry histogram, so stored runs reproduce
        // nearest-rank quantiles (and blame deltas) bit-for-bit.
        for (at, client, latency) in report.run_log.iter() {
            let c = client as usize;
            while latency_ids.len() <= c {
                let cl = latency_ids.len();
                let id = store.series_id(
                    "run_latency_ns",
                    &[("client", &cl.to_string()), ("model", client_model(cl))],
                );
                latency_ids.push(id);
            }
            store.push_to(latency_ids[c], at.as_nanos(), latency.as_nanos() as f64);
        }

        for alert in &report.alerts {
            store.mark_alert(alert.at().as_nanos(), alert.kind(), alert_detail(alert));
        }
        store
    }

    /// Serializes the store to the versioned on-disk run document
    /// (`tsdb-run/v1`). Series are written in sorted order and no wall
    /// clock is consulted, so equal stores produce equal bytes.
    pub fn to_json(&self, run: &str) -> microjson::Value {
        use microjson::Value;
        let series: Vec<Value> = self
            .sorted_series()
            .into_iter()
            .map(|s| {
                let labels = self.label_sets[s.labels as usize]
                    .pairs()
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::str(v.clone())))
                    .collect();
                let points: Vec<Value> = s
                    .raw()
                    .map(|p| Value::Array(vec![Value::UInt(p.at_ns), num(p.value)]))
                    .collect();
                let t = s.totals();
                Value::Object(vec![
                    ("metric".into(), Value::str(s.metric.clone())),
                    ("labels".into(), Value::Object(labels)),
                    ("points".into(), Value::Array(points)),
                    ("evicted".into(), Value::UInt(s.raw_evicted())),
                    (
                        "total".into(),
                        Value::Object(vec![
                            ("count".into(), Value::UInt(t.count)),
                            ("sum".into(), num(t.sum)),
                            ("min".into(), num(if t.count == 0 { 0.0 } else { t.min })),
                            ("max".into(), num(if t.count == 0 { 0.0 } else { t.max })),
                            ("last".into(), num(t.last)),
                            ("first_at_ns".into(), Value::UInt(t.first_at_ns)),
                            ("last_at_ns".into(), Value::UInt(t.last_at_ns)),
                        ]),
                    ),
                ])
            })
            .collect();
        let alerts: Vec<Value> = self
            .alerts
            .iter()
            .map(|a| {
                Value::Object(vec![
                    ("t_ns".into(), Value::UInt(a.at_ns)),
                    ("kind".into(), Value::str(a.kind.clone())),
                    ("detail".into(), Value::str(a.detail.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::str("tsdb-run/v1")),
            ("run".into(), Value::str(run)),
            ("series".into(), Value::Array(series)),
            ("alerts".into(), Value::Array(alerts)),
        ])
    }

    /// Rebuilds a store from a `tsdb-run/v1` document: the retained raw
    /// window is re-ingested (rebuilding the tiers over it) and the
    /// lifetime totals and eviction count are restored verbatim, so
    /// `save(load(x)) == save(x)` byte-for-byte.
    pub fn from_json(doc: &microjson::Value) -> Result<Store, String> {
        let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
        if schema != "tsdb-run/v1" {
            return Err(format!("unsupported run schema {schema:?}"));
        }
        let mut store = Store::new();
        let series = doc.get("series").and_then(|v| v.as_array()).unwrap_or(&[]);
        for s in series {
            let metric =
                s.get("metric").and_then(|v| v.as_str()).ok_or("series without metric")?;
            let empty = microjson::Value::Object(Vec::new());
            let labels = s.get("labels").unwrap_or(&empty);
            let pairs: Vec<(&str, &str)> = match labels {
                microjson::Value::Object(fields) => fields
                    .iter()
                    .map(|(k, v)| Ok((k.as_str(), v.as_str().ok_or("non-string label")?)))
                    .collect::<Result<_, &str>>()?,
                _ => return Err("labels must be an object".into()),
            };
            let sid = store.series_id(metric, &pairs);
            for p in s.get("points").and_then(|v| v.as_array()).unwrap_or(&[]) {
                let row = p.as_array().ok_or("point must be [t, v]")?;
                let (Some(t), Some(v)) =
                    (row.first().and_then(|t| t.as_u64()), row.get(1).and_then(|v| v.as_f64()))
                else {
                    return Err("point must be [t_ns, value]".into());
                };
                store.push_to(sid, t, v);
            }
            let s_mut = &mut store.series[sid as usize];
            if let Some(ev) = s.get("evicted").and_then(|v| v.as_u64()) {
                s_mut.prior_evicted = ev;
            }
            if let Some(t) = s.get("total") {
                let f = |k: &str| t.get(k).and_then(|v| v.as_f64());
                let u = |k: &str| t.get(k).and_then(|v| v.as_u64());
                if let (Some(count), Some(sum), Some(min), Some(max), Some(last)) =
                    (u("count"), f("sum"), f("min"), f("max"), f("last"))
                {
                    s_mut.totals = Totals {
                        count,
                        sum,
                        min: if count == 0 { f64::INFINITY } else { min },
                        max: if count == 0 { f64::NEG_INFINITY } else { max },
                        last,
                        first_at_ns: u("first_at_ns").unwrap_or(0),
                        last_at_ns: u("last_at_ns").unwrap_or(0),
                    };
                }
            }
        }
        for a in doc.get("alerts").and_then(|v| v.as_array()).unwrap_or(&[]) {
            let at = a.get("t_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            let kind = a.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
            let detail = a.get("detail").and_then(|v| v.as_str()).unwrap_or("");
            store.mark_alert(at, kind, detail.to_string());
        }
        Ok(store)
    }
}

/// Writes a float as the tightest JSON number: integers that fit stay
/// integers (so counter series read back through `as_u64` too).
fn num(v: f64) -> microjson::Value {
    if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 {
        microjson::Value::UInt(v as u64)
    } else {
        microjson::Value::Float(v)
    }
}

/// One-line human rendering of a telemetry alert.
fn alert_detail(alert: &telemetry::Alert) -> String {
    use telemetry::Alert;
    match alert {
        Alert::Drift { client, observed_us, expected_us, deviation, .. } => format!(
            "client {client}: quantum {observed_us:.1}us vs expected {expected_us:.1}us ({:+.0}%)",
            deviation * 100.0
        ),
        Alert::SloBurn { model, short_burn, long_burn, .. } => {
            format!("{model}: burn {short_burn:.2}/{long_burn:.2}")
        }
        Alert::FaultRecovery { client, action, detail, .. } => {
            format!("client {client}: {action} ({detail})")
        }
        Alert::Rollout { model, version, action, cand_us, base_us, .. } => {
            format!("{model} v{version}: {action} ({cand_us}us vs {base_us}us)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — integer-valued samples so f64 sums
    /// stay exact under any association and brute-force recomputes can
    /// demand equality, not tolerance.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn value(&mut self) -> f64 {
            (self.next() % 1_000_000) as f64
        }
    }

    fn brute(points: &[(u64, f64)]) -> Bucket {
        let mut b = Bucket::seed(points[0].0, points[0].1);
        for &(t, v) in &points[1..] {
            b.fold_point(t, v);
        }
        b
    }

    /// Satellite: for any ingest sequence, every closed bucket in every
    /// tier agrees exactly with a brute-force recompute over the raw
    /// points it covers — including after the raw ring evicts, because
    /// the test retains the full sequence and addresses buckets by
    /// absolute ingest index.
    #[test]
    fn tiers_agree_with_brute_force_recompute() {
        for (seed, n) in [(1u64, 0usize), (2, 1), (3, 15), (4, 16), (5, 257), (6, 1_000), (7, 5_000)]
        {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            let mut store = Store::new();
            let sid = store.series_id("m", &[("k", "v")]);
            let mut all: Vec<(u64, f64)> = Vec::new();
            for i in 0..n {
                let t = i as u64 * 100_000;
                let v = rng.value();
                store.push_to(sid, t, v);
                all.push((t, v));
            }
            let s = store.series(sid);

            let fold1 = TIER1_FOLD as usize;
            for (pos, b) in s.tier1().enumerate() {
                let idx = s.tier1_evicted() as usize + pos;
                let covered = &all[idx * fold1..(idx + 1) * fold1];
                let want = brute(covered);
                assert_eq!((b.min, b.max, b.sum, b.count), (want.min, want.max, want.sum, want.count),
                    "tier1 bucket {idx} (n={n})");
                assert_eq!((b.start_ns, b.end_ns, b.last), (want.start_ns, want.end_ns, want.last));
            }
            let fold2 = fold1 * TIER2_FOLD as usize;
            for (pos, b) in s.tier2().enumerate() {
                let idx = s.tier2_evicted() as usize + pos;
                let covered = &all[idx * fold2..(idx + 1) * fold2];
                let want = brute(covered);
                assert_eq!((b.min, b.max, b.sum, b.count), (want.min, want.max, want.sum, want.count),
                    "tier2 bucket {idx} (n={n})");
            }
            // Tier counts match the fold arithmetic exactly.
            assert_eq!(s.tier1().count() as u64 + s.tier1_evicted(), (n / fold1) as u64);
            assert_eq!(s.tier2().count() as u64 + s.tier2_evicted(), (n / fold2) as u64);
            // Totals cover the whole sequence even after raw eviction.
            if n > 0 {
                let want = brute(&all);
                let t = s.totals();
                assert_eq!((t.min, t.max, t.sum, t.count), (want.min, want.max, want.sum, want.count));
                assert_eq!(s.raw_len(), n.min(RAW_CAP));
                assert_eq!(s.raw_evicted(), n.saturating_sub(RAW_CAP) as u64);
            }
        }
    }

    #[test]
    fn label_sets_intern_and_sort() {
        let mut store = Store::new();
        let a = store.intern(&[("b", "2"), ("a", "1")]);
        let b = store.intern(&[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(store.label_sets()[a as usize].render(), "{a=\"1\",b=\"2\"}");
        assert_eq!(LabelSet::new(&[]).render(), "");
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let mut rng = Rng(0xabcdef123);
        let mut store = Store::new();
        for i in 0..500u64 {
            store.push("lat", &[("client", "0")], i * 1000, rng.value() + 0.5);
            store.push("lat", &[("client", "1")], i * 1000, rng.value());
            store.push("events", &[], i * 1000, i as f64);
        }
        store.mark_alert(42_000, "drift", "client 0: quantum off".into());
        let mut one = String::new();
        store.to_json("r").write(&mut one);
        let reloaded = Store::from_json(&microjson::Value::parse(&one).unwrap()).unwrap();
        let mut two = String::new();
        reloaded.to_json("r").write(&mut two);
        assert_eq!(one, two, "save(load(x)) must equal save(x)");
        assert_eq!(reloaded.series_count(), 3);
        assert_eq!(reloaded.alerts().len(), 1);
    }

    #[test]
    fn sorted_series_orders_by_metric_then_labels() {
        let mut store = Store::new();
        store.push("z", &[], 0, 1.0);
        store.push("a", &[("x", "2")], 0, 1.0);
        store.push("a", &[("x", "1")], 0, 1.0);
        let keys: Vec<String> =
            store.sorted_series().iter().map(|s| store.series_key(s)).collect();
        assert_eq!(keys, vec!["a{x=\"1\"}", "a{x=\"2\"}", "z"]);
    }
}
