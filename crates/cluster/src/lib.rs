//! Fleet orchestration: placement, cost-aware routing, and two-cadence
//! reconfiguration for a simulated multi-device serving cluster.
//!
//! The single-pool engine becomes a fleet by instantiating N heterogeneous
//! [`gpusim::DeviceProfile`]s, each paired with its own
//! [`lifecycle`] manager and memory budget. Two control cadences operate on
//! top, mirroring the MCFP mixture-of-agents split:
//!
//! * **per-arrival routing (δt1)** — every run is stamped on arrival and
//!   sent to the device with the lowest estimated completion cost:
//!   estimated drain latency of already-queued work, plus the PCIe
//!   transfer price when the model is not resident there, plus the
//!   profile-scaled execute time ([`DeviceEstimate::cost_ns`]);
//! * **periodic reconfiguration (δt2)** — on every `ClusterTick` the
//!   observed per-model demand window is matched against per-device
//!   capacity by an exact integer min-cost flow ([`flow::solve`]), and the
//!   resulting placement is materialized as load/drain/migrate commands
//!   through the per-device lifecycle managers, which enforce the byte
//!   budgets.
//!
//! Everything is deterministic: costs are integer nanoseconds (the only
//! float is the IEEE-exact speed division in [`scaled_execute_ns`]), ties
//! break to the lowest device index, and no output depends on hash-map
//! iteration order.

#![deny(missing_docs)]

use std::sync::Arc;

use controlplane::CostOracle;
use gpusim::DeviceProfile;
use lifecycle::LifecycleConfig;
use simtime::SimDuration;

pub mod flow;

pub use flow::{solve, solve_greedy, FlowAssignment, FlowProblem};

/// How the router picks a device for an arriving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Cheapest-completion routing: minimize queued + transfer + execute.
    CostAware,
    /// Static hash placement: model `m` always runs on device
    /// `m % devices` — the baseline the fleet experiment beats.
    Static,
}

/// Configuration for the simulated fleet, consumed via
/// `EngineConfig::with_cluster`.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Device profiles, one per fleet member; index is the device id.
    pub devices: Vec<DeviceProfile>,
    /// Versioned-model registry + load bandwidth shared by every
    /// per-device lifecycle manager.
    pub lifecycle: LifecycleConfig,
    /// Reconfiguration cadence (δt2) — the `ClusterTick` period.
    pub tick: SimDuration,
    /// Routing policy (δt1).
    pub policy: RouterPolicy,
    /// Whether the min-cost-flow reconfiguration loop runs at all; off
    /// leaves the startup placement frozen (used for baselines).
    pub reconfigure: bool,
    /// Optional oracle refining the router's execute-time estimate with
    /// calibrated per-(model, batch) predictions.
    pub cost: Option<Arc<dyn CostOracle>>,
}

impl ClusterConfig {
    /// A fleet over `devices` serving the models in `lifecycle`, with
    /// cost-aware routing, reconfiguration on, and a 50 ms tick.
    pub fn new(devices: Vec<DeviceProfile>, lifecycle: LifecycleConfig) -> Self {
        ClusterConfig {
            devices,
            lifecycle,
            tick: SimDuration::from_millis(50),
            policy: RouterPolicy::CostAware,
            reconfigure: true,
            cost: None,
        }
    }

    /// Sets the reconfiguration cadence.
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the routing policy.
    pub fn with_policy(mut self, policy: RouterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables the reconfiguration loop.
    pub fn with_reconfigure(mut self, on: bool) -> Self {
        self.reconfigure = on;
        self
    }

    /// Installs a cost oracle for execute-time estimates.
    pub fn with_cost(mut self, oracle: Arc<dyn CostOracle>) -> Self {
        self.cost = Some(oracle);
        self
    }

    /// Checks the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty device list, a zero tick, or an invalid
    /// lifecycle configuration.
    pub fn validate(&self) {
        assert!(!self.devices.is_empty(), "cluster needs at least one device");
        assert!(self.tick > SimDuration::ZERO, "cluster tick must be positive");
        self.lifecycle.validate();
    }
}

/// The router's per-device view of what sending a run there would cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceEstimate {
    /// Estimated GPU nanoseconds of work already routed to the device and
    /// not yet completed — the drain latency a new arrival queues behind.
    pub queued_ns: u64,
    /// Whether the target model is serving (resident + warm) there.
    pub resident: bool,
    /// Whether a load of the target model is already in flight there (the
    /// arrival will wait, but pays no *new* transfer).
    pub loading: bool,
    /// PCIe transfer nanoseconds if a fresh load would be needed.
    pub transfer_ns: u64,
    /// Profile-scaled execute nanoseconds for this run on this device.
    pub execute_ns: u64,
}

impl DeviceEstimate {
    /// Total estimated completion cost: drain what is queued, pay the
    /// transfer only when nothing resident or in flight covers the model,
    /// then execute.
    pub fn cost_ns(&self) -> u64 {
        let transfer = if self.resident || self.loading { 0 } else { self.transfer_ns };
        self.queued_ns
            .saturating_add(transfer)
            .saturating_add(self.execute_ns)
    }
}

/// Picks the cheapest device: strictly-lower cost wins, ties keep the
/// lowest index, so the choice is independent of evaluation order.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn pick_device(estimates: &[DeviceEstimate]) -> usize {
    assert!(!estimates.is_empty(), "no devices to route to");
    let mut best = 0usize;
    let mut best_cost = estimates[0].cost_ns();
    for (i, e) in estimates.iter().enumerate().skip(1) {
        let c = e.cost_ns();
        if c < best_cost {
            best = i;
            best_cost = c;
        }
    }
    best
}

/// Scales a base-profile execute time onto a device: `base_ns /
/// speed_factor`, rounded down. A single IEEE f64 division and truncation
/// — bit-identical on every platform and run.
pub fn scaled_execute_ns(base_ns: u64, speed_factor: f64) -> u64 {
    debug_assert!(speed_factor > 0.0, "speed factor must be positive");
    (base_ns as f64 / speed_factor) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifecycle::DeploymentPlan;

    fn empty_lifecycle() -> LifecycleConfig {
        LifecycleConfig::new(DeploymentPlan::new())
    }

    fn est(queued: u64, resident: bool, transfer: u64, execute: u64) -> DeviceEstimate {
        DeviceEstimate {
            queued_ns: queued,
            resident,
            loading: false,
            transfer_ns: transfer,
            execute_ns: execute,
        }
    }

    #[test]
    fn cost_charges_transfer_only_when_not_resident() {
        let cold = est(100, false, 1_000, 50);
        let warm = est(100, true, 1_000, 50);
        assert_eq!(cold.cost_ns(), 1_150);
        assert_eq!(warm.cost_ns(), 150);
        let loading = DeviceEstimate { loading: true, ..cold };
        assert_eq!(loading.cost_ns(), 150, "an in-flight load already paid the transfer");
    }

    #[test]
    fn pick_device_prefers_cheapest_then_lowest_index() {
        let costs = [est(300, true, 0, 10), est(100, true, 0, 10), est(100, true, 0, 10)];
        assert_eq!(pick_device(&costs), 1, "tie between 1 and 2 keeps the lower index");
        let all_equal = [est(5, true, 0, 0), est(5, true, 0, 0)];
        assert_eq!(pick_device(&all_equal), 0);
    }

    #[test]
    fn resident_replica_beats_cold_faster_device() {
        // Warm slow device vs cold fast device: the transfer dwarfs the
        // execute delta, so the router stays on the resident replica.
        let warm_slow = est(0, true, 5_600_000, 1_000_000);
        let cold_fast = DeviceEstimate {
            execute_ns: scaled_execute_ns(1_000_000, 1.22),
            ..est(0, false, 5_600_000, 0)
        };
        let picked = pick_device(&[warm_slow, cold_fast]);
        assert_eq!(picked, 0);
    }

    #[test]
    fn scaled_execute_is_exact_division() {
        assert_eq!(scaled_execute_ns(1_220_000, 1.22), 1_000_000);
        assert_eq!(scaled_execute_ns(1_000_000, 1.0), 1_000_000);
        // Same inputs, same bits: rerun stability of the lone float op.
        assert_eq!(scaled_execute_ns(999_999, 1.22), scaled_execute_ns(999_999, 1.22));
    }

    #[test]
    fn config_builders_compose() {
        let cfg = ClusterConfig::new(
            vec![DeviceProfile::gtx_1080_ti(), DeviceProfile::titan_x()],
            empty_lifecycle(),
        )
        .with_tick(SimDuration::from_millis(10))
        .with_policy(RouterPolicy::Static)
        .with_reconfigure(false);
        assert_eq!(cfg.devices.len(), 2);
        assert_eq!(cfg.tick, SimDuration::from_millis(10));
        assert_eq!(cfg.policy, RouterPolicy::Static);
        assert!(!cfg.reconfigure);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_is_rejected() {
        ClusterConfig::new(Vec::new(), empty_lifecycle()).validate();
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_is_rejected() {
        ClusterConfig::new(vec![DeviceProfile::gtx_1080_ti()], empty_lifecycle())
            .with_tick(SimDuration::ZERO)
            .validate();
    }
}
