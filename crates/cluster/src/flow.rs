//! Integer-cost min-cost flow over the model-demand → device-capacity
//! bipartite graph — the δt2 reconfiguration solver.
//!
//! The graph has four layers: a source, one node per model (supply =
//! observed demand, in run units), one node per device (capacity = how many
//! run units the device can absorb, scaled by its speed), and a sink. Every
//! model→device arc exists (any model *can* be replicated anywhere) with a
//! per-unit cost in integer microseconds: the transfer price if the model
//! is not resident there plus the profile-scaled execute time. The solver
//! ships as much demand as capacity allows at minimum total cost; arcs
//! carrying flow in the solution are the placement the reconfiguration
//! loop materializes through the per-device lifecycle managers.
//!
//! Everything here is integer arithmetic over caller-provided numbers —
//! no clocks, no randomness, no hash iteration — so a plan is a pure
//! function of its [`FlowProblem`].

/// One reconfiguration instance: `demands[m]` run units per model,
/// `capacities[d]` run units per device, `costs[m][d]` per-unit cost in
/// integer microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowProblem {
    /// Demand per model, in run units.
    pub demands: Vec<u64>,
    /// Capacity per device, in run units.
    pub capacities: Vec<u64>,
    /// Per-unit shipping cost, `costs[model][device]`, microseconds.
    pub costs: Vec<Vec<u64>>,
}

impl FlowProblem {
    /// Checks shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if the cost matrix is not `demands.len() x capacities.len()`.
    pub fn validate(&self) {
        assert_eq!(self.costs.len(), self.demands.len(), "one cost row per model");
        for row in &self.costs {
            assert_eq!(row.len(), self.capacities.len(), "one cost column per device");
        }
    }
}

/// A solved assignment: `flow[m][d]` run units of model `m` placed on
/// device `d`, plus the plan's total cost and shipped volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowAssignment {
    /// Shipped units per (model, device) arc.
    pub flow: Vec<Vec<u64>>,
    /// Total cost of the shipped units (Σ flow × unit cost), microseconds.
    pub cost: u64,
    /// Total units shipped = `min(Σ demands, Σ capacities)`.
    pub shipped: u64,
}

impl FlowAssignment {
    /// Devices assigned at least one unit of model `m`, ascending index.
    pub fn placements(&self, m: usize) -> Vec<usize> {
        self.flow[m]
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(d, _)| d)
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: u64,
    cost: i64,
    /// Index of the paired reverse edge in the owner node's sibling list.
    rev: usize,
}

/// Residual graph in adjacency-list form; `graph[v]` holds v's outgoing
/// (forward and residual) edges in insertion order, which is fixed by the
/// deterministic construction below.
struct Residual {
    graph: Vec<Vec<Edge>>,
}

impl Residual {
    fn new(n: usize) -> Self {
        Residual { graph: vec![Vec::new(); n] }
    }

    fn add(&mut self, from: usize, to: usize, cap: u64, cost: i64) {
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge { to, cap, cost, rev: rev_from });
        self.graph[to].push(Edge { to: from, cap: 0, cost: -cost, rev: rev_to });
    }
}

/// Solves the instance exactly by successive shortest augmenting paths:
/// repeatedly find the cheapest residual source→sink path (Bellman-Ford —
/// residual arcs carry negative costs, so Dijkstra without potentials is
/// wrong) and push the bottleneck flow along it. Each augmentation
/// saturates at least one arc and path costs are non-decreasing, so the
/// final flow is a minimum-cost maximum flow; with these integer
/// capacities termination is immediate (at most `models + devices`
/// augmentations since every path saturates a source or sink arc).
pub fn solve(p: &FlowProblem) -> FlowAssignment {
    p.validate();
    let m = p.demands.len();
    let d = p.capacities.len();
    let n = m + d + 2;
    let (source, sink) = (0, n - 1);
    let mut res = Residual::new(n);
    for (i, &dem) in p.demands.iter().enumerate() {
        res.add(source, 1 + i, dem, 0);
    }
    for (i, row) in p.costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            res.add(1 + i, 1 + m + j, u64::MAX / 4, c as i64);
        }
    }
    for (j, &cap) in p.capacities.iter().enumerate() {
        res.add(1 + m + j, sink, cap, 0);
    }

    let mut total_cost: i64 = 0;
    let mut shipped: u64 = 0;
    loop {
        // Bellman-Ford from the source over the residual graph. Nodes and
        // edges are scanned in index order, so tie-costs resolve to the
        // lexicographically first path — same plan on every run.
        let mut dist = vec![i64::MAX; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
        dist[source] = 0;
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n {
                if dist[v] == i64::MAX {
                    continue;
                }
                for (ei, e) in res.graph[v].iter().enumerate() {
                    if e.cap > 0 && dist[v] + e.cost < dist[e.to] {
                        dist[e.to] = dist[v] + e.cost;
                        prev[e.to] = Some((v, ei));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if dist[sink] == i64::MAX {
            break;
        }
        // Bottleneck along the path, then push.
        let mut bottleneck = u64::MAX;
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            bottleneck = bottleneck.min(res.graph[u][ei].cap);
            v = u;
        }
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            res.graph[u][ei].cap -= bottleneck;
            let rev = res.graph[u][ei].rev;
            res.graph[v][rev].cap += bottleneck;
            v = u;
        }
        total_cost += dist[sink] * bottleneck as i64;
        shipped += bottleneck;
    }

    // Read the model→device flows back off the residual: the reverse arc's
    // capacity is exactly the flow pushed forward.
    let mut flow = vec![vec![0u64; d]; m];
    for (i, row) in flow.iter_mut().enumerate() {
        // Model node 1+i's arcs: [0] is the residual of source→model, then
        // one forward arc per device in index order.
        for (j, cell) in row.iter_mut().enumerate() {
            let e = &res.graph[1 + i][1 + j];
            debug_assert_eq!(e.to, 1 + m + j, "arc order is construction order");
            // The reverse arc lives on the device node; its capacity is
            // exactly the flow pushed forward on model→device.
            *cell = res.graph[e.to][e.rev].cap;
        }
    }
    FlowAssignment { flow, cost: total_cost as u64, shipped }
}

/// Greedy fallback used when a caller wants an O(M·D·log) plan without the
/// augmenting-path machinery (and the property test cross-checking `solve`).
///
/// Bound: this instance is a *complete bipartite* transportation problem —
/// every unit of demand may ship over any arc — so any maximal strategy,
/// greedy included, ships exactly `F = min(Σ demands, Σ capacities)` units,
/// the same volume as the optimum. With `c_min`/`c_max` the smallest and
/// largest per-unit arc costs, `cost(greedy) <= c_max * F` while
/// `cost(OPT) >= c_min * F`, hence `cost(greedy) <= (c_max / c_min) *
/// cost(OPT)` (and greedy is exact when all arc costs are equal). The
/// ratio is tight only when greedy is forced onto c_max arcs, i.e. when
/// cheap devices are saturated — the common case lands far closer.
pub fn solve_greedy(p: &FlowProblem) -> FlowAssignment {
    p.validate();
    let m = p.demands.len();
    let d = p.capacities.len();
    let mut order: Vec<(u64, usize, usize)> = Vec::with_capacity(m * d);
    for (i, row) in p.costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            order.push((c, i, j));
        }
    }
    // Total order (cost, model, device): no equal elements, so the sort is
    // deterministic regardless of algorithm stability.
    order.sort_unstable();
    let mut demand = p.demands.clone();
    let mut cap = p.capacities.clone();
    let mut flow = vec![vec![0u64; d]; m];
    let mut cost = 0u64;
    let mut shipped = 0u64;
    for (c, i, j) in order {
        let x = demand[i].min(cap[j]);
        if x == 0 {
            continue;
        }
        demand[i] -= x;
        cap[j] -= x;
        flow[i][j] += x;
        cost += c * x;
        shipped += x;
    }
    FlowAssignment { flow, cost, shipped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(demands: &[u64], capacities: &[u64], costs: &[&[u64]]) -> FlowProblem {
        FlowProblem {
            demands: demands.to_vec(),
            capacities: capacities.to_vec(),
            costs: costs.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn ships_min_of_demand_and_capacity() {
        let p = problem(&[5, 3], &[4, 2], &[&[1, 2], &[3, 4]]);
        let a = solve(&p);
        assert_eq!(a.shipped, 6, "capacity-bound instance ships all capacity");
        let q = problem(&[1, 1], &[10, 10], &[&[1, 2], &[3, 4]]);
        assert_eq!(solve(&q).shipped, 2, "demand-bound instance ships all demand");
    }

    #[test]
    fn picks_the_cheap_assignment() {
        // Model 0 is cheap on device 1, model 1 cheap on device 0; both fit.
        let p = problem(&[2, 2], &[2, 2], &[&[10, 1], &[1, 10]]);
        let a = solve(&p);
        assert_eq!(a.flow, vec![vec![0, 2], vec![2, 0]]);
        assert_eq!(a.cost, 4);
        assert_eq!(a.placements(0), vec![1]);
        assert_eq!(a.placements(1), vec![0]);
    }

    #[test]
    fn splits_demand_when_the_cheap_device_is_full() {
        // 4 units of one hot model onto devices with capacity 3 + 3:
        // the optimum replicates — 3 on the cheap device, 1 on the other.
        let p = problem(&[4], &[3, 3], &[&[1, 5]]);
        let a = solve(&p);
        assert_eq!(a.flow, vec![vec![3, 1]]);
        assert_eq!(a.cost, 8);
        assert_eq!(a.placements(0), vec![0, 1]);
    }

    #[test]
    fn beats_or_matches_greedy_and_respects_its_bound() {
        // Greedy saturates device 0 with model 0 (cost 1 arcs) and then
        // pays 9 per unit for model 1; the exact solver crosses them.
        let p = problem(&[2, 2], &[2, 2], &[&[1, 2], &[2, 9]]);
        let exact = solve(&p);
        let greedy = solve_greedy(&p);
        assert_eq!(exact.shipped, greedy.shipped, "both ship F = min(demand, cap)");
        assert!(exact.cost <= greedy.cost);
        // The proven bound: greedy <= (c_max / c_min) * OPT.
        let c_min = 1u64;
        let c_max = 9u64;
        assert!(greedy.cost * c_min <= exact.cost * c_max);
    }

    #[test]
    fn zero_demand_and_zero_capacity_are_legal() {
        let p = problem(&[0, 4], &[0, 2], &[&[1, 1], &[1, 1]]);
        let a = solve(&p);
        assert_eq!(a.shipped, 2);
        assert_eq!(a.flow[0], vec![0, 0]);
        assert_eq!(a.flow[1], vec![0, 2]);
    }

    #[test]
    fn solver_is_deterministic_under_cost_ties() {
        // All-equal costs: the lexicographically first augmenting paths win,
        // so the plan is reproducible and prefers low indices.
        let p = problem(&[2, 2], &[2, 2], &[&[3, 3], &[3, 3]]);
        let a = solve(&p);
        let b = solve(&p);
        assert_eq!(a, b);
        assert_eq!(a.flow, vec![vec![2, 0], vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "one cost row per model")]
    fn shape_mismatch_is_rejected() {
        let p = problem(&[1, 2], &[1], &[&[1]]);
        solve(&p);
    }
}
