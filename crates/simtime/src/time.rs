//! Nanosecond-resolution virtual instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is a newtype over `u64` so virtual instants can never be mixed
/// up with wall-clock values or plain counters.
///
/// ```
/// use simtime::{SimDuration, SimTime};
///
/// let t = SimTime::from_micros(3) + SimDuration::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use simtime::SimDuration;
///
/// let d = SimDuration::from_millis(2);
/// assert_eq!(d.as_micros_f64(), 2_000.0);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to nanoseconds
    /// and clamping negative values to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(if secs <= 0.0 { 0 } else { (secs * 1e9).round() as u64 })
    }

    /// Creates a span from a float number of microseconds, rounding to
    /// nanoseconds and clamping negative values to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        SimDuration(if micros <= 0.0 { 0 } else { (micros * 1e3).round() as u64 })
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration factor {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "duration underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_sub(d), t);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26).as_nanos(), 13);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_nanos(5);
        assert_eq!(t.saturating_sub(SimDuration::from_nanos(10)), SimTime::ZERO);
        let d = SimDuration::from_nanos(5);
        assert_eq!(d.saturating_sub(SimDuration::from_nanos(10)), SimDuration::ZERO);
    }
}
