//! A hierarchical timing wheel — the serving engine's production event queue.
//!
//! The 4-ary heap in [`queue`](crate::queue) costs `O(log n)` integer
//! comparisons per operation. The simulator's schedule pattern is far more
//! regular than the heap assumes: almost every event fires within a few
//! hundred microseconds of `now` (kernel completions, launch overheads,
//! quantum expiries), and virtual time only moves forward. A timing wheel
//! turns that pattern into `O(1)` schedule and amortized-`O(1)` pop.
//!
//! # Layout
//!
//! Virtual time is quantized into *ticks* of `2^TICK_BITS` ns (4.096 µs).
//! Three wheel levels of 256 slots each cover, per level:
//!
//! | level | slot width | horizon from the cursor |
//! |-------|------------|-------------------------|
//! | 0     | 1 tick (≈4 µs)      | ≈1 ms    |
//! | 1     | 256 ticks (≈1 ms)   | ≈268 ms  |
//! | 2     | 64Ki ticks (≈268 ms)| ≈69 s    |
//!
//! Events beyond the 69-second horizon (deadline watchdogs, lifecycle
//! epochs) land in a sorted overflow list and are pulled into the wheels as
//! the cursor approaches them. Each event cascades at most twice on its way
//! down, so total work per event is constant.
//!
//! # Storage
//!
//! Slots do not own `Vec`s of events — 768 separately-heap-allocated
//! buffers would turn every schedule and pop into a cold-line chase, and at
//! the engine's typical queue depth (tens of events) the constant factor is
//! the whole game. Instead all pending events live in one slab
//! ([`TimingWheel::nodes`], recycled through a free list) and each slot is
//! the head of an intrusive singly-linked list threaded through the slab.
//! The slab stays small and hot; the per-level head arrays are 1 KiB each.
//! List order within a slot is arbitrary (push-front), which is fine: pops
//! go through a sort or min-scan keyed on the unique packed key.
//!
//! # Ordering contract
//!
//! Identical to [`EventQueue`](crate::EventQueue) and
//! [`BaselineEventQueue`](crate::BaselineEventQueue): pops come in
//! non-decreasing time order and FIFO among same-instant ties. Internally
//! every event carries the same packed `(time << 64) | seq` key the heap
//! uses; the events of the tick under the cursor sit in a small sorted
//! *front* buffer, so within-tick ordering is exact — the wheel never
//! approximates. Because keys are unique, the wheel's pop sequence is
//! byte-identical to both heaps', which the property suite enforces.

use crate::SimTime;
use std::mem;

/// Tick width: `2^12` ns ≈ 4 µs — wide enough that a front-buffer refill
/// amortizes the cursor advance over several events (kernel completions
/// arrive a few µs apart), narrow enough that refills stay small.
const TICK_BITS: u32 = 12;
/// Slots per level (`2^SLOT_BITS`).
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;
/// Wheel levels; beyond `SLOT_BITS * LEVELS` ticks of horizon events
/// overflow into the sorted far-future list.
const LEVELS: usize = 3;
/// Cursor-relative tick horizon covered by the wheels.
const HORIZON_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);
/// Null link for the intrusive slot lists and the free list.
const NIL: u32 = u32::MAX;

fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

fn key_tick(key: u128) -> u64 {
    ((key >> 64) as u64) >> TICK_BITS
}

/// One slab cell: either a pending event threaded into a slot list, or a
/// vacant cell threaded into the free list.
#[derive(Debug)]
enum Node<E> {
    Vacant(u32),
    Full { key: u128, next: u32, event: E },
}

/// The hierarchical timing-wheel event queue.
///
/// Drop-in replacement for [`EventQueue`](crate::EventQueue): same API,
/// same ordering contract, same deterministic pop sequence.
///
/// ```
/// use simtime::{SimTime, TimingWheel};
///
/// let mut q = TimingWheel::new();
/// q.schedule(SimTime::from_nanos(7), 'b');
/// q.schedule(SimTime::from_nanos(7), 'c');
/// q.schedule(SimTime::from_nanos(3), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// Events of the tick under the cursor, sorted by key *descending* so
    /// the next event pops from the back.
    front: Vec<(u128, E)>,
    /// Slab of pending events; vacant cells form a free list.
    nodes: Vec<Node<E>>,
    /// Free-list head into `nodes`, or [`NIL`].
    free: u32,
    /// Per-level slot list heads into `nodes`, or [`NIL`].
    heads: [[u32; SLOTS]; LEVELS],
    /// Per-level slot occupancy bitmaps (bit set ⇔ head is not [`NIL`]).
    occupied: [[u64; WORDS]; LEVELS],
    /// Pending events per level, so empty levels cost one branch to skip.
    counts: [usize; LEVELS],
    /// Far-future events (beyond [`HORIZON_TICKS`]), sorted by key
    /// descending; drained into the wheels as the cursor approaches.
    overflow: Vec<(u128, E)>,
    /// Every wheel/overflow event has `tick > cur_tick`; the front buffer
    /// holds `tick <= cur_tick`. Only ever advances.
    cur_tick: u64,
    seq: u64,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimingWheel {
            front: Vec::new(),
            nodes: Vec::new(),
            free: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [[0; WORDS]; LEVELS],
            counts: [0; LEVELS],
            overflow: Vec::new(),
            cur_tick: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Creates an empty wheel with room for `cap` events. Slab and front
    /// storage are retained across pops, so steady state allocates nothing
    /// either way.
    pub fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.front.reserve(cap.min(1024));
        w.nodes.reserve(cap.min(1024));
        w
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.front.reserve(additional);
        self.nodes.reserve(additional);
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Scheduling into the past (before the last popped instant) is
    /// tolerated and behaves like scheduling for that instant's tick: the
    /// event joins the front buffer in key order.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let key = pack(at, self.seq);
        self.seq += 1;
        self.len += 1;
        let tick = at.as_nanos() >> TICK_BITS;
        if tick <= self.cur_tick {
            // Same tick as the cursor (or earlier): insert into the sorted
            // front buffer. The new key's seq is the largest ever issued,
            // so among equal times it lands closest to the buffer's start.
            let pos = self.front.partition_point(|&(k, _)| k > key);
            self.front.insert(pos, (key, event));
        } else {
            self.place(tick, key, event);
        }
    }

    /// Files a future event into the wheel level matching its distance from
    /// the cursor, or into the overflow list past the horizon.
    #[inline]
    fn place(&mut self, tick: u64, key: u128, event: E) {
        let delta = tick - self.cur_tick;
        let (lvl, slot) = if delta < SLOTS as u64 {
            (0, (tick & SLOT_MASK) as usize)
        } else if delta < 1 << (2 * SLOT_BITS) {
            (1, ((tick >> SLOT_BITS) & SLOT_MASK) as usize)
        } else if delta < HORIZON_TICKS {
            (2, ((tick >> (2 * SLOT_BITS)) & SLOT_MASK) as usize)
        } else {
            let pos = self.overflow.partition_point(|&(k, _)| k > key);
            self.overflow.insert(pos, (key, event));
            return;
        };
        let next = self.heads[lvl][slot];
        let i = if self.free != NIL {
            let i = self.free;
            match mem::replace(&mut self.nodes[i as usize], Node::Full { key, next, event }) {
                Node::Vacant(nf) => self.free = nf,
                Node::Full { .. } => unreachable!("free list points at a full node"),
            }
            i
        } else {
            self.nodes.push(Node::Full { key, next, event });
            (self.nodes.len() - 1) as u32
        };
        self.heads[lvl][slot] = i;
        self.occupied[lvl][slot / 64] |= 1 << (slot % 64);
        self.counts[lvl] += 1;
    }

    /// Vacates slab cell `i`, pushing it onto the free list, and returns its
    /// contents: `(key, next-in-slot-list, event)`.
    #[inline]
    fn take_node(&mut self, i: u32) -> (u128, u32, E) {
        match mem::replace(&mut self.nodes[i as usize], Node::Vacant(self.free)) {
            Node::Full { key, next, event } => {
                self.free = i;
                (key, next, event)
            }
            Node::Vacant(_) => unreachable!("slot list points at a vacant node"),
        }
    }

    /// Unhooks `slot`'s list from level `lvl` and returns its head.
    #[inline]
    fn detach(&mut self, lvl: usize, slot: usize) -> u32 {
        self.occupied[lvl][slot / 64] &= !(1 << (slot % 64));
        mem::replace(&mut self.heads[lvl][slot], NIL)
    }

    /// First occupied slot of level `lvl` at circular distance ≥ 1 from
    /// `start`, together with that distance, or `None` when the level is
    /// empty. Scans the occupancy bitmap a word at a time: the word holding
    /// `start + 1` with its lower bits masked, the other words in circular
    /// order, then the first word's masked-off low bits (which circularly
    /// are the farthest, `start` itself included at distance [`SLOTS`]).
    fn next_occupied(&self, lvl: usize, start: usize) -> Option<(usize, usize)> {
        let hit = |slot: usize| {
            let dist = ((slot + SLOTS - start - 1) & (SLOTS - 1)) + 1;
            Some((slot, dist))
        };
        let begin = (start + 1) & (SLOTS - 1);
        let (bw, bb) = (begin / 64, begin % 64);
        let high = self.occupied[lvl][bw] & (!0u64 << bb);
        if high != 0 {
            return hit(bw * 64 + high.trailing_zeros() as usize);
        }
        for i in 1..WORDS {
            let wi = (bw + i) % WORDS;
            let w = self.occupied[lvl][wi];
            if w != 0 {
                return hit(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        let low = self.occupied[lvl][bw] & !(!0u64 << bb);
        if low != 0 {
            return hit(bw * 64 + low.trailing_zeros() as usize);
        }
        None
    }

    /// Smallest key in `slot` of level `lvl` (list scan; slots stay small).
    fn slot_min(&self, lvl: usize, slot: usize) -> u128 {
        let mut min = u128::MAX;
        let mut h = self.heads[lvl][slot];
        while h != NIL {
            match &self.nodes[h as usize] {
                Node::Full { key, next, .. } => {
                    min = min.min(*key);
                    h = *next;
                }
                Node::Vacant(_) => unreachable!("slot list points at a vacant node"),
            }
        }
        debug_assert!(min != u128::MAX, "occupied slot is non-empty");
        min
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let (key, event) = self.front.pop().expect("advance filled the front");
        self.len -= 1;
        Some((unpack_time(key), event))
    }

    /// [`pop`](Self::pop), but only if the earliest event is due at or
    /// before `bound` — the windowed pop of the sharded engine loop. Events
    /// beyond the bound stay queued (an already-drained front entry simply
    /// waits there; `schedule` keeps the front sorted around it).
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let &(key, _) = self.front.last().expect("advance filled the front");
        if unpack_time(key) > bound {
            return None;
        }
        let (key, event) = self.front.pop().expect("checked non-empty");
        self.len -= 1;
        Some((unpack_time(key), event))
    }

    /// Routes an event relative to the *current* cursor: into the front
    /// buffer when its tick is due, into a wheel level or overflow
    /// otherwise. Assumes the front buffer is currently sorted.
    fn file(&mut self, key: u128, event: E) {
        let tick = key_tick(key);
        if tick <= self.cur_tick {
            let pos = self.front.partition_point(|&(k, _)| k > key);
            self.front.insert(pos, (key, event));
        } else {
            self.place(tick, key, event);
        }
    }

    /// Detaches `slot` of level `lvl` and re-files every event against the
    /// current cursor.
    fn cascade(&mut self, lvl: usize, slot: usize) {
        let mut h = self.detach(lvl, slot);
        while h != NIL {
            let (k, next, e) = self.take_node(h);
            self.counts[lvl] -= 1;
            h = next;
            self.file(k, e);
        }
    }

    /// Advances the cursor and eagerly cascades, at every upper level, the
    /// slot whose group window the cursor just entered.
    ///
    /// This maintains the invariant the slot scans rely on: each occupied
    /// slot of level `k` holds exactly one `tick >> (8k)` group, and the
    /// slot at the cursor's own position holds only the full-revolution
    /// group (circularly the farthest). Without the eager cascade, a group
    /// whose window the cursor entered could linger at circular distance
    /// 256 and be ordered after later groups.
    fn move_cursor(&mut self, new_tick: u64) {
        let old = self.cur_tick;
        if new_tick <= old {
            return;
        }
        self.cur_tick = new_tick;
        for lvl in 1..LEVELS {
            let shift = SLOT_BITS * lvl as u32;
            if new_tick >> shift == old >> shift || self.counts[lvl] == 0 {
                // Same group as before, or nothing filed at this level:
                // nothing can have come due here (and coarser levels only
                // move when this one does, so stop once the group matches).
                if new_tick >> shift == old >> shift {
                    break;
                }
                continue;
            }
            // Only the entered group's slot can hold newly-due events: any
            // other crossed group would have contained events earlier than
            // the jump target, contradicting the target being the minimum.
            let slot = ((new_tick >> shift) & SLOT_MASK) as usize;
            if self.occupied[lvl][slot / 64] & (1 << (slot % 64)) != 0 {
                self.cascade(lvl, slot);
            }
        }
    }

    /// Moves the cursor to the next pending tick and fills the front buffer
    /// with that tick's events, cascading upper-level slots on the way.
    /// Precondition: the front is empty and `len > 0`.
    fn advance(&mut self) {
        loop {
            // Pull overflow events that fit under the horizon. Every wheel
            // event was filed with `delta < HORIZON_TICKS` against an older
            // (smaller) cursor, so wheel keys are always below
            // `cur_tick + HORIZON_TICKS` — after this drain the remaining
            // overflow cannot precede anything in the wheels.
            while let Some(&(k, _)) = self.overflow.last() {
                if key_tick(k) >= self.cur_tick.saturating_add(HORIZON_TICKS) {
                    break;
                }
                let (k, e) = self.overflow.pop().expect("checked non-empty");
                self.place(key_tick(k), k, e);
            }

            // Fast path for the engine's steady state: everything pending
            // sits in level 0 (the just-drained overflow remainder is
            // beyond the horizon, so it cannot precede level 0). The slot
            // holds exactly one tick group, so any member's tick is the
            // cursor target, no cross-level min compare is needed, and no
            // upper-level cascade can fire.
            if self.counts[1] == 0 && self.counts[2] == 0 {
                if self.counts[0] == 0 {
                    let &(k, _) = self.overflow.last().expect("len > 0");
                    self.cur_tick = self.cur_tick.max(key_tick(k) - 1);
                    continue;
                }
                let start = (self.cur_tick & SLOT_MASK) as usize;
                let (slot, _) = self.next_occupied(0, start).expect("counts[0] > 0");
                let mut h = self.detach(0, slot);
                let mut first = true;
                while h != NIL {
                    let (k, next, e) = self.take_node(h);
                    if first {
                        self.cur_tick = self.cur_tick.max(key_tick(k));
                        first = false;
                    }
                    self.counts[0] -= 1;
                    h = next;
                    self.front.push((k, e));
                }
                self.front.sort_unstable_by_key(|&(k, _)| std::cmp::Reverse(k));
                return;
            }

            // The earliest pending event lives in the circularly-nearest
            // occupied slot of one of the levels; compare their minima
            // (upper levels can hold events already due for cascade).
            // Empty levels — the common case above level 0 — cost one
            // branch.
            let mut best: Option<(usize, usize, u128)> = None;
            for lvl in 0..LEVELS {
                if self.counts[lvl] == 0 {
                    continue;
                }
                let start = ((self.cur_tick >> (SLOT_BITS * lvl as u32)) & SLOT_MASK) as usize;
                if let Some((slot, _)) = self.next_occupied(lvl, start) {
                    let min = self.slot_min(lvl, slot);
                    if best.is_none_or(|(_, _, b)| min < b) {
                        best = Some((lvl, slot, min));
                    }
                }
            }

            match best {
                Some((0, slot, min)) => {
                    // Level-0 slots hold exactly one tick. Move the whole
                    // slot into the front buffer, earliest key last. The
                    // eager cascade may route same-tick stragglers from
                    // upper levels into the front first; the sort below
                    // covers both.
                    self.move_cursor(key_tick(min));
                    let mut h = self.detach(0, slot);
                    while h != NIL {
                        let (k, next, e) = self.take_node(h);
                        self.counts[0] -= 1;
                        h = next;
                        self.front.push((k, e));
                    }
                    self.front.sort_unstable_by_key(|&(k, _)| std::cmp::Reverse(k));
                    if !self.front.is_empty() {
                        return;
                    }
                }
                Some((lvl, slot, min)) => {
                    // Cascade: advance the cursor to just before the slot's
                    // earliest tick and re-file its events one level down.
                    self.move_cursor(key_tick(min) - 1);
                    self.cascade(lvl, slot);
                    if !self.front.is_empty() {
                        return;
                    }
                }
                None => {
                    // Wheels empty: jump the cursor to the overflow minimum
                    // and re-drain.
                    let &(k, _) = self.overflow.last().expect("len > 0");
                    self.move_cursor(key_tick(k) - 1);
                }
            }
        }
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&(k, _)) = self.front.last() {
            return Some(unpack_time(k));
        }
        let mut best: Option<u128> = None;
        for lvl in 0..LEVELS {
            if self.counts[lvl] == 0 {
                continue;
            }
            let start = ((self.cur_tick >> (SLOT_BITS * lvl as u32)) & SLOT_MASK) as usize;
            if let Some((slot, _)) = self.next_occupied(lvl, start) {
                let min = self.slot_min(lvl, slot);
                if best.is_none_or(|b| min < b) {
                    best = Some(min);
                }
            }
        }
        // Unlike `advance` (which drains first), peek must compare the
        // overflow minimum directly: a wheel event filed against a newer
        // cursor can sit beyond an old overflow entry.
        if let Some(&(k, _)) = self.overflow.last() {
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        best.map(unpack_time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events, keeping allocated slab capacity.
    pub fn clear(&mut self) {
        self.front.clear();
        self.nodes.clear();
        self.free = NIL;
        self.heads = [[NIL; SLOTS]; LEVELS];
        self.occupied = [[0; WORDS]; LEVELS];
        self.counts = [0; LEVELS];
        self.overflow.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaselineEventQueue, DetRng, SimDuration};

    #[test]
    fn pops_in_time_order() {
        let mut q = TimingWheel::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = TimingWheel::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn schedule_at_current_tick_keeps_order() {
        let mut q = TimingWheel::new();
        q.schedule(SimTime::from_nanos(100), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        // Same tick as the popped event, later seq: still pops, after any
        // earlier same-time entries.
        q.schedule(SimTime::from_nanos(100), "b");
        q.schedule(SimTime::from_nanos(100), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = TimingWheel::new();
        let far = SimTime::ZERO + SimDuration::from_secs(120);
        let farther = SimTime::ZERO + SimDuration::from_secs(240);
        q.schedule(far, "far");
        q.schedule(SimTime::from_nanos(50), "near");
        q.schedule(farther, "farther");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap(), (far, "far"));
        assert_eq!(q.pop().unwrap(), (farther, "farther"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascade_preserves_order_across_level_boundaries() {
        // Straddle the level-0 horizon (256 ticks) and the level-1 horizon
        // (64Ki ticks) with events 1 tick apart on each side.
        let tick = 1u64 << TICK_BITS;
        let mut q = TimingWheel::new();
        let mut ats: Vec<u64> = Vec::new();
        for base in [255 * tick, 256 * tick, 65_535 * tick, 65_536 * tick] {
            for d in 0..4u64 {
                ats.push(base + d * (tick / 2));
            }
        }
        // Schedule in reverse so every pop must reorder.
        for &at in ats.iter().rev() {
            q.schedule(SimTime::from_nanos(at), at);
        }
        let mut popped = Vec::new();
        while let Some((_, v)) = q.pop() {
            popped.push(v);
        }
        let mut want = ats.clone();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    #[test]
    fn matches_baseline_on_random_interleavings() {
        for case in 0..32u64 {
            let mut rng = DetRng::new(0xA11E ^ case);
            let mut wheel: TimingWheel<u64> = TimingWheel::new();
            let mut slow: BaselineEventQueue<u64> = BaselineEventQueue::new();
            let mut now = 0u64;
            for step in 0..600u64 {
                if rng.next_f64() < 0.6 || wheel.is_empty() {
                    // Mix of same-instant ties, short horizons, cascade
                    // boundaries and far-future outliers.
                    let at = now
                        + match rng.range_u64(0, 10) {
                            0..=3 => rng.range_u64(0, 20),
                            4..=6 => rng.range_u64(0, 1 << 14),
                            7..=8 => rng.range_u64(0, 1 << 22),
                            _ => rng.range_u64(0, 1 << 40),
                        };
                    wheel.schedule(SimTime::from_nanos(at), step);
                    slow.schedule(SimTime::from_nanos(at), step);
                } else {
                    let got = wheel.pop();
                    assert_eq!(got, slow.pop(), "case {case} step {step}");
                    now = got.expect("non-empty").0.as_nanos();
                }
                assert_eq!(wheel.peek_time(), slow.peek_time(), "case {case} step {step}");
                assert_eq!(wheel.len(), slow.len());
            }
            while !wheel.is_empty() {
                assert_eq!(wheel.pop(), slow.pop(), "case {case} drain");
            }
            assert!(slow.is_empty());
        }
    }

    #[test]
    fn clear_empties_and_reuses() {
        let mut q = TimingWheel::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::ZERO + SimDuration::from_secs(100), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(9), 3)));
    }
}
