//! The pending-event set of the discrete-event simulator.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// *same* instant are popped in insertion order (FIFO), which keeps the whole
/// simulation deterministic without relying on heap internals.
///
/// ```
/// use simtime::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(7), 'b');
/// q.schedule(SimTime::from_nanos(7), 'c');
/// q.schedule(SimTime::from_nanos(3), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(15), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }
}
