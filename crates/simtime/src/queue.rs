//! The pending-event set of the discrete-event simulator.
//!
//! [`EventQueue`] is the hottest structure in the simulator: every one of
//! the millions of events in a paper-scale run passes through one
//! `schedule` and one `pop`. The implementation is a 4-ary implicit min-heap
//! over a *packed* 128-bit key — `(time << 64) | seq` — so each sift step
//! costs a single integer comparison and the tree is half as deep as a
//! binary heap (fewer cache lines touched per operation). Sifts are
//! hole-based: the moving entry is lifted out once and parents/children are
//! shifted into the hole with single copies, instead of full swaps at every
//! level.
//!
//! The documented ordering contract (non-decreasing time, FIFO among ties)
//! is identical to the original binary-heap implementation, which is kept
//! as [`BaselineEventQueue`] — the oracle for the property suite and the
//! reference point for the perfsuite speedup measurement. Because every key
//! is unique (the sequence number strictly increases), *any* correct
//! priority queue yields the same pop sequence; swapping the heap shape
//! cannot perturb simulation results.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap arity. Four keeps parent/child index math to shifts and lands a
/// node's children in at most two cache lines of the key array.
const ARITY: usize = 4;

/// A deterministic discrete-event queue.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// *same* instant are popped in insertion order (FIFO), which keeps the whole
/// simulation deterministic without relying on heap internals.
///
/// ```
/// use simtime::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(7), 'b');
/// q.schedule(SimTime::from_nanos(7), 'c');
/// q.schedule(SimTime::from_nanos(3), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Heap-ordered packed keys — `(time << 64) | seq`, unique by
    /// construction. Kept separate from the payloads so child scans in
    /// `sift_down` touch a dense run of keys.
    keys: Vec<u128>,
    /// Event payloads, index-aligned with `keys`.
    events: Vec<E>,
    seq: u64,
}

fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            events: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events, so
    /// steady-state serving never reallocates the heap.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            keys: Vec::with_capacity(cap),
            events: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.events.reserve(additional);
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.keys.push(pack(at, seq));
        self.events.push(event);
        self.sift_up(self.keys.len() - 1);
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let n = self.keys.len();
        let (key, event) = match n {
            0 => return None,
            1 => (
                self.keys.pop().expect("non-empty"),
                self.events.pop().expect("non-empty"),
            ),
            _ => {
                let last_key = self.keys.pop().expect("non-empty");
                let last_event = self.events.pop().expect("non-empty");
                // SAFETY: the queue still holds ≥1 entry, so index 0 is
                // valid; `sift_down` treats it as a hole and fills it (see
                // its safety comment), so the read value is never duplicated.
                let root_key = self.keys[0];
                let root_event = unsafe { std::ptr::read(self.events.as_ptr()) };
                self.sift_down(0, last_key, last_event);
                (root_key, root_event)
            }
        };
        Some((unpack_time(key), event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| unpack_time(k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Drops all pending events, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.events.clear();
    }

    /// Hole-based sift toward the root: the entry at `pos` is lifted out
    /// once, greater parents are shifted down with single copies, and the
    /// entry is written into its final slot.
    fn sift_up(&mut self, mut pos: usize) {
        let keys = self.keys.as_mut_ptr();
        let events = self.events.as_mut_ptr();
        // SAFETY: `pos < len` on entry; every index touched is a 4-ary-heap
        // parent of `pos`, hence `< len`, and the two arrays are always the
        // same length. The entry is read out once and written back exactly
        // once, and no comparison in between can panic (plain `u128`
        // compares), so no slot is ever duplicated or leaked.
        unsafe {
            let key = *keys.add(pos);
            let event = std::ptr::read(events.add(pos));
            while pos > 0 {
                let parent = (pos - 1) / ARITY;
                if key >= *keys.add(parent) {
                    break;
                }
                *keys.add(pos) = *keys.add(parent);
                std::ptr::copy_nonoverlapping(events.add(parent), events.add(pos), 1);
                pos = parent;
            }
            *keys.add(pos) = key;
            std::ptr::write(events.add(pos), event);
        }
    }

    /// Hole-based sift toward the leaves: position `pos` is a hole (its old
    /// value has been moved out by the caller); smaller children shift up
    /// into it and the carried entry lands in the final hole. See
    /// [`Self::sift_up`].
    fn sift_down(&mut self, mut pos: usize, key: u128, event: E) {
        let n = self.keys.len();
        let keys = self.keys.as_mut_ptr();
        let events = self.events.as_mut_ptr();
        // SAFETY: as in `sift_up` — all indices are bounds-checked against
        // `n` before use, the carried entry is written exactly once, and
        // `u128` comparisons cannot panic mid-sift.
        unsafe {
            loop {
                let first_child = pos * ARITY + 1;
                if first_child >= n {
                    break;
                }
                let last_child = (first_child + ARITY).min(n);
                let mut min_idx = first_child;
                let mut min_key = *keys.add(first_child);
                for c in first_child + 1..last_child {
                    let k = *keys.add(c);
                    if k < min_key {
                        min_key = k;
                        min_idx = c;
                    }
                }
                if min_key >= key {
                    break;
                }
                *keys.add(pos) = min_key;
                std::ptr::copy_nonoverlapping(events.add(min_idx), events.add(pos), 1);
                pos = min_idx;
            }
            *keys.add(pos) = key;
            std::ptr::write(events.add(pos), event);
        }
    }
}

/// The original binary-heap event queue, kept as the comparison oracle.
///
/// The property suite checks [`EventQueue`] against this implementation (and
/// against a sorted-stable reference), and the perfsuite benchmark reports
/// the speedup of the 4-ary queue over this baseline. Semantics are
/// identical: non-decreasing time order, FIFO among same-instant ties.
#[derive(Debug)]
pub struct BaselineEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for BaselineEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BaselineEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BaselineEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(15), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_does_not_grow_within_bound() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..64u64 {
            q.schedule(SimTime::from_nanos(i % 7), i);
        }
        assert_eq!(q.len(), 64);
        // Drain fully ordered.
        let mut prev = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= prev);
            prev = at;
        }
    }

    #[test]
    fn matches_baseline_on_random_interleavings() {
        for case in 0..32u64 {
            let mut rng = DetRng::new(0x9A9A ^ case);
            let mut fast: EventQueue<u64> = EventQueue::new();
            let mut slow: BaselineEventQueue<u64> = BaselineEventQueue::new();
            for step in 0..500u64 {
                if rng.next_f64() < 0.6 || fast.is_empty() {
                    // Small time range forces plenty of same-instant ties.
                    let at = SimTime::from_nanos(rng.range_u64(0, 20));
                    fast.schedule(at, step);
                    slow.schedule(at, step);
                } else {
                    assert_eq!(fast.pop(), slow.pop(), "case {case} step {step}");
                }
                assert_eq!(fast.peek_time(), slow.peek_time());
                assert_eq!(fast.len(), slow.len());
            }
            while !fast.is_empty() {
                assert_eq!(fast.pop(), slow.pop(), "case {case} drain");
            }
            assert!(slow.is_empty());
        }
    }
}
