#![deny(missing_docs)]

//! Virtual-time foundations for the Olympian discrete-event simulator.
//!
//! The whole reproduction runs on a *virtual* clock so that every experiment
//! is deterministic given a seed and finishes in milliseconds of wall time
//! regardless of how many seconds of simulated GPU time it covers.
//!
//! Three building blocks live here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution instants and spans,
//!   newtypes so they can never be confused with wall-clock values.
//! * [`EventQueue`] — a total-ordered pending-event set with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`DetRng`] — a small, self-contained SplitMix64-based PRNG with the
//!   handful of distributions the simulator needs (uniform, normal,
//!   lognormal). Self-contained so that simulation results can never drift
//!   with a `rand` upgrade.
//!
//! # Example
//!
//! ```
//! use simtime::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_nanos(1_000));
//! ```

mod queue;
mod rng;
mod time;
mod wheel;

pub use queue::{BaselineEventQueue, EventQueue};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use wheel::TimingWheel;

/// Union of possibly-overlapping `[start, end)` intervals, used to measure
/// "GPU duration" exactly as the paper defines it (Figure 5): the total time
/// during which *at least one* node of a job occupies the GPU.
///
/// ```
/// use simtime::{IntervalUnion, SimTime};
///
/// let mut u = IntervalUnion::new();
/// u.add(SimTime::from_nanos(0), SimTime::from_nanos(10));
/// u.add(SimTime::from_nanos(5), SimTime::from_nanos(20)); // overlaps
/// u.add(SimTime::from_nanos(30), SimTime::from_nanos(40)); // disjoint
/// assert_eq!(u.total().as_nanos(), 30);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalUnion {
    /// Sorted, coalesced, disjoint intervals.
    spans: Vec<(SimTime, SimTime)>,
}

impl IntervalUnion {
    /// Creates an empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the half-open interval `[start, end)`, merging overlaps.
    ///
    /// Empty or inverted intervals (`end <= start`) are ignored.
    pub fn add(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        // Find insertion point and merge with any overlapping neighbours.
        let mut lo = start;
        let mut hi = end;
        let i = self.spans.partition_point(|&(_, e)| e < lo);
        let mut j = i;
        while j < self.spans.len() && self.spans[j].0 <= hi {
            lo = lo.min(self.spans[j].0);
            hi = hi.max(self.spans[j].1);
            j += 1;
        }
        self.spans.splice(i..j, std::iter::once((lo, hi)));
    }

    /// Total covered duration.
    pub fn total(&self) -> SimDuration {
        self.spans
            .iter()
            .fold(SimDuration::ZERO, |acc, &(s, e)| acc + (e - s))
    }

    /// Number of disjoint spans after coalescing.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates over the coalesced disjoint spans in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.spans.iter().copied()
    }

    /// Returns true if no interval has been added.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Removes all intervals.
    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_union_merges_overlaps() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(10), SimTime::from_nanos(20));
        u.add(SimTime::from_nanos(15), SimTime::from_nanos(25));
        assert_eq!(u.span_count(), 1);
        assert_eq!(u.total().as_nanos(), 15);
    }

    #[test]
    fn interval_union_keeps_disjoint_spans() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(0), SimTime::from_nanos(5));
        u.add(SimTime::from_nanos(10), SimTime::from_nanos(15));
        assert_eq!(u.span_count(), 2);
        assert_eq!(u.total().as_nanos(), 10);
    }

    #[test]
    fn interval_union_adjacent_spans_coalesce() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(0), SimTime::from_nanos(5));
        u.add(SimTime::from_nanos(5), SimTime::from_nanos(10));
        assert_eq!(u.span_count(), 1);
        assert_eq!(u.total().as_nanos(), 10);
    }

    #[test]
    fn interval_union_ignores_empty() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(5), SimTime::from_nanos(5));
        u.add(SimTime::from_nanos(9), SimTime::from_nanos(3));
        assert!(u.is_empty());
        assert_eq!(u.total(), SimDuration::ZERO);
    }

    #[test]
    fn interval_union_bridging_span_merges_all() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(0), SimTime::from_nanos(5));
        u.add(SimTime::from_nanos(10), SimTime::from_nanos(15));
        u.add(SimTime::from_nanos(20), SimTime::from_nanos(25));
        u.add(SimTime::from_nanos(4), SimTime::from_nanos(21));
        assert_eq!(u.span_count(), 1);
        assert_eq!(u.total().as_nanos(), 25);
    }

    #[test]
    fn interval_union_clear() {
        let mut u = IntervalUnion::new();
        u.add(SimTime::from_nanos(0), SimTime::from_nanos(5));
        u.clear();
        assert!(u.is_empty());
    }
}
