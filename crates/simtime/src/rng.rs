//! A small, self-contained deterministic PRNG.
//!
//! Simulation results must stay bit-identical across dependency upgrades, so
//! the simulator core uses this fixed SplitMix64-based generator rather than
//! `rand`'s (version-dependent) algorithms. The randomized test suites draw
//! their cases from the same generator, keeping the workspace dependency-free.

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// ```
/// use simtime::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent child generator, e.g. one per simulated job,
    /// so that adding a consumer never perturbs another consumer's stream.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Standard normal deviate (Box–Muller; one value per call, the twin is
    /// discarded to keep the implementation state-free).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Lognormal deviate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Multiplicative jitter factor centred on 1.0 with relative spread
    /// `rel_sigma`, clamped to stay strictly positive.
    pub fn jitter(&mut self, rel_sigma: f64) -> f64 {
        self.normal_with(1.0, rel_sigma).max(0.05)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.range_u64(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_children_are_independent_of_sibling_count() {
        let mut parent1 = DetRng::new(9);
        let c1 = parent1.fork(0);
        let mut parent2 = DetRng::new(9);
        let c2 = parent2.fork(0);
        assert_eq!(c1, c2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DetRng::new(4);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn normal_mean_and_spread_are_sane() {
        let mut r = DetRng::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal_with(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn jitter_is_positive() {
        let mut r = DetRng::new(6);
        for _ in 0..10_000 {
            assert!(r.jitter(0.3) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).range_u64(5, 5);
    }
}
