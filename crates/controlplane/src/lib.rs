#![deny(missing_docs)]

//! The closed-loop SLO control plane (PR 9).
//!
//! The PR 3 telemetry layer *detects* SLO burn and profile drift; nothing
//! acted on either — a device regression simply burned p99 until the run
//! ended. This crate holds the policy half of the feedback loop the engine
//! wires in behind `EngineConfig::with_control`:
//!
//! * [`DegradeMachine`] — the Healthy → Degraded → Shedding hysteresis
//!   ladder driven by repeated burn-rate episodes, stepping back down one
//!   rung per quiet [`ControlConfig::cool_window`];
//! * [`ControlPolicy`] — which deadline-aware token hand-off policy the
//!   engine should run (EDF or least-laxity; the policy implementation
//!   itself lives next to the other `olympian` policies);
//! * [`CostOracle`] — the recalibration surface: expected GPU cost per
//!   `(model, batch)` for laxity arithmetic, plus an in-run rebind of a
//!   freshly scaled profile when the drift detector fires.
//!
//! Everything in here is integer-ns/virtual-time state machines: no wall
//! clocks, no hash-iteration order, no floating-point accumulation across
//! calls — so control decisions are byte-identical across `--jobs N` and
//! shard counts, the same guarantee the trace and telemetry layers give.

use simtime::{SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

/// Which deadline-aware token hand-off ordering the engine's scheduler
/// should run when the control plane is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlPolicy {
    /// Earliest deadline first: grants order by absolute run deadline.
    #[default]
    Edf,
    /// Least laxity first: grants order by `deadline - remaining work`,
    /// with remaining work estimated from the bound per-model profile and
    /// the job's observed progress.
    Laxity,
}

impl ControlPolicy {
    /// Stable kebab-case label (matches the policy's scheduler name).
    pub fn as_str(self) -> &'static str {
        match self {
            ControlPolicy::Edf => "edf",
            ControlPolicy::Laxity => "laxity",
        }
    }

    /// Parses the CLI spelling (`"edf"` / `"laxity"`).
    pub fn parse(s: &str) -> Option<ControlPolicy> {
        match s {
            "edf" => Some(ControlPolicy::Edf),
            "laxity" => Some(ControlPolicy::Laxity),
            _ => None,
        }
    }
}

impl fmt::Display for ControlPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The degradation ladder rung the control plane currently sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeState {
    /// Serving normally.
    #[default]
    Healthy,
    /// Burn persisted: batch hints shrink and runs resolve to the cheapest
    /// resident model version.
    Degraded,
    /// Burn persisted through Degraded: new admissions are rejected with
    /// `ClientOutcome::AdmissionShed` until the ladder cools down.
    Shedding,
}

impl DegradeState {
    /// Stable kebab-case label used in trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeState::Healthy => "healthy",
            DegradeState::Degraded => "degraded",
            DegradeState::Shedding => "shedding",
        }
    }

    /// The next rung up the ladder, if any.
    fn up(self) -> Option<DegradeState> {
        match self {
            DegradeState::Healthy => Some(DegradeState::Degraded),
            DegradeState::Degraded => Some(DegradeState::Shedding),
            DegradeState::Shedding => None,
        }
    }

    /// The next rung down the ladder (saturating at Healthy).
    fn down(self) -> DegradeState {
        match self {
            DegradeState::Healthy | DegradeState::Degraded => DegradeState::Healthy,
            DegradeState::Shedding => DegradeState::Degraded,
        }
    }
}

impl fmt::Display for DegradeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One ladder transition, for the engine to translate into a trace event
/// and a telemetry counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The rung left.
    pub from: DegradeState,
    /// The rung entered.
    pub to: DegradeState,
}

/// The Healthy → Degraded → Shedding hysteresis state machine.
///
/// Escalation: every burn-rate episode (one resettable-latch firing of the
/// telemetry SLO monitor) counts; after [`ControlConfig::escalate_after`]
/// *consecutive* episodes on the current rung the ladder steps up one rung
/// and the episode counter re-arms. De-escalation: once
/// [`ControlConfig::cool_window`] of virtual time passes without a burn
/// episode the ladder steps down one rung — and the cool-down clock re-arms,
/// so dropping from Shedding to Healthy takes two full quiet windows. A
/// burn while cooling resets the clock (the flap guard).
#[derive(Debug, Clone)]
pub struct DegradeMachine {
    escalate_after: u32,
    cool_window: SimDuration,
    state: DegradeState,
    /// Consecutive burn episodes since the last transition.
    episodes: u32,
    /// Instant of the last burn episode or downward step (the cool-down
    /// clock origin); `None` until the first episode.
    armed_at: Option<SimTime>,
}

impl DegradeMachine {
    /// A machine at Healthy with the given hysteresis shape.
    ///
    /// # Panics
    ///
    /// Panics if `escalate_after` is zero or `cool_window` is zero.
    pub fn new(escalate_after: u32, cool_window: SimDuration) -> DegradeMachine {
        assert!(escalate_after >= 1, "escalate_after must be at least 1");
        assert!(cool_window > SimDuration::ZERO, "cool_window must be positive");
        DegradeMachine {
            escalate_after,
            cool_window,
            state: DegradeState::Healthy,
            episodes: 0,
            armed_at: None,
        }
    }

    /// The current rung.
    pub fn state(&self) -> DegradeState {
        self.state
    }

    /// One burn-rate episode at `now`. Returns the upward transition when
    /// this episode is exactly the `escalate_after`-th consecutive one on
    /// the current rung.
    pub fn on_burn(&mut self, now: SimTime) -> Option<Transition> {
        self.armed_at = Some(now);
        self.episodes += 1;
        if self.episodes < self.escalate_after {
            return None;
        }
        self.episodes = 0;
        let from = self.state;
        let to = from.up()?; // already Shedding: saturate, keep re-arming
        self.state = to;
        Some(Transition { from, to })
    }

    /// The periodic cool-down check at `now`. Steps down one rung when a
    /// full quiet `cool_window` has elapsed since the last burn episode (or
    /// since the previous downward step), re-arming the clock for the next
    /// rung.
    pub fn on_tick(&mut self, now: SimTime) -> Option<Transition> {
        if self.state == DegradeState::Healthy {
            return None;
        }
        let armed = self.armed_at?;
        if now < armed + self.cool_window {
            return None;
        }
        let from = self.state;
        let to = from.down();
        self.state = to;
        self.episodes = 0;
        self.armed_at = if to == DegradeState::Healthy { None } else { Some(now) };
        Some(Transition { from, to })
    }
}

/// The recalibration surface the engine's control loop draws laxity
/// estimates from and rebinds through. Implemented over the profile store
/// (`olympian::StoreCostOracle`); this crate only defines the trait so the
/// control plane sits below the scheduler without a dependency cycle.
pub trait CostOracle: fmt::Debug + Send + Sync {
    /// Expected whole-run GPU nanoseconds for `(model, batch)` under the
    /// currently bound profile, or `None` when no profile resolves.
    fn expected_gpu_ns(&self, model: &str, batch: u64) -> Option<u64>;

    /// Rebinds `(model, batch)` in-run to a freshly scaled profile:
    /// GPU duration multiplied by `scale_ppm / 1e6` (costs unchanged, so
    /// the effective rate `C/D` tracks the regressed device). Returns
    /// whether a profile existed to scale.
    fn rebind_scaled(&self, model: &str, batch: u64, scale_ppm: u64) -> bool;
}

/// Floor of one recalibration step, parts-per-million (0.25x).
pub const MIN_REBIND_PPM: u64 = 250_000;
/// Ceiling of one recalibration step, parts-per-million (4x).
pub const MAX_REBIND_PPM: u64 = 4_000_000;

/// Clamps one observed drift ratio into the sane recalibration band
/// [`MIN_REBIND_PPM`]..=[`MAX_REBIND_PPM`], so a single pathological
/// drift sample (e.g. a whole-run quantum under an EDF policy that never
/// rotates) cannot rebind profiles to absurd scales.
pub fn clamp_rebind_ppm(scale_ppm: u64) -> u64 {
    scale_ppm.clamp(MIN_REBIND_PPM, MAX_REBIND_PPM)
}

/// Control-plane configuration carried by the engine config behind
/// `EngineConfig::with_control`. With no control config the engine pays
/// one predicted branch per hook (the perfsuite `control` section holds
/// this to noise).
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Deadline-aware hand-off ordering for the token scheduler.
    pub policy: ControlPolicy,
    /// Control loop cadence: laxity scan + cool-down check interval.
    pub tick: SimDuration,
    /// Consecutive burn episodes before the ladder steps up one rung.
    pub escalate_after: u32,
    /// Quiet virtual time before the ladder steps down one rung.
    pub cool_window: SimDuration,
    /// Batch-hint divisor applied on the Degraded rung (`max(1, b / d)`).
    pub batch_divisor: u64,
    /// Whether the control loop cancels laxity-negative runs early through
    /// the deadline teardown instead of letting them waste quanta.
    pub laxity_cancel: bool,
    /// Whether drift alerts trigger an in-run profile rebind.
    pub recalibrate: bool,
    /// The profile cost/rebind surface; laxity cancellation and
    /// recalibration are inert without one.
    pub cost: Option<Arc<dyn CostOracle>>,
}

impl Default for ControlConfig {
    fn default() -> ControlConfig {
        ControlConfig {
            policy: ControlPolicy::Edf,
            tick: SimDuration::from_micros(200),
            escalate_after: 2,
            cool_window: SimDuration::from_millis(2),
            batch_divisor: 2,
            laxity_cancel: true,
            recalibrate: true,
            cost: None,
        }
    }
}

impl ControlConfig {
    /// The default closed-loop configuration (EDF, 200 µs ticks, 2-episode
    /// escalation, 2 ms cool window).
    pub fn new() -> ControlConfig {
        ControlConfig::default()
    }

    /// Overrides the hand-off ordering.
    pub fn with_policy(mut self, policy: ControlPolicy) -> ControlConfig {
        self.policy = policy;
        self
    }

    /// Overrides the control loop cadence.
    pub fn with_tick(mut self, tick: SimDuration) -> ControlConfig {
        self.tick = tick;
        self
    }

    /// Overrides the escalation episode count.
    pub fn with_escalate_after(mut self, episodes: u32) -> ControlConfig {
        self.escalate_after = episodes;
        self
    }

    /// Overrides the cool-down window.
    pub fn with_cool_window(mut self, window: SimDuration) -> ControlConfig {
        self.cool_window = window;
        self
    }

    /// Overrides the Degraded-rung batch divisor.
    pub fn with_batch_divisor(mut self, divisor: u64) -> ControlConfig {
        self.batch_divisor = divisor;
        self
    }

    /// Binds the profile cost/rebind surface.
    pub fn with_cost(mut self, cost: Arc<dyn CostOracle>) -> ControlConfig {
        self.cost = Some(cost);
        self
    }

    /// Disables early cancellation of laxity-negative runs.
    pub fn without_laxity_cancel(mut self) -> ControlConfig {
        self.laxity_cancel = false;
        self
    }

    /// Disables drift-triggered profile rebinds.
    pub fn without_recalibration(mut self) -> ControlConfig {
        self.recalibrate = false;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero tick, zero escalation count, zero cool window or
    /// zero batch divisor.
    pub fn validate(&self) {
        assert!(self.tick > SimDuration::ZERO, "control tick must be positive");
        assert!(self.escalate_after >= 1, "escalate_after must be at least 1");
        assert!(self.cool_window > SimDuration::ZERO, "cool_window must be positive");
        assert!(self.batch_divisor >= 1, "batch_divisor must be at least 1");
    }

    /// Builds the ladder state machine this configuration describes.
    pub fn machine(&self) -> DegradeMachine {
        DegradeMachine::new(self.escalate_after, self.cool_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn escalates_exactly_at_threshold() {
        let mut m = DegradeMachine::new(3, ms(2));
        assert_eq!(m.on_burn(t(10)), None);
        assert_eq!(m.on_burn(t(20)), None);
        assert_eq!(m.state(), DegradeState::Healthy);
        let tr = m.on_burn(t(30)).expect("third episode escalates");
        assert_eq!(tr, Transition { from: DegradeState::Healthy, to: DegradeState::Degraded });
        assert_eq!(m.state(), DegradeState::Degraded);
        // The episode counter re-armed: two more episodes do nothing, the
        // third steps to Shedding.
        assert_eq!(m.on_burn(t(40)), None);
        assert_eq!(m.on_burn(t(50)), None);
        let tr = m.on_burn(t(60)).expect("escalates again");
        assert_eq!(tr.to, DegradeState::Shedding);
    }

    #[test]
    fn shedding_saturates() {
        let mut m = DegradeMachine::new(1, ms(2));
        assert!(m.on_burn(t(1)).is_some());
        assert!(m.on_burn(t(2)).is_some());
        assert_eq!(m.state(), DegradeState::Shedding);
        assert_eq!(m.on_burn(t(3)), None, "top rung has nowhere to go");
        assert_eq!(m.state(), DegradeState::Shedding);
    }

    #[test]
    fn cools_down_exactly_at_window_edge() {
        let mut m = DegradeMachine::new(1, ms(2));
        m.on_burn(t(1_000));
        assert_eq!(m.state(), DegradeState::Degraded);
        assert_eq!(m.on_tick(t(2_999)), None, "one ns short of the window");
        let tr = m.on_tick(t(3_000)).expect("exactly at the edge steps down");
        assert_eq!(tr, Transition { from: DegradeState::Degraded, to: DegradeState::Healthy });
        assert_eq!(m.on_tick(t(10_000)), None, "healthy never steps further");
    }

    #[test]
    fn burn_between_windows_resets_the_cooldown_clock() {
        let mut m = DegradeMachine::new(2, ms(2));
        assert_eq!(m.on_burn(t(0)), None);
        assert!(m.on_burn(t(10)).is_some(), "second episode escalates");
        assert_eq!(m.state(), DegradeState::Degraded);
        // Flap: a fresh (sub-threshold) burn ~1 ms in re-arms the clock;
        // the edge the original episode would have produced is dead.
        assert_eq!(m.on_burn(t(1_000)), None);
        assert_eq!(m.on_tick(t(2_010)), None, "old edge no longer steps down");
        assert!(m.on_tick(t(3_000)).is_some(), "the re-armed edge holds");
        assert_eq!(m.state(), DegradeState::Healthy);
    }

    #[test]
    fn cooldown_rearms_one_rung_per_window() {
        let mut m = DegradeMachine::new(1, ms(2));
        m.on_burn(t(0));
        m.on_burn(t(10));
        assert_eq!(m.state(), DegradeState::Shedding);
        let tr = m.on_tick(t(2_010)).expect("first quiet window");
        assert_eq!(tr, Transition { from: DegradeState::Shedding, to: DegradeState::Degraded });
        assert_eq!(m.on_tick(t(2_020)), None, "must wait another full window");
        let tr = m.on_tick(t(4_010)).expect("second quiet window");
        assert_eq!(tr, Transition { from: DegradeState::Degraded, to: DegradeState::Healthy });
    }

    #[test]
    fn escalation_counter_survives_partial_cooldowns() {
        // escalate_after 2: one episode, a sub-window quiet spell, then a
        // second episode still escalates (episodes only reset on
        // transitions).
        let mut m = DegradeMachine::new(2, ms(2));
        assert_eq!(m.on_burn(t(0)), None);
        assert_eq!(m.on_tick(t(1_000)), None);
        assert!(m.on_burn(t(1_500)).is_some());
    }

    #[test]
    fn rebind_clamp_bounds_pathological_scales() {
        assert_eq!(clamp_rebind_ppm(1_400_000), 1_400_000);
        assert_eq!(clamp_rebind_ppm(7_000_000_000), MAX_REBIND_PPM);
        assert_eq!(clamp_rebind_ppm(3), MIN_REBIND_PPM);
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [ControlPolicy::Edf, ControlPolicy::Laxity] {
            assert_eq!(ControlPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(ControlPolicy::parse("fifo"), None);
    }

    #[test]
    #[should_panic(expected = "cool_window")]
    fn zero_cool_window_rejected() {
        ControlConfig::new().with_cool_window(SimDuration::ZERO).validate();
    }

    #[test]
    fn default_config_validates() {
        let cfg = ControlConfig::new().with_policy(ControlPolicy::Laxity);
        cfg.validate();
        assert_eq!(cfg.machine().state(), DegradeState::Healthy);
    }
}
