//! Determinism regression tests for the parallel experiment harness.
//!
//! The harness rule (see `simpar`): parallel output must be byte-identical
//! to serial output. These tests run representative workloads — replicated
//! simulations with forked seeds and an Overhead-Q grid sweep — once with
//! one worker and once with many, and compare the *formatted* results
//! byte for byte. They also pin same-seed repeatability end to end.

use olympian::Profiler;
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;

/// Formats a run report to the digits the experiment reports print, so a
/// byte comparison is as strict as the real output.
fn render(report: &serving::RunReport) -> String {
    format!(
        "makespan={:.9}s events={} kernels={} switches={} finishes={:?}",
        report.makespan.as_secs_f64(),
        report.event_count,
        report.kernel_count,
        report.switch_count,
        report.finish_times_secs(),
    )
}

/// One replication: seed-forked, shares nothing mutable — the closure shape
/// every parallel loop in the harness uses.
fn replication(seed: u64) -> String {
    let cfg = EngineConfig::default().with_seed(seed * 7919 + 13);
    let clients = vec![ClientSpec::new(models::mini::small(4), 2); 3];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    render(&report)
}

#[test]
fn parallel_replications_match_serial_byte_for_byte() {
    let seeds: Vec<u64> = (0..16).collect();
    let serial = simpar::par_map_jobs(1, &seeds, |_, &s| replication(s));
    let parallel = simpar::par_map_jobs(8, &seeds, |_, &s| replication(s));
    assert_eq!(serial, parallel);
}

#[test]
fn same_seed_twice_is_identical() {
    assert_eq!(replication(42), replication(42));
    let a: Vec<String> = (0..4).map(replication).collect();
    let b: Vec<String> = (0..4).map(replication).collect();
    assert_eq!(a, b);
}

#[test]
fn q_grid_sweep_serial_matches_parallel() {
    // `overhead_q_curve` sweeps its grid with `simpar::par_map`, which reads
    // OLYMPIAN_JOBS; drive it to both extremes via the env var. Runs in one
    // process with no other test touching the variable concurrently
    // (integration tests in this file share a binary but env mutation is
    // confined to this test).
    let model = models::mini::small(4);
    let cfg = EngineConfig::default();
    let grid: Vec<SimDuration> = [100u64, 400, 1_200, 4_000]
        .into_iter()
        .map(SimDuration::from_micros)
        .collect();
    std::env::set_var(simpar::JOBS_ENV, "1");
    let serial = Profiler::new(&cfg).overhead_q_curve(&model, &grid);
    std::env::set_var(simpar::JOBS_ENV, "8");
    let parallel = Profiler::new(&cfg).overhead_q_curve(&model, &grid);
    std::env::remove_var(simpar::JOBS_ENV);
    assert_eq!(serial.model, parallel.model);
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "overhead must be bit-equal");
    }
}
