//! Shard-count invariance and the sharding determinism matrix.
//!
//! The sharded runner's contract (see `serving::shard`): the decomposition
//! is one group per device and `EngineConfig::shards` only sets the worker
//! thread count, so every rendered artifact — `RunReport` debug, Chrome
//! trace JSON, telemetry JSON-lines — must be byte-identical across
//! `shards ∈ {1, 2, 4}`, under both schedulers, with faults and lifecycle
//! enabled, and whether the cells themselves run on 1 or 4 `simpar` jobs.

use models::LoadedModel;
use olympian::{OlympianScheduler, ProfileStore, Profiler, RoundRobin, StoreBinder};
use serving::faults::{FaultConfig, FaultPlan};
use serving::lifecycle::{DeploymentPlan, LifecycleConfig, ModelDeployment};
use serving::{
    run_experiment, run_sharded_experiment, ClientSpec, EngineConfig, FifoScheduler, RunReport,
    Scheduler, TraceConfig,
};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;

const QUANTUM: SimDuration = SimDuration::from_micros(200);

/// Renders every export surface the matrix compares.
fn render(r: &RunReport) -> String {
    format!(
        "REPORT {r:?}\nCHROME {}\nTELEMETRY {}",
        r.chrome_trace_json(),
        r.telemetry_jsonl()
    )
}

fn faults() -> FaultConfig {
    let plan = FaultPlan::new()
        .with_kernel_failures(0.02)
        .with_slowdown(2.0, SimTime::from_millis(1), SimTime::from_millis(2));
    FaultConfig::new(plan)
}

/// Rebadges a mini-zoo model as a named service (lifecycle deployments
/// and clients must agree on the model name).
fn service(name: &str) -> LoadedModel {
    let m = models::mini::tiny(4);
    LoadedModel::from_parts(
        name,
        None,
        m.batch(),
        Arc::clone(m.graph()),
        m.weights_bytes(),
        m.activation_bytes(),
    )
}

/// The full-stack single-group cell: faults, lifecycle, tracing and
/// telemetry all on. One device — the sharded entry point must route to
/// the classic engine byte-for-byte for every `shards` value.
fn full_stack_cell(shards: u32, olympian: bool) -> String {
    let services = ["svc-0", "svc-1", "svc-2"];
    let mut plan = DeploymentPlan::new();
    for name in services {
        plan = plan.with_model(ModelDeployment::new(name.to_string(), service(name)));
    }
    let mut cfg = EngineConfig { seed: 23, shards, ..EngineConfig::default() }
        .with_trace(TraceConfig::full())
        .with_telemetry(serving::TelemetryConfig::enabled(SimDuration::from_micros(500)))
        .with_faults(faults());
    let store = Arc::new(ProfileStore::new());
    let binder = StoreBinder::calibrate(&cfg, &plan, Arc::clone(&store));
    cfg = cfg.with_lifecycle(LifecycleConfig::new(plan).with_binder(binder));
    let clients: Vec<ClientSpec> = services
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut spec = ClientSpec::new(service(name), 2);
            spec.start_at = SimTime::from_micros(100 * i as u64);
            spec.think_time = SimDuration::from_micros(300);
            spec
        })
        .collect();
    let report = run_sharded_experiment(&cfg, clients, &factory(olympian, &store));
    render(&report)
}

/// The multi-group cell: three devices, faults on, full tracing — the
/// shard topology is real (three groups) and threads race over it.
fn multi_device_cell(shards: u32, olympian: bool) -> String {
    let base = EngineConfig::default();
    let cfg = EngineConfig {
        seed: 41,
        shards,
        extra_devices: vec![base.device.clone(), base.device.clone()],
        ..base
    }
    .with_trace(TraceConfig::full())
    .with_faults(faults());
    let model = models::mini::tiny(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let clients: Vec<ClientSpec> = (0..6).map(|_| ClientSpec::new(model.clone(), 2)).collect();
    let report = run_sharded_experiment(&cfg, clients, &factory(olympian, &store));
    render(&report)
}

fn factory(
    olympian: bool,
    store: &Arc<ProfileStore>,
) -> Box<dyn Fn(usize) -> Box<dyn Scheduler> + Sync + '_> {
    if olympian {
        Box::new(move |_g| {
            Box::new(OlympianScheduler::new(
                Arc::clone(store),
                Box::new(RoundRobin::new()),
                QUANTUM,
            )) as Box<dyn Scheduler>
        })
    } else {
        Box::new(|_g| Box::new(FifoScheduler::new()) as Box<dyn Scheduler>)
    }
}

#[test]
fn full_stack_is_shard_count_invariant() {
    for olympian in [false, true] {
        let reference = full_stack_cell(1, olympian);
        for shards in [2, 4] {
            assert_eq!(
                reference,
                full_stack_cell(shards, olympian),
                "full-stack cell diverged at shards={shards}, olympian={olympian}"
            );
        }
    }
}

#[test]
fn multi_device_is_shard_count_invariant() {
    for olympian in [false, true] {
        let reference = multi_device_cell(1, olympian);
        for shards in [2, 4] {
            assert_eq!(
                reference,
                multi_device_cell(shards, olympian),
                "multi-device cell diverged at shards={shards}, olympian={olympian}"
            );
        }
    }
}

#[test]
fn sharded_single_group_matches_classic_exactly() {
    let cfg = EngineConfig { seed: 5, shards: 4, ..EngineConfig::default() }
        .with_trace(TraceConfig::full())
        .with_faults(faults());
    let clients = |n: usize| -> Vec<ClientSpec> {
        (0..n).map(|_| ClientSpec::new(models::mini::tiny(4), 2)).collect()
    };
    let classic = run_experiment(&cfg, clients(3), &mut FifoScheduler::new());
    let sharded = run_sharded_experiment(&cfg, clients(3), &|_g| {
        Box::new(FifoScheduler::new()) as Box<dyn Scheduler>
    });
    assert_eq!(render(&classic), render(&sharded));
}

#[test]
fn matrix_cells_match_across_simpar_jobs() {
    // The --jobs axis: every (shards, scheduler) cell rendered on one
    // worker must equal the same cell rendered on four.
    let cells: Vec<(u32, bool)> =
        [1u32, 2, 4].iter().flat_map(|&s| [(s, false), (s, true)]).collect();
    let serial = simpar::par_map_jobs(1, &cells, |_, &(s, oly)| multi_device_cell(s, oly));
    let parallel = simpar::par_map_jobs(4, &cells, |_, &(s, oly)| multi_device_cell(s, oly));
    assert_eq!(serial, parallel);
}
