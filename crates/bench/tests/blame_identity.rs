//! Byte-identity of the blame surfaces: the full `results/blame.txt` report
//! across worker counts, and the attribution of a multi-device sharded run
//! across shard counts (the trace-only cell, since multi-group sharding
//! rejects live telemetry).

use olympian::{OlympianScheduler, ProfileStore, Profiler, RoundRobin};
use serving::attrib::{critical_path, render_text};
use serving::{run_sharded_experiment, ClientSpec, EngineConfig, Scheduler, TraceConfig};
use simtime::SimDuration;
use std::sync::Arc;

#[test]
fn blame_report_is_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = bench::figs::blame::run();
    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = bench::figs::blame::run();
    std::env::remove_var(simpar::JOBS_ENV);
    assert_eq!(serial, parallel, "blame.txt must not depend on the worker count");
    assert!(serial.contains("execute share"));
}

/// Attributes a three-device sharded run and renders the blame text.
fn sharded_blame(shards: u32) -> String {
    let base = EngineConfig::default();
    let cfg = EngineConfig {
        seed: 41,
        shards,
        extra_devices: vec![base.device.clone(), base.device.clone()],
        ..base
    }
    .with_trace(TraceConfig::full());
    let model = models::mini::tiny(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let clients: Vec<ClientSpec> = (0..6).map(|_| ClientSpec::new(model.clone(), 2)).collect();
    let q = SimDuration::from_micros(200);
    let report = run_sharded_experiment(&cfg, clients, &|_g| {
        Box::new(OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            q,
        )) as Box<dyn Scheduler>
    });
    let attr = report.attribution(cfg.switch_latency + cfg.launch_overhead);
    let cp = critical_path(&attr);
    render_text("sharded", &attr, &cp, None)
}

#[test]
fn blame_is_byte_identical_across_shard_counts() {
    let reference = sharded_blame(1);
    assert!(reference.contains("token-based"));
    for shards in [2, 4] {
        assert_eq!(
            reference,
            sharded_blame(shards),
            "attribution diverged at shards={shards}"
        );
    }
}
