//! Microbenchmarks of the Olympian scheduler's hot path.
//!
//! The yield check and the per-GPU-node cost update run once per node —
//! hundreds of thousands of times per second on a busy server — so their
//! cost is the scheduler's effective overhead floor.

use bench::harness;
use dataflow::{CostModel, NodeId};
use olympian::{ModelProfile, OlympianScheduler, Priority, ProfileStore, RoundRobin, WeightedFair};
use serving::{ClientId, JobCtx, JobId, Scheduler};
use simtime::{SimDuration, SimTime};
use std::hint::black_box;
use std::sync::Arc;

fn store(nodes: usize) -> Arc<ProfileStore> {
    let costs: Vec<u64> = (0..nodes).map(|i| 50 + (i as u64 % 100)).collect();
    let total = costs.iter().sum();
    let mut s = ProfileStore::new();
    s.insert(ModelProfile {
        model: "bench".into(),
        batch: 1,
        costs: CostModel::from_costs(costs),
        total_cost: total,
        gpu_duration: SimDuration::from_micros(total / 15),
    });
    Arc::new(s)
}

fn ctx() -> JobCtx<'static> {
    JobCtx {
        client: ClientId(0),
        model_name: "bench",
        batch: 1,
        weight: 1,
        priority: 0,
        device: 0,
        now: SimTime::ZERO,
        deadline: None,
    }
}

fn registered_scheduler(jobs: u64) -> OlympianScheduler {
    let mut sched = OlympianScheduler::new(
        store(4096),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(1200),
    );
    for j in 0..jobs {
        sched.register(JobId(j), &ctx()).expect("profile exists");
    }
    sched
}

fn bench_hooks() {
    {
        let sched = registered_scheduler(10);
        harness::run("scheduler_hooks/may_run", || {
            black_box(sched.may_run(black_box(JobId(3))))
        });
    }

    {
        let mut sched = registered_scheduler(10);
        let mut i = 0u32;
        harness::run("scheduler_hooks/on_gpu_node_done", || {
            i = (i + 1) % 4096;
            black_box(sched.on_gpu_node_done(
                JobId(0),
                NodeId::from_index(i as usize),
                SimTime::from_nanos(u64::from(i)),
            ))
        });
    }

    {
        let mut sched = registered_scheduler(10);
        let mut j = 100u64;
        harness::run("scheduler_hooks/register_deregister", || {
            j += 1;
            sched.register(JobId(j), &ctx()).expect("profile exists");
            black_box(sched.deregister(JobId(j), SimTime::ZERO));
        });
    }
}

fn bench_policies() {
    type PolicyFactory = Box<dyn Fn() -> Box<dyn olympian::Policy>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("round_robin", Box::new(|| Box::new(RoundRobin::new()))),
        ("weighted_fair", Box::new(|| Box::new(WeightedFair::new()))),
        ("priority", Box::new(|| Box::new(Priority::new()))),
    ];
    for (name, mk) in policies {
        let mut p = mk();
        let mut current = None;
        for j in 0..64u64 {
            current = p.admit(JobId(j), 1 + (j % 3) as u32, (j % 5) as u32, current);
        }
        let mut holder = current.expect("jobs admitted");
        harness::run(&format!("policy_quantum_expired/{name}"), || {
            holder = p.quantum_expired(holder).expect("ring non-empty");
            black_box(holder)
        });
    }
}

fn main() {
    bench_hooks();
    bench_policies();
}
