//! Throughput of the discrete-event serving engine.
//!
//! A full paper-scale experiment pushes ~3M events; these benches measure
//! the events/second the engine sustains, under both schedulers, on
//! miniature workloads sized for quick iteration.

use bench::harness;
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::hint::black_box;
use std::sync::Arc;

fn clients(n: usize, batches: u32) -> Vec<ClientSpec> {
    vec![ClientSpec::new(models::mini::small(4), batches); n]
}

fn bench_baseline() {
    let cfg = EngineConfig::default();
    // Count events once so the result can report events/second.
    let probe = run_experiment(&cfg, clients(4, 2), &mut FifoScheduler::new());
    let m = harness::run("engine_baseline/clients=4", || {
        black_box(run_experiment(
            &cfg,
            clients(4, 2),
            &mut FifoScheduler::new(),
        ))
    });
    println!(
        "  -> {:.0} events/s ({} events per run)",
        m.per_second() * probe.event_count as f64,
        probe.event_count
    );
}

fn bench_olympian() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let probe = {
        let mut sched = OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        );
        run_experiment(&cfg, clients(4, 2), &mut sched)
    };
    let m = harness::run("engine_olympian/clients=4", || {
        let mut sched = OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        );
        black_box(run_experiment(&cfg, clients(4, 2), &mut sched))
    });
    println!(
        "  -> {:.0} events/s ({} events per run)",
        m.per_second() * probe.event_count as f64,
        probe.event_count
    );
}

fn main() {
    bench_baseline();
    bench_olympian();
}
