//! Throughput of the discrete-event serving engine.
//!
//! A full paper-scale experiment pushes ~3M events; these benches measure
//! the events/second the engine sustains, under both schedulers, on
//! miniature workloads sized for quick iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::hint::black_box;
use std::sync::Arc;

fn clients(n: usize, batches: u32) -> Vec<ClientSpec> {
    vec![ClientSpec::new(models::mini::small(4), batches); n]
}

fn bench_baseline(c: &mut Criterion) {
    let cfg = EngineConfig::default();
    // Count events once so the group can report events/second.
    let probe = run_experiment(&cfg, clients(4, 2), &mut FifoScheduler::new());
    let mut g = c.benchmark_group("engine_baseline");
    g.throughput(Throughput::Elements(probe.event_count));
    g.bench_function(BenchmarkId::new("clients", 4), |b| {
        b.iter(|| {
            black_box(run_experiment(
                &cfg,
                clients(4, 2),
                &mut FifoScheduler::new(),
            ))
        });
    });
    g.finish();
}

fn bench_olympian(c: &mut Criterion) {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let probe = {
        let mut sched = OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        );
        run_experiment(&cfg, clients(4, 2), &mut sched)
    };
    let mut g = c.benchmark_group("engine_olympian");
    g.throughput(Throughput::Elements(probe.event_count));
    g.bench_function(BenchmarkId::new("clients", 4), |b| {
        b.iter(|| {
            let mut sched = OlympianScheduler::new(
                Arc::clone(&store),
                Box::new(RoundRobin::new()),
                SimDuration::from_micros(200),
            );
            black_box(run_experiment(&cfg, clients(4, 2), &mut sched))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_baseline, bench_olympian);
criterion_main!(benches);
