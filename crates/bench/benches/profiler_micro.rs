//! Profiler and model-zoo benchmarks: offline profiling cost, linear-model
//! fitting and full-scale graph generation.

use criterion::{criterion_group, criterion_main, Criterion};
use models::ModelKind;
use olympian::{LinearCostModel, Profiler};
use serving::EngineConfig;
use std::hint::black_box;

fn bench_profile(c: &mut Criterion) {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let model = models::mini::small(8);
    c.bench_function("profile_mini_model", |b| {
        b.iter(|| black_box(profiler.profile(&model)));
    });
}

fn bench_linear_fit(c: &mut Criterion) {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let p1 = profiler.profile(&models::mini::small(4));
    let p2 = profiler.profile(&models::mini::small(8));
    c.bench_function("linear_cost_model_fit_predict", |b| {
        b.iter(|| {
            let lin = LinearCostModel::fit(&[&p1, &p2]).expect("two batches");
            black_box(lin.predict(6))
        });
    });
}

fn bench_zoo_generation(c: &mut Criterion) {
    c.bench_function("generate_inception_graph", |b| {
        b.iter(|| black_box(models::load(ModelKind::InceptionV4, 100).expect("zoo model")));
    });
}

criterion_group!(benches, bench_profile, bench_linear_fit, bench_zoo_generation);
criterion_main!(benches);
