//! Profiler and model-zoo benchmarks: offline profiling cost, linear-model
//! fitting and full-scale graph generation.

use bench::harness;
use models::ModelKind;
use olympian::{LinearCostModel, Profiler};
use serving::EngineConfig;
use std::hint::black_box;

fn bench_profile() {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let model = models::mini::small(8);
    harness::run("profile_mini_model", || black_box(profiler.profile(&model)));
}

fn bench_linear_fit() {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let p1 = profiler.profile(&models::mini::small(4));
    let p2 = profiler.profile(&models::mini::small(8));
    harness::run("linear_cost_model_fit_predict", || {
        let lin = LinearCostModel::fit(&[&p1, &p2]).expect("two batches");
        black_box(lin.predict(6))
    });
}

fn bench_zoo_generation() {
    harness::run("generate_inception_graph", || {
        black_box(models::load(ModelKind::InceptionV4, 100).expect("zoo model"))
    });
}

fn main() {
    bench_profile();
    bench_linear_fit();
    bench_zoo_generation();
}
