#![deny(missing_docs)]

//! Shared plumbing for the experiment binaries.
//!
//! Each `src/bin/figNN_*.rs` regenerates one table or figure of the paper;
//! this library holds what they share: the default platform configuration,
//! workload builders, profile-store construction and result printing.

pub mod figs;
pub mod harness;
pub mod telemetered;
pub mod traced;

use metrics::table::{render_bars, render_table};
use metrics::Summary;
use models::{LoadedModel, ModelKind};
use olympian::{OverheadQCurve, Profiler, ProfileStore};
use serving::{ClientSpec, EngineConfig, RunReport};
use simtime::SimDuration;
use std::sync::Arc;

/// The paper's default workload: batch size 100, 10 batches per client.
pub const DEFAULT_BATCH: u64 = 100;
/// Batches each client submits sequentially.
pub const DEFAULT_NUM_BATCHES: u32 = 10;
/// The operator overhead tolerance used for the homogeneous/heterogeneous
/// experiments (paper §4.1: 2.5%).
pub const DEFAULT_TOLERANCE: f64 = 0.025;

/// The default platform (GTX 1080 Ti host), seed 1.
pub fn default_config() -> EngineConfig {
    EngineConfig::default()
}

/// The candidate quantum grid for Overhead-Q curves (0.1 ms – 10 ms, log-ish
/// spacing as in Figure 8).
pub fn standard_q_grid() -> Vec<SimDuration> {
    [100, 200, 400, 800, 1_200, 1_600, 2_400, 4_000, 6_000, 10_000]
        .into_iter()
        .map(SimDuration::from_micros)
        .collect()
}

/// `n` identical clients of one model.
///
/// # Panics
///
/// Panics if the model cannot be loaded at `batch`.
pub fn homogeneous_clients(kind: ModelKind, batch: u64, n: usize, batches: u32) -> Vec<ClientSpec> {
    let model = models::load(kind, batch).expect("zoo model loads");
    vec![ClientSpec::new(model, batches); n]
}

/// The paper's complex workload (Table 2): two clients of each of the seven
/// models, at the Table 2 batch sizes — 14 clients total.
pub fn complex_workload(batches: u32) -> Vec<ClientSpec> {
    let mut clients = Vec::new();
    for kind in ModelKind::ALL {
        let model = models::load(kind, kind.reference_batch()).expect("zoo model loads");
        clients.push(ClientSpec::new(model.clone(), batches));
        clients.push(ClientSpec::new(model, batches));
    }
    clients
}

/// Builds a profile store covering the given models.
///
/// Distinct models are profiled in parallel (each profiling pass is an
/// independent deterministic simulation) and inserted in first-seen order,
/// so the store is identical to a serial build.
pub fn build_store(cfg: &EngineConfig, models: &[LoadedModel]) -> Arc<ProfileStore> {
    let profiler = Profiler::new(cfg);
    let mut distinct: Vec<&LoadedModel> = Vec::new();
    for m in models {
        if !distinct
            .iter()
            .any(|d| d.name() == m.name() && d.batch() == m.batch())
        {
            distinct.push(m);
        }
    }
    let profiles = simpar::par_map(&distinct, |_, m| profiler.profile(m));
    let mut store = ProfileStore::new();
    for p in profiles {
        store.insert(p);
    }
    Arc::new(store)
}

/// Builds a store covering every distinct model in a client list.
pub fn build_store_for(cfg: &EngineConfig, clients: &[ClientSpec]) -> Arc<ProfileStore> {
    let models: Vec<LoadedModel> = clients.iter().map(|c| c.model.clone()).collect();
    build_store(cfg, &models)
}

/// Measures Overhead-Q curves for the distinct models in a client list and
/// picks `Q` for the tolerance (paper §3.3). Falls back to the largest grid
/// point if no quantum meets the tolerance.
pub fn choose_q(cfg: &EngineConfig, clients: &[ClientSpec], tolerance: f64) -> SimDuration {
    let profiler = Profiler::new(cfg).with_pair_batches(3);
    let grid = standard_q_grid();
    let mut seen: Vec<(String, u64)> = Vec::new();
    let mut distinct: Vec<&ClientSpec> = Vec::new();
    for c in clients {
        let key = (c.model.name().to_string(), c.model.batch());
        if !seen.contains(&key) {
            seen.push(key);
            distinct.push(c);
        }
    }
    // One curve per distinct model, measured in parallel and collected in
    // first-seen order (identical to the serial sweep).
    let curves: Vec<OverheadQCurve> =
        simpar::par_map(&distinct, |_, c| profiler.overhead_q_curve(&c.model, &grid));
    Profiler::q_for_tolerance(&curves, tolerance)
        .unwrap_or_else(|| *grid.last().expect("non-empty grid"))
}

/// Formats a figure header.
pub fn banner(id: &str, caption: &str) -> String {
    format!(
        "==============================================================\n\
         {id} — {caption}\n\
         ==============================================================\n"
    )
}

/// Formats per-client finish times as the bar chart the paper plots.
pub fn format_finish_times(label: &str, report: &RunReport) -> String {
    let mut out = format!(
        "\n[{label}] scheduler={} makespan={:.2}s util={:.1}%\n",
        report.scheduler_name,
        report.makespan.as_secs_f64(),
        report.utilization * 100.0
    );
    let bars: Vec<(String, f64)> = report
        .clients
        .iter()
        .map(|c| {
            let v = if c.is_finished() {
                c.finish_time().as_secs_f64()
            } else {
                0.0
            };
            (format!("client {:>2} ({})", c.client.0, c.model_name), v)
        })
        .collect();
    out.push_str(&render_bars(&bars, 48));
    let finished = report.finish_times_secs();
    if finished.len() >= 2 {
        let s = Summary::of(finished.iter().copied());
        out.push_str(&format!(
            "finish times: {s}; max/min = {:.3}, Jain = {:.4}\n",
            s.max() / s.min(),
            metrics::jain_fairness(&finished)
        ));
    }
    out
}

/// Prints per-client finish times (see [`format_finish_times`]).
pub fn print_finish_times(label: &str, report: &RunReport) {
    print!("{}", format_finish_times(label, report));
}

/// Formats per-client mean quantum GPU durations (Figures 14/16).
pub fn format_quanta(label: &str, report: &RunReport) -> String {
    let mut out = format!("\n[{label}] average GPU duration per quantum\n");
    let mut rows = Vec::new();
    for c in &report.clients {
        let q = c.trimmed_quanta_us();
        if q.is_empty() {
            continue;
        }
        let s = Summary::of(q.iter().copied());
        rows.push(vec![
            format!("client {}", c.client.0),
            c.model_name.clone(),
            format!("{}", c.batch),
            format!("{:.0}", s.mean()),
            format!("{:.1}%", s.cv() * 100.0),
            format!("{}", s.count()),
        ]);
    }
    out.push_str(&render_table(
        &["client", "model", "batch", "mean quantum (us)", "std/mean", "quanta"],
        &rows,
    ));
    out
}

/// Prints per-client mean quantum GPU durations (see [`format_quanta`]).
pub fn print_quanta(label: &str, report: &RunReport) {
    print!("{}", format_quanta(label, report));
}

/// Writes a result file under `results/` (created on demand) and returns
/// its path. The same content is expected to have been printed already.
pub fn save_result(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_grid_is_ascending() {
        let g = standard_q_grid();
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.first().copied(), Some(SimDuration::from_micros(100)));
    }

    #[test]
    fn homogeneous_clients_share_graph() {
        let clients = homogeneous_clients(ModelKind::ResNet152, 10, 3, 2);
        assert_eq!(clients.len(), 3);
        assert!(Arc::ptr_eq(
            clients[0].model.graph(),
            clients[1].model.graph()
        ));
    }

    #[test]
    fn complex_workload_has_fourteen_clients() {
        let w = complex_workload(1);
        assert_eq!(w.len(), 14);
        let names: std::collections::HashSet<&str> =
            w.iter().map(|c| c.model.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn store_covers_distinct_models_once() {
        let cfg = default_config();
        let m = models::mini::tiny(2);
        let store = build_store(&cfg, &[m.clone(), m.clone()]);
        assert_eq!(store.len(), 1);
        assert!(store.get(m.name(), 2).is_some());
    }
}
