//! A minimal, dependency-free measurement harness for the microbenches.
//!
//! The workspace builds hermetically (no registry access), so the bench
//! binaries cannot use an external harness. This module provides the small
//! slice the repo needs: warm up, auto-calibrate an iteration count to a
//! target sample duration, take several samples and report the median —
//! robust against one-off scheduling noise without criterion's machinery.

use std::time::{Duration, Instant};

/// Samples collected per measurement; the median is reported.
const SAMPLES: usize = 7;

/// Target wall-clock per sample. Short enough that a full bench binary runs
/// in seconds, long enough to amortize timer quantization.
const TARGET_SAMPLE: Duration = Duration::from_millis(60);

/// One benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Median nanoseconds per iteration across samples.
    pub ns_per_iter: f64,
}

impl Measurement {
    /// Iterations per second implied by the median sample.
    pub fn per_second(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            f64::INFINITY
        }
    }

    /// A single human-readable result line.
    pub fn report(&self) -> String {
        format!(
            "{:<40} {:>14} ns/iter  ({:>12} iters/s, {} iters/sample)",
            self.name,
            format_scaled(self.ns_per_iter),
            format_scaled(self.per_second()),
            self.iters
        )
    }
}

fn format_scaled(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Measures `f`, returning the median time per call.
///
/// The closure runs `iters` times per sample; `iters` is calibrated so one
/// sample lasts roughly [`TARGET_SAMPLE`]. Use `std::hint::black_box` inside
/// `f` on inputs/outputs the optimizer might otherwise delete.
pub fn measure<R, F: FnMut() -> R>(name: &str, mut f: F) -> Measurement {
    // Calibration: time single calls until the estimate stabilizes.
    let mut one = Duration::ZERO;
    let cal_start = Instant::now();
    let mut cal_runs = 0u32;
    while cal_start.elapsed() < Duration::from_millis(20) || cal_runs < 3 {
        let t = Instant::now();
        std::hint::black_box(f());
        one = t.elapsed().max(Duration::from_nanos(1));
        cal_runs += 1;
        if cal_runs >= 1_000 {
            break;
        }
    }
    let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 50_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        name: name.to_string(),
        iters,
        ns_per_iter: samples[samples.len() / 2],
    }
}

/// Measures `f` and prints the result line; returns the measurement so
/// callers can aggregate (e.g. into `BENCH_engine.json`).
pub fn run<R, F: FnMut() -> R>(name: &str, f: F) -> Measurement {
    let m = measure(name, f);
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = measure("noop_loop", || std::hint::black_box(3u64 * 7));
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
        assert!(m.per_second() > 0.0);
    }

    #[test]
    fn report_contains_name() {
        let m = Measurement {
            name: "x".into(),
            iters: 10,
            ns_per_iter: 1234.5,
        };
        assert!(m.report().contains('x'));
        assert!(m.report().contains("1.23k"));
    }
}
