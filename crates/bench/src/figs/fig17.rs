//! Figure 17: weighted fair sharing on a homogeneous workload.
//!
//! Ten Inception clients; the first five carry weight `k`, the rest
//! weight 1. Theory (and the paper): with weights k:1, the heavy group
//! finishes at a fraction `(k+1)/2k` of the light group's finish time —
//! 0.75 for 2:1 and 0.55 for 10:1.

use crate::{banner, build_store_for, choose_q, default_config, format_finish_times,
    homogeneous_clients, DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE};
use metrics::Summary;
use models::ModelKind;
use olympian::{OlympianScheduler, WeightedFair};
use serving::{run_experiment, ClientSpec, RunReport};

/// Runs the weighted experiment for one `k`; returns the report.
pub fn weighted_run(k: u32) -> RunReport {
    let cfg = default_config();
    let clients: Vec<ClientSpec> =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES)
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.with_weight(if i < 5 { k } else { 1 }))
            .collect();
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = OlympianScheduler::new(store, Box::new(WeightedFair::new()), q);
    run_experiment(&cfg, clients, &mut sched)
}

/// Observed heavy-group/light-group finish ratio.
pub fn group_ratio(report: &RunReport) -> f64 {
    let heavy = Summary::of(
        report.clients[..5]
            .iter()
            .map(|c| c.finish_time().as_secs_f64()),
    );
    let light = Summary::of(
        report.clients[5..]
            .iter()
            .map(|c| c.finish_time().as_secs_f64()),
    );
    heavy.mean() / light.mean()
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 17",
        "Weighted fair sharing, 10 Inception clients, weights k:1",
    );
    for k in [2u32, 10] {
        let report = weighted_run(k);
        out.push_str(&format_finish_times(&format!("weights {k}:1"), &report));
        let expected = (k as f64 + 1.0) / (2.0 * k as f64);
        out.push_str(&format!(
            "heavy/light finish ratio: {:.3} (theory (k+1)/2k = {expected:.3}; \
             paper observed ~0.74 for 2:1 and ~0.55 for 10:1)\n",
            group_ratio(&report)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn ratios_match_theory() {
        for k in [2u32, 10] {
            let report = super::weighted_run(k);
            let expected = (k as f64 + 1.0) / (2.0 * k as f64);
            let got = super::group_ratio(&report);
            assert!((got - expected).abs() < 0.06, "k={k}: {got} vs {expected}");
        }
    }
}
