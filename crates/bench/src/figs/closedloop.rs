//! Closed-loop SLO control on a regressed device, against the open loop.
//!
//! Both cells replay the PR 3 incident, deepened: profiles (and the
//! latency objective) are calibrated on the fresh device, then the
//! workload runs on a device that silently regressed 2.3x — enough that
//! the slot freed by deadline-ordered serialization no longer covers the
//! slowdown, so *something* has to give. The **open loop** is the PR 3
//! deployment — fair sharing with telemetry that *detects* the burn but
//! acts on nothing, so every run breaches the objective until the clients
//! drain. The **closed loop** runs the PR 9 control plane: a
//! deadline-aware hand-off policy serializes runs against their deadlines,
//! the laxity scan cancels the one session whose deadline has become
//! infeasible *before* it is ever granted the token (and before its
//! deadline timer would fire), and the drift alert rebinds a rescaled
//! profile mid-run so laxity estimates track the real device. The
//! survivors' p99 stays inside the objective the fresh device promised;
//! nothing in the open loop does.
//!
//! The report ends with a latency-attribution diff (open vs closed), which
//! pins the p99 gap on execute/token-wait — GPU time the open loop spent
//! interleaving runs that were all going to miss.

use crate::figs::fair;
use crate::{banner, build_store, default_config, format_finish_times};
use controlplane::{ControlConfig, ControlPolicy};
use olympian::{DeadlinePolicy, OlympianScheduler, StoreCostOracle};
use serving::{attrib, run_experiment, ClientSpec, RunReport, TraceConfig};
use simtime::SimDuration;
use std::sync::Arc;
use telemetry::{BurnWindows, DriftConfig, SloSpec, TelemetryConfig};

/// Snapshot cadence of both cells.
pub const INTERVAL: SimDuration = SimDuration::from_micros(100);
/// The open loop's scheduling quantum (and the objective probe's).
const QUANTUM: SimDuration = SimDuration::from_micros(200);
/// Clients in the workload.
const CLIENTS: usize = 3;
/// Sequential batches per client.
const BATCHES: u32 = 10;
/// How much the device slowed down after profiling. Deadline-ordered
/// serialization absorbs a ~1.4x regression outright (it eliminates the
/// fair loop's hand-off overhead); at 2.3x the last client in deadline
/// order is infeasible and the control plane must spend it.
const REGRESSION: f64 = 2.3;

/// Both cells of the experiment plus the calibrated objective.
pub struct Cells {
    /// The latency objective calibrated on the fresh device (p50 × 1.15).
    pub objective: SimDuration,
    /// Fair sharing on the regressed device, telemetry only.
    pub open: RunReport,
    /// Deadline policy + control plane on the regressed device.
    pub closed: RunReport,
}

/// p99 of completed-run latency, in microseconds. Cancelled runs never
/// complete, so they are absent by construction — the histogram is the
/// experience of the requests that were actually served.
pub fn p99_latency_us(report: &RunReport) -> f64 {
    report
        .telemetry
        .hist("run_latency_us")
        .expect("telemetered run")
        .p99
}

/// The regressed-device variant of a config: same memory and SM count,
/// every duration stretched [`REGRESSION`]x relative to what the profiles
/// promise.
fn regress(cfg: &serving::EngineConfig) -> gpusim::DeviceProfile {
    gpusim::DeviceProfile::custom(
        "regressed",
        REGRESSION,
        cfg.device.memory_bytes(),
        cfg.device.sm_count(),
        0.0,
    )
}

/// Runs both cells under the given hand-off policy.
pub fn run_cells(policy: ControlPolicy) -> Cells {
    let clients = vec![ClientSpec::new(models::mini::small(4), BATCHES); CLIENTS];
    let model_name = clients[0].model.name().to_string();
    let full_batch = clients[0].model.batch();
    let fresh = default_config();

    // The store covers the full batch and the Degraded-rung shrunk batch
    // (batch / divisor), so a ladder escalation can re-register jobs at
    // the smaller hint without a profile miss. Each cell gets its own
    // store: the closed loop rebinds profiles in-run, and that override
    // must not leak into the open cell's thresholds.
    let divisor = ControlConfig::new().batch_divisor;
    let profiled = [
        models::mini::small(full_batch),
        models::mini::small((full_batch / divisor).max(1)),
    ];
    let open_store = build_store(&fresh, &profiled);
    let closed_store = build_store(&fresh, &profiled);

    // Calibrate the objective on the fresh device: median run latency of a
    // fair-shared probe, plus a 15% margin. The fresh device meets it; the
    // regressed one cannot without intervention.
    let probe_cfg = fresh.with_telemetry(TelemetryConfig::enabled(INTERVAL));
    let mut probe_sched = fair(Arc::clone(&open_store), QUANTUM);
    let probe = run_experiment(&probe_cfg, clients.clone(), &mut probe_sched);
    let fresh_p50_us = probe
        .telemetry
        .hist("run_latency_us")
        .expect("latency histogram")
        .p50;
    let objective = SimDuration::from_micros((fresh_p50_us * 1.15).ceil() as u64);

    // The drift reference must match the shape of the quanta the detector
    // observes. EDF holds the token for whole runs, so its expected
    // observation is the fresh whole-run GPU duration; least-laxity rotates
    // like fair sharing, so its observations are quantum-sized like the
    // open loop's. A mismatched reference would clamp the rebind scale to
    // the floor instead of the honest regression factor.
    let drift_ref = match policy {
        ControlPolicy::Edf => {
            open_store
                .resolve(&model_name, full_batch)
                .expect("profiled")
                .gpu_duration
        }
        ControlPolicy::Laxity => QUANTUM,
    };

    let slo = SloSpec::new(&model_name, objective, 0.05);
    let burn = BurnWindows { short: 1, long: 2, threshold: 2.0 };

    let mut open_cfg = default_config();
    open_cfg.device = regress(&open_cfg);
    let open_cfg = open_cfg.with_trace(TraceConfig::sampled()).with_telemetry(
        TelemetryConfig::enabled(INTERVAL)
            .with_slo(slo.clone())
            .with_burn(burn)
            .with_drift(DriftConfig::new(QUANTUM, 0.25)),
    );
    let mut open_sched = fair(Arc::clone(&open_store), QUANTUM);
    let open = run_experiment(&open_cfg, clients.clone(), &mut open_sched);

    let closed_clients: Vec<ClientSpec> = clients
        .iter()
        .map(|c| c.clone().with_run_deadline(objective))
        .collect();
    let mut closed_cfg = default_config();
    closed_cfg.device = regress(&closed_cfg);
    let closed_cfg = closed_cfg
        .with_trace(TraceConfig::sampled())
        .with_telemetry(
            TelemetryConfig::enabled(INTERVAL)
                .with_slo(slo)
                .with_burn(burn)
                .with_drift(DriftConfig::new(drift_ref, 0.25)),
        )
        .with_control(
            ControlConfig::new()
                .with_policy(policy)
                .with_cost(StoreCostOracle::new(Arc::clone(&closed_store))),
        );
    let deadline_policy = match policy {
        ControlPolicy::Edf => DeadlinePolicy::edf(),
        ControlPolicy::Laxity => DeadlinePolicy::laxity(),
    };
    let mut closed_sched =
        OlympianScheduler::new(closed_store, Box::new(deadline_policy), QUANTUM);
    let closed = run_experiment(&closed_cfg, closed_clients, &mut closed_sched);

    Cells { objective, open, closed }
}

/// A cell's control/telemetry counters, zero when absent.
fn counter(report: &RunReport, name: &str) -> u64 {
    report.telemetry.counter(name).unwrap_or(0)
}

/// Completed runs a cell served.
fn completed_runs(report: &RunReport) -> u64 {
    report.telemetry.hist("run_latency_us").map_or(0, |h| h.count)
}

/// One cell section of the report.
fn cell_section(label: &str, report: &RunReport, objective: SimDuration) -> String {
    let p99 = p99_latency_us(report);
    let obj_us = objective.as_nanos() as f64 / 1_000.0;
    let verdict = if completed_runs(report) == 0 {
        "NO RUNS SERVED"
    } else if p99 <= obj_us {
        "WITHIN SLO"
    } else {
        "SLO MISS"
    };
    let mut out = format_finish_times(label, report);
    out.push_str(&format!(
        "p99 run latency = {p99:.0}us vs objective {obj_us:.0}us -> {verdict}\n\
         slo breaches = {}, burn alerts = {}, drift alerts = {}\n\
         control: transitions={} rebinds={} laxity-cancels={} sheds={} batch-shrinks={}\n",
        counter(report, "slo_breaches"),
        counter(report, "alerts_slo_burn"),
        counter(report, "alerts_drift"),
        counter(report, "control_transitions"),
        counter(report, "control_profile_rebinds"),
        counter(report, "control_laxity_cancels"),
        counter(report, "clients_admission_shed"),
        counter(report, "control_batch_shrinks"),
    ));
    out.push_str("client outcomes:\n");
    for c in &report.clients {
        out.push_str(&format!("  client {:>2}: {}\n", c.client.0, c.outcome));
    }
    out
}

/// Renders the closed-loop report under the given policy.
pub fn run_with_policy(policy: ControlPolicy) -> String {
    let mut out = banner(
        "closedloop",
        "closed-loop SLO control on a regressed device vs the PR 3 open loop",
    );
    let cells = run_cells(policy);
    let obj_us = cells.objective.as_nanos() as f64 / 1_000.0;
    out.push_str(&format!(
        "\nworkload: {CLIENTS} clients x mini-small(4) x {BATCHES} batches; device \
         regressed {REGRESSION}x after profiling\n\
         objective: fresh fair-shared p50 x 1.15 = {obj_us:.0}us\n\
         closed loop: policy={policy}, per-run deadline = objective, control plane on\n",
    ));

    out.push_str(&cell_section("open loop (fair, no control)", &cells.open, cells.objective));
    out.push_str(&cell_section(
        &format!("closed loop ({policy} + control plane)"),
        &cells.closed,
        cells.objective,
    ));

    let open_p99 = p99_latency_us(&cells.open);
    let closed_p99 = p99_latency_us(&cells.closed);
    // The headline claim IS the experiment: regenerating the figure
    // re-proves it rather than silently printing a regression. (Under the
    // laxity policy the claim is degenerate: equal deadlines make
    // least-laxity rotate like fair sharing, so under this much overload
    // it cancels every session — closed_runs below keeps the summary
    // honest about how many requests the claim covers.)
    assert!(
        closed_p99 <= obj_us && obj_us < open_p99,
        "closed loop must hold the objective the open loop burns: \
         closed {closed_p99:.0}us, objective {obj_us:.0}us, open {open_p99:.0}us"
    );
    out.push_str(&format!(
        "\nsummary: objective_us={obj_us:.0} open_p99_us={open_p99:.0} \
         closed_p99_us={closed_p99:.0} open_runs={} closed_runs={} \
         closed_within_slo=true open_within_slo=false \
         laxity_cancels={} rebinds={} sheds={}\n",
        completed_runs(&cells.open),
        completed_runs(&cells.closed),
        counter(&cells.closed, "control_laxity_cancels"),
        counter(&cells.closed, "control_profile_rebinds"),
        counter(&cells.closed, "clients_admission_shed"),
    ));

    // Where did the open loop's extra p99 go? Attribute both traces and
    // blame the diff (open = target, closed = baseline).
    let horizon = default_config().switch_latency + default_config().launch_overhead;
    let open_attr = cells.open.attribution(horizon);
    let closed_attr = cells.closed.attribution(horizon);
    let cp = attrib::critical_path(&open_attr);
    let d = attrib::diff(&open_attr, &closed_attr);
    out.push('\n');
    out.push_str(&attrib::render_text("open-loop", &open_attr, &cp, Some(("closed-loop", &d))));

    out.push_str(
        "\nShape: with deadlines bound, the hand-off policy serializes runs \
         against their deadlines instead of interleaving three clients that \
         would all miss; the laxity scan cancels the one infeasible session \
         while it is still parked (before the deadline timer would fire), and \
         the drift alert rebinds a rescaled profile mid-run so later \
         estimates track the regressed device. The ladder never escalates — \
         the served requests never breach, so there is no burn — which is \
         the point: the closed loop spends one client's deadline budget to \
         keep every request it serves inside the objective.\n",
    );
    out
}

/// Renders the default (EDF) closed-loop report, saved as
/// `results/closedloop.txt`.
pub fn run() -> String {
    run_with_policy(ControlPolicy::Edf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::ClientOutcome;

    #[test]
    fn closed_loop_holds_the_objective_the_open_loop_burns() {
        let cells = run_cells(ControlPolicy::Edf);
        let obj_us = cells.objective.as_nanos() as f64 / 1_000.0;
        let open_p99 = p99_latency_us(&cells.open);
        let closed_p99 = p99_latency_us(&cells.closed);
        assert!(
            closed_p99 <= obj_us,
            "closed p99 {closed_p99:.0}us must meet the {obj_us:.0}us objective"
        );
        assert!(
            open_p99 > obj_us,
            "open p99 {open_p99:.0}us must breach the {obj_us:.0}us objective"
        );

        // The open loop only observes the burn.
        assert!(counter(&cells.open, "slo_breaches") > 0);
        assert!(counter(&cells.open, "alerts_slo_burn") > 0);
        assert_eq!(counter(&cells.open, "control_laxity_cancels"), 0);
        assert!(cells.open.all_finished());

        // The closed loop acts: the infeasible session is cancelled by the
        // laxity scan and the stale profile is rebound mid-run; the served
        // requests never breach, so the ladder never escalates.
        assert!(counter(&cells.closed, "control_laxity_cancels") >= 1);
        assert!(counter(&cells.closed, "control_profile_rebinds") >= 1);
        assert_eq!(counter(&cells.closed, "slo_breaches"), 0);
        assert_eq!(counter(&cells.closed, "control_transitions"), 0);
        assert_eq!(counter(&cells.closed, "clients_admission_shed"), 0);
        let cancelled = cells
            .closed
            .clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::DeadlineExceeded(_)))
            .count();
        assert_eq!(cancelled, 1, "exactly one session is infeasible");
        assert_eq!(cells.closed.finished_count(), CLIENTS - 1);

        // The cancellation and rebind land on the trace as typed events.
        let json = cells.closed.chrome_trace_json();
        assert!(json.contains("\"laxity-cancel\""));
        assert!(json.contains("\"profile-rebind\""));
    }

    #[test]
    fn report_carries_the_machine_readable_summary() {
        let out = run();
        assert!(out.contains("summary: objective_us="));
        assert!(out.contains("closed_within_slo=true open_within_slo=false"));
        assert!(out.contains("WITHIN SLO"));
        assert!(out.contains("SLO MISS"));
        assert!(out.contains("latency attribution: open-loop"));
        assert!(out.contains("blame vs baseline: closed-loop"));
    }

    #[test]
    fn laxity_policy_sheds_the_whole_overload_instead_of_burning() {
        // Least-laxity with equal deadlines degenerates to fair rotation,
        // so under a 2.3x overload every session's laxity goes negative —
        // the textbook LLF domino miss. The control plane's answer is to
        // cancel all of them early rather than serve three guaranteed
        // breaches: zero runs complete, and therefore zero runs breach.
        let cells = run_cells(ControlPolicy::Laxity);
        assert_eq!(cells.closed.scheduler_name, "olympian-laxity");
        assert_eq!(cells.closed.finished_count(), 0);
        assert_eq!(counter(&cells.closed, "slo_breaches"), 0);
        let cancelled = cells
            .closed
            .clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::DeadlineExceeded(_)))
            .count();
        assert_eq!(cancelled, CLIENTS, "every session is infeasible under LLF");
        // The report stays honest about serving nothing.
        let out = run_with_policy(ControlPolicy::Laxity);
        assert!(out.contains("NO RUNS SERVED"));
        assert!(out.contains("closed_runs=0"));
    }
}
