//! Fleet orchestration under skewed, phase-shifting popularity.
//!
//! Dozens of models share a handful of heterogeneous devices while a
//! Zipf-skewed arrival stream concentrates most traffic on a few hot
//! models — and rotates the hot set mid-run. Both cells run the identical
//! trace through the same per-device lifecycle managers and budgets; only
//! the orchestration differs:
//!
//! * **static placement** — model `m` is pinned to device `m % D`
//!   ([`cluster::RouterPolicy::Static`], reconfiguration off). The hot
//!   model's whole arrival share lands on one device, which saturates and
//!   builds a queue while its neighbours idle.
//! * **fleet** — cost-aware routing (queued drain + PCIe transfer when a
//!   load would be needed + profile-scaled execute) plus the periodic
//!   min-cost-flow reconfiguration loop, which replicates the hot head
//!   across devices and follows the hot set when the phase shifts.
//!
//! The headline claim is the tail: the fleet's p99 completed-run latency
//! must beat static placement's on the same trace. Regenerating the
//! figure re-proves it — the assertion lives in the report path.

use crate::{banner, default_config};
use serving::{cluster, lifecycle, run_experiment, workload, ClientSpec, EngineConfig,
    FifoScheduler, RunReport, TelemetryConfig, TraceConfig};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;

/// Models in the catalog ("dozens").
pub const MODELS: usize = 24;
/// Devices in the fleet ("a handful"): two GTX 1080 Ti plus one faster
/// Titan X.
pub const DEVICES: usize = 3;
/// Arrivals in the trace.
pub const ARRIVALS: usize = 1_600;
/// Open-loop arrival spacing. 100 µs across three devices leaves the
/// fleet comfortably below saturation while the static cell's hot device
/// (which owns the ~30% head of the Zipf law plus its share of the tail)
/// runs past 100% and builds a queue.
pub const SPACING: SimDuration = SimDuration::from_micros(100);
/// Zipf exponent of the popularity law.
pub const EXPONENT: f64 = 1.2;
/// Arrival index at which the hot set rotates.
pub const SHIFT_AT: usize = ARRIVALS / 2;
/// How many positions the popularity ranking rotates at the shift.
/// 7 is coprime to both [`MODELS`] and [`DEVICES`], so the new hot model
/// lands on a different static device than the old one.
pub const ROTATE: usize = 7;
/// Weights per model: 32 MiB ≈ 2.8 ms of PCIe transfer at the default
/// 12 GB/s — expensive enough that replication is a real decision, cheap
/// enough that cold-start loads don't dominate the tail of either cell.
pub const WEIGHTS_BYTES: u64 = 32 << 20;
/// Reconfiguration cadence (δt2); routing reacts per-arrival (δt1).
pub const TICK: SimDuration = SimDuration::from_millis(5);
/// Trace seed.
pub const SEED: u64 = 17;

/// Both cells of the experiment, run on the identical arrival trace.
pub struct Cells {
    /// Static hash placement, reconfiguration off.
    pub static_placement: RunReport,
    /// Cost-aware routing + min-cost-flow reconfiguration.
    pub fleet: RunReport,
}

/// p99 of completed-run latency, in microseconds.
pub fn p99_latency_us(report: &RunReport) -> f64 {
    report
        .telemetry
        .hist("run_latency_us")
        .expect("telemetered run")
        .p99
}

/// A cell's telemetry counter, zero when absent.
fn counter(report: &RunReport, name: &str) -> u64 {
    report.telemetry.counter(name).unwrap_or(0)
}

/// Completed runs a cell served.
fn completed_runs(report: &RunReport) -> u64 {
    report.telemetry.hist("run_latency_us").map_or(0, |h| h.count)
}

/// The model catalog: [`MODELS`] rebadged mini-tiny graphs with inflated
/// weights, so placement is about bytes and transfer time rather than
/// graph shape.
fn catalog() -> Vec<models::LoadedModel> {
    let base = models::mini::tiny(4);
    (0..MODELS)
        .map(|i| {
            models::LoadedModel::from_parts(
                format!("zoo-{i:02}"),
                None,
                base.batch(),
                Arc::clone(base.graph()),
                WEIGHTS_BYTES,
                base.activation_bytes(),
            )
        })
        .collect()
}

/// The engine config for one cell.
fn cell_config(policy: cluster::RouterPolicy, reconfigure: bool) -> EngineConfig {
    let zoo = catalog();
    let mut plan = lifecycle::DeploymentPlan::new();
    for m in &zoo {
        plan = plan.with_model(lifecycle::ModelDeployment::new(m.name(), m.clone()));
    }
    let devices = vec![
        gpusim::DeviceProfile::gtx_1080_ti(),
        gpusim::DeviceProfile::gtx_1080_ti(),
        gpusim::DeviceProfile::titan_x(),
    ];
    let cc = cluster::ClusterConfig::new(devices, lifecycle::LifecycleConfig::new(plan))
        .with_tick(TICK)
        .with_policy(policy)
        .with_reconfigure(reconfigure);
    default_config()
        .with_cluster(cc)
        .with_trace(TraceConfig::sampled())
        .with_telemetry(TelemetryConfig::enabled(SimDuration::from_millis(1)))
}

/// The shared arrival trace: one single-run client per arrival, model
/// picked by the phase-shifting Zipf law.
fn trace_clients(shift: bool) -> Vec<ClientSpec> {
    let zoo = catalog();
    let shift_at = if shift { SHIFT_AT } else { usize::MAX };
    let picks = workload::zipf_models(ARRIVALS, MODELS, EXPONENT, shift_at, ROTATE, SEED);
    let arrivals = workload::uniform_arrivals(ARRIVALS, SPACING, SimTime::ZERO);
    picks
        .into_iter()
        .zip(arrivals)
        .map(|(m, at)| ClientSpec::new(zoo[m].clone(), 1).with_start(at))
        .collect()
}

/// Runs both cells on the identical trace. `shift` rotates the hot set at
/// the midpoint (the figure's scenario); without it the law is stationary.
pub fn run_cells(shift: bool) -> Cells {
    let static_cfg = cell_config(cluster::RouterPolicy::Static, false);
    let static_placement =
        run_experiment(&static_cfg, trace_clients(shift), &mut FifoScheduler::new());
    let fleet_cfg = cell_config(cluster::RouterPolicy::CostAware, true);
    let fleet = run_experiment(&fleet_cfg, trace_clients(shift), &mut FifoScheduler::new());
    Cells { static_placement, fleet }
}

/// One cell section of the report.
fn cell_section(label: &str, report: &RunReport) -> String {
    let hist = report.telemetry.hist("run_latency_us").expect("telemetered run");
    let mut out = format!(
        "\n[{label}]\n\
         run latency: p50 = {:.0}us, p99 = {:.0}us over {} completed runs\n\
         makespan = {:.3}s, peak memory = {} MiB\n\
         cluster: routes={} migrations={} reconfigs={} loads={} evictions={}\n\
         device busy:",
        hist.p50,
        hist.p99,
        hist.count,
        report.makespan.as_secs_f64(),
        report.peak_memory >> 20,
        counter(report, "cluster_routes"),
        counter(report, "cluster_migrations"),
        counter(report, "cluster_reconfigs"),
        counter(report, "versions_loaded"),
        counter(report, "versions_evicted"),
    );
    for (d, u) in report.device_utilizations.iter().enumerate() {
        out.push_str(&format!(" gpu{d}={:.1}%", u * 100.0));
    }
    out.push('\n');
    out
}

/// Named fleet scenarios for `olympctl fleet <scenario>`.
pub struct Scenario {
    /// Stable CLI name.
    pub name: &'static str,
    /// One-line description.
    pub caption: &'static str,
    /// Whether the hot set rotates mid-run.
    pub shift: bool,
}

/// Every fleet scenario.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "zipf",
            caption: "phase-shifting Zipf popularity (the figure's scenario)",
            shift: true,
        },
        Scenario {
            name: "steady",
            caption: "stationary Zipf popularity — replication without a shift",
            shift: false,
        },
    ]
}

/// Renders the named scenario, or `None` if unknown.
pub fn scenario_report(name: &str) -> Option<String> {
    scenarios().into_iter().find(|s| s.name == name).map(render)
}

/// Renders one scenario's comparison report.
fn render(s: Scenario) -> String {
    let mut out = banner(
        "fleet",
        "cost-aware routing + min-cost-flow reconfiguration vs static placement",
    );
    out.push_str(&format!(
        "\nscenario: {} — {}\n\
         workload: {ARRIVALS} arrivals, {MODELS} models x {} MiB weights, Zipf s={EXPONENT}\n\
         fleet: {DEVICES} devices (2x gtx-1080-ti + titan-x), tick = {TICK}\n",
        s.name,
        s.caption,
        WEIGHTS_BYTES >> 20,
    ));
    if s.shift {
        out.push_str(&format!(
            "phase shift: hot set rotates {ROTATE} positions at arrival {SHIFT_AT}\n"
        ));
    }
    let cells = run_cells(s.shift);
    out.push_str(&cell_section("static placement (m % D, no reconfiguration)",
        &cells.static_placement));
    out.push_str(&cell_section("fleet (cost-aware routing + min-cost flow)", &cells.fleet));

    let static_p99 = p99_latency_us(&cells.static_placement);
    let fleet_p99 = p99_latency_us(&cells.fleet);
    // The headline claim IS the experiment: regenerating the figure
    // re-proves the tail-latency win instead of silently printing a
    // regression.
    assert!(
        fleet_p99 < static_p99,
        "the fleet must beat static placement on p99: fleet {fleet_p99:.0}us vs \
         static {static_p99:.0}us"
    );
    assert!(
        counter(&cells.fleet, "cluster_migrations") >= 1,
        "the reconfiguration loop must move at least one replica"
    );
    out.push_str(&format!(
        "\nsummary: scenario={} fleet_p99_us={fleet_p99:.0} static_p99_us={static_p99:.0} \
         speedup_p99={:.2} fleet_runs={} static_runs={} routes={} migrations={} reconfigs={}\n",
        s.name,
        static_p99 / fleet_p99.max(1.0),
        completed_runs(&cells.fleet),
        completed_runs(&cells.static_placement),
        counter(&cells.fleet, "cluster_routes"),
        counter(&cells.fleet, "cluster_migrations"),
        counter(&cells.fleet, "cluster_reconfigs"),
    ));
    out.push_str(
        "\nShape: the static cell pins the Zipf head (about a third of all \
         traffic) to one device, which saturates and queues while its \
         neighbours idle — and the mid-run shift re-aims the head at a \
         device whose replica set was never consulted. The fleet prices \
         every arrival (drain + transfer-if-cold + scaled execute) so the \
         head spreads across warm replicas, and the min-cost-flow tick \
         re-places the catalog as the observed demand window moves, paying \
         the PCIe transfer only where the flow says the demand is.\n",
    );
    out
}

/// Renders the phase-shifting comparison, saved as `results/fleet.txt`.
pub fn run() -> String {
    scenario_report("zipf").expect("zipf scenario exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_beats_static_placement_and_is_deterministic() {
        let cells = run_cells(true);
        let static_p99 = p99_latency_us(&cells.static_placement);
        let fleet_p99 = p99_latency_us(&cells.fleet);
        assert!(
            fleet_p99 < static_p99,
            "fleet p99 {fleet_p99:.0}us must beat static {static_p99:.0}us"
        );
        // Every arrival completes in both cells — the win is latency, not
        // shed load.
        assert!(cells.fleet.all_finished());
        assert!(cells.static_placement.all_finished());
        assert_eq!(completed_runs(&cells.fleet), ARRIVALS as u64);
        assert_eq!(completed_runs(&cells.static_placement), ARRIVALS as u64);
        // The two cadences both acted: per-arrival routing on every run,
        // and at least one flow-driven migration.
        assert!(counter(&cells.fleet, "cluster_routes") >= ARRIVALS as u64);
        assert!(counter(&cells.fleet, "cluster_migrations") >= 1);
        assert!(counter(&cells.fleet, "cluster_reconfigs") >= 1);
        // The static cell never reconfigures by construction.
        assert_eq!(counter(&cells.static_placement, "cluster_migrations"), 0);
        assert_eq!(counter(&cells.static_placement, "cluster_reconfigs"), 0);

        // Same trace, same fleet, same bytes out.
        let again = run_cells(true);
        assert_eq!(format!("{:?}", cells.fleet), format!("{:?}", again.fleet));

        // The orchestration lands on the trace as typed events.
        let json = cells.fleet.chrome_trace_json();
        assert!(json.contains("\"cluster-route\""));
        assert!(json.contains("\"cluster-migrate\""));
        assert!(json.contains("\"cluster-reconfigure\""));
    }

    #[test]
    fn report_carries_the_machine_readable_summary() {
        let out = run();
        assert!(out.contains("summary: scenario=zipf fleet_p99_us="));
        assert!(out.contains("migrations="));
        assert!(out.contains("phase shift: hot set rotates"));
    }

    #[test]
    fn scenarios_resolve_by_name() {
        assert!(scenario_report("no-such").is_none());
        let names: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
        assert_eq!(names, ["zipf", "steady"]);
    }
}
