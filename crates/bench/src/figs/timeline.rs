//! A token-ownership timeline: which client's quanta occupied the GPU over
//! the first few tens of milliseconds of the Figure 11 run — the picture
//! behind the paper's Figure 9 ("time-slicing simply spreads out the
//! execution of a DNN").

use crate::{banner, build_store_for, default_config, homogeneous_clients, DEFAULT_BATCH,
    DEFAULT_NUM_BATCHES};
use crate::figs::fair;
use metrics::table::render_gantt;
use models::ModelKind;
use serving::run_experiment;
use simtime::SimDuration;

/// Window rendered, in seconds.
pub const WINDOW_S: f64 = 0.05;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Timeline",
        "Token ownership over the first 50 ms of fair sharing (5 Inception clients)",
    );
    let cfg = default_config();
    let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 5, DEFAULT_NUM_BATCHES);
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, SimDuration::from_micros(1200));
    let report = run_experiment(&cfg, clients, &mut sched);

    let rows: Vec<(String, Vec<(f64, f64)>)> = report
        .clients
        .iter()
        .map(|c| {
            let spans: Vec<(f64, f64)> = c
                .quantum_marks
                .iter()
                .filter_map(|&(end, dur)| {
                    let e = end.as_secs_f64();
                    let s = (e - dur.as_secs_f64()).max(0.0);
                    (s < WINDOW_S).then_some((s, e.min(WINDOW_S)))
                })
                .collect();
            (format!("client {}", c.client.0), spans)
        })
        .collect();
    out.push_str(&format!("\n0 ms {:>74} ms\n", WINDOW_S * 1e3));
    out.push_str(&render_gantt(&rows, WINDOW_S, 72));
    out.push_str(
        "\nEach '#' block is GPU time attributed to one client's quanta: the token \
         walks round-robin through the clients at millisecond granularity, exactly \
         the interleaving the paper's Figure 9 sketches.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn every_client_appears_in_the_window() {
        let out = super::run();
        for i in 0..5 {
            assert!(out.contains(&format!("client {i}")));
        }
    }
}
