//! A token-ownership timeline: which client's quanta occupied the GPU over
//! the first few tens of milliseconds of the Figure 11 run — the picture
//! behind the paper's Figure 9 ("time-slicing simply spreads out the
//! execution of a DNN").
//!
//! Rendered from the structured trace's `QuantumEnd` events rather than the
//! reports' private `quantum_marks` plumbing, so the gantt shows exactly
//! what a Perfetto view of the same trace would.

use crate::figs::fair;
use crate::{banner, build_store_for, default_config, homogeneous_clients, DEFAULT_BATCH,
    DEFAULT_NUM_BATCHES};
use metrics::table::render_gantt;
use models::ModelKind;
use serving::{run_experiment, RunReport, TraceConfig};
use simtime::SimDuration;
use trace::TraceKind;

/// Window rendered, in seconds.
pub const WINDOW_S: f64 = 0.05;

/// Gantt rows — one per client, labelled `client N` — built from the
/// trace's `QuantumEnd` spans, clipped to `[0, window_s]`.
pub fn gantt_rows(report: &RunReport, window_s: f64) -> Vec<(String, Vec<(f64, f64)>)> {
    let mut rows: Vec<(String, Vec<(f64, f64)>)> = report
        .clients
        .iter()
        .map(|c| (format!("client {}", c.client.0), Vec::new()))
        .collect();
    for e in &report.trace.events {
        if let TraceKind::QuantumEnd { client, gpu, .. } = e.kind {
            let end = e.at.as_secs_f64();
            let start = (end - gpu.as_secs_f64()).max(0.0);
            if start < window_s {
                if let Some((_, spans)) = rows.get_mut(client as usize) {
                    spans.push((start, end.min(window_s)));
                }
            }
        }
    }
    rows
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Timeline",
        "Token ownership over the first 50 ms of fair sharing (5 Inception clients)",
    );
    let cfg = default_config().with_trace(TraceConfig::sampled());
    let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 5, DEFAULT_NUM_BATCHES);
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, SimDuration::from_micros(1200));
    let report = run_experiment(&cfg, clients, &mut sched);

    let rows = gantt_rows(&report, WINDOW_S);
    out.push_str(&format!("\n0 ms {:>74} ms\n", WINDOW_S * 1e3));
    out.push_str(&render_gantt(&rows, WINDOW_S, 72));
    out.push_str(
        "\nEach '#' block is GPU time attributed to one client's quanta: the token \
         walks round-robin through the clients at millisecond granularity, exactly \
         the interleaving the paper's Figure 9 sketches.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::ClientSpec;

    /// Scaled-down tier-1 cover for the trace-driven gantt path: mini
    /// models, 3 clients, a couple of batches — runs in milliseconds.
    #[test]
    fn trace_driven_gantt_covers_every_client_scaled_down() {
        let cfg = default_config().with_trace(TraceConfig::sampled());
        let clients = vec![ClientSpec::new(models::mini::small(4), 2); 3];
        let store = build_store_for(&cfg, &clients);
        let mut sched = fair(store, SimDuration::from_micros(200));
        let report = run_experiment(&cfg, clients, &mut sched);
        assert!(report.all_finished());

        // A window past the makespan keeps every span unclipped, so the
        // trace-derived rows must agree exactly with the quantum_marks the
        // reports still carry.
        let window = report.makespan.as_secs_f64() * 1.01;
        let rows = gantt_rows(&report, window);
        assert_eq!(rows.len(), 3);
        for (c, (label, spans)) in report.clients.iter().zip(&rows) {
            assert_eq!(label, &format!("client {}", c.client.0));
            assert_eq!(spans.len(), c.quantum_marks.len());
            for (&(start, end), &(mark_end, dur)) in spans.iter().zip(&c.quantum_marks) {
                assert!((end - mark_end.as_secs_f64()).abs() < 1e-12);
                assert!((start - (mark_end.as_secs_f64() - dur.as_secs_f64()).max(0.0)).abs()
                    < 1e-12);
            }
            assert!(!spans.is_empty(), "every client received quanta");
        }

        let gantt = render_gantt(&rows, window, 40);
        for i in 0..3 {
            assert!(gantt.contains(&format!("client {i}")));
        }
    }

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn every_client_appears_in_the_window() {
        let out = super::run();
        for i in 0..5 {
            assert!(out.contains(&format!("client {i}")));
        }
    }
}
