//! §4.3 utilization: GPU utilization under TF-Serving vs Olympian's three
//! policies, 10 Inception clients.
//!
//! Paper: TF-Serving 84.74%, fair 78.62%, weighted fair 78.10%, priority
//! 76.35% — Olympian gives up a few points of utilization for isolation,
//! and strict priorities (fully serialized, no inter-job overlap at
//! switches) sit lowest.

use crate::{banner, build_store_for, choose_q, default_config, homogeneous_clients,
    DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE};
use metrics::table::render_table;
use models::ModelKind;
use olympian::{OlympianScheduler, Priority, RoundRobin, WeightedFair};
use serving::{run_experiment, ClientSpec, FifoScheduler, Scheduler};

fn workload(policy: &str) -> Vec<ClientSpec> {
    homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES)
        .into_iter()
        .enumerate()
        .map(|(i, c)| match policy {
            "weighted" => c.with_weight(if i < 5 { 2 } else { 1 }),
            "priority" => c.with_priority((10 - i) as u32),
            _ => c,
        })
        .collect()
}

/// Measures utilization for each scheduler; returns `(name, util)` pairs.
pub fn measurements() -> Vec<(String, f64)> {
    let cfg = default_config();
    let base_clients = workload("fair");
    let store = build_store_for(&cfg, &base_clients);
    let q = choose_q(&cfg, &base_clients, DEFAULT_TOLERANCE);
    let mut results = Vec::new();

    let base = run_experiment(&cfg, base_clients, &mut FifoScheduler::new());
    results.push(("tf-serving".to_string(), base.utilization));

    type PolicyFactory = Box<dyn Fn() -> Box<dyn olympian::Policy>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("fair", Box::new(|| Box::new(RoundRobin::new()))),
        ("weighted", Box::new(|| Box::new(WeightedFair::new()))),
        ("priority", Box::new(|| Box::new(Priority::new()))),
    ];
    for (name, mk_policy) in policies {
        let mut sched = OlympianScheduler::new(store.clone(), mk_policy(), q);
        let report = run_experiment(&cfg, workload(name), &mut sched);
        assert!(report.all_finished(), "{} run completes", sched.name());
        results.push((sched.name().to_string(), report.utilization));
    }
    results
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "§4.3 utilization",
        "GPU utilization: TF-Serving vs Olympian policies",
    );
    let paper = [
        ("tf-serving", 84.74),
        ("olympian-fair", 78.62),
        ("olympian-weighted-fair", 78.10),
        ("olympian-priority", 76.35),
    ];
    let measured = measurements();
    let rows: Vec<Vec<String>> = measured
        .iter()
        .zip(paper)
        .map(|((name, util), (pname, putil))| {
            debug_assert_eq!(name, pname);
            vec![
                name.clone(),
                format!("{:.2}%", util * 100.0),
                format!("{putil:.2}%"),
            ]
        })
        .collect();
    out.push_str(&render_table(&["scheduler", "measured util", "paper util"], &rows));
    out.push_str(
        "\nPaper shape: TF-Serving highest; Olympian's time-sliced policies lower \
         (exclusive quanta lose inter-job gap filling). Two known deviations of the \
         temporal-only device model: the absolute gap is smaller than the paper's \
         6-8 points, and priority does not land *lowest* here — the paper attributes \
         priority's extra loss to missing spatial overlap at switches, an effect a \
         serial kernel engine cannot express. See EXPERIMENTS.md.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn utilization_ordering_matches_paper() {
        let m = super::measurements();
        let get = |name: &str| {
            m.iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, u)| *u)
                .expect("scheduler measured")
        };
        // The reproducible part of the paper's ordering: stock TF-Serving
        // beats every time-sliced policy. (The paper's "priority lowest"
        // relies on spatial overlap, outside this device model's scope.)
        assert!(get("tf-serving") > get("olympian-fair"));
        assert!(get("tf-serving") >= get("olympian-priority"));
        assert!(get("tf-serving") > get("olympian-weighted-fair"));
    }
}
