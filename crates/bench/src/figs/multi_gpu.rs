//! Extension experiment (paper §7 future work): multi-GPU serving.
//!
//! Two questions:
//!
//! 1. does adding GPUs scale client capacity (the §4.3 memory limit is
//!    per-device)?
//! 2. is per-device fairness preserved when clients are spread across
//!    devices?

use crate::{banner, build_store_for, default_config, format_finish_times,
    homogeneous_clients, DEFAULT_BATCH};
use metrics::table::render_table;
use models::ModelKind;
use olympian::{MultiGpuScheduler, RoundRobin};
use serving::{run_experiment, FifoScheduler, RunReport};
use simtime::SimDuration;

/// Runs 12 ResNet-152 clients on `gpus` devices under multi-GPU fair
/// sharing.
pub fn fair_on(gpus: usize) -> RunReport {
    let cfg = default_config().with_device_count(gpus);
    let clients = homogeneous_clients(ModelKind::ResNet152, DEFAULT_BATCH, 12, 4);
    let store = build_store_for(&cfg, &clients);
    let mut sched =
        MultiGpuScheduler::new(store, || Box::new(RoundRobin::new()), SimDuration::from_micros(1200));
    run_experiment(&cfg, clients, &mut sched)
}

/// Largest ResNet-152 client count (step 5) that finishes on `gpus` devices
/// under the baseline scheduler.
pub fn capacity_with(gpus: usize, max: usize) -> usize {
    let cfg = default_config().with_device_count(gpus);
    let mut last_ok = 0;
    let mut n = 5;
    while n <= max {
        let model = models::load(ModelKind::ResNet152, DEFAULT_BATCH).expect("zoo model");
        let clients = vec![serving::ClientSpec::new(model, 1); n];
        let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
        if !report.all_finished() {
            break;
        }
        last_ok = n;
        n += 5;
    }
    last_ok
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Extension: multi-GPU",
        "Client capacity and per-device fairness with 1-3 GPUs",
    );
    let mut rows = Vec::new();
    for gpus in 1..=3usize {
        let cap = capacity_with(gpus, 160);
        rows.push(vec![format!("{gpus}"), format!("{cap}")]);
    }
    out.push_str(&render_table(&["GPUs", "max ResNet-152 clients"], &rows));
    out.push_str("(memory is per-device, so capacity scales with GPU count)\n");

    let report = fair_on(2);
    out.push_str(&format_finish_times("12 clients on 2 GPUs, fair per device", &report));
    out.push_str(&format!(
        "per-device utilization: {}\n",
        report
            .device_utilizations
            .iter()
            .map(|u| format!("{:.1}%", u * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(
        "\nExpected: clients split 6/6 across devices; each device's cohort finishes \
         together at about half the single-GPU makespan.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn two_gpus_double_capacity_and_halve_makespan() {
        let one = super::capacity_with(1, 120);
        let two = super::capacity_with(2, 120);
        assert!(two >= one * 2 - 5, "capacity {one} -> {two}");

        let r1 = super::fair_on(1);
        let r2 = super::fair_on(2);
        assert!(r1.all_finished() && r2.all_finished());
        let speedup = r1.makespan.as_secs_f64() / r2.makespan.as_secs_f64();
        assert!(speedup > 1.7 && speedup < 2.3, "speedup {speedup}");
        assert_eq!(r2.device_utilizations.len(), 2);
    }
}
