//! The paper's §1 motivation, quantified: real applications use the GPU
//! intermittently, so a dedicated GPU idles — a serving system multiplexes
//! many bursty clients onto one GPU to recover utilization.
//!
//! We sweep client think time (idle gap between batches) and compare GPU
//! utilization with 1 client (a dedicated GPU) against 10 multiplexed
//! clients on stock TF-Serving.

use crate::{banner, default_config, homogeneous_clients, DEFAULT_BATCH};
use metrics::table::render_table;
use models::ModelKind;
use serving::{run_experiment, FifoScheduler};
use simtime::SimDuration;

/// Utilization for `n` clients at the given think time.
pub fn utilization_with(n: usize, think_ms: u64) -> f64 {
    let cfg = default_config();
    let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, n, 6)
        .into_iter()
        .map(|c| c.with_think_time(SimDuration::from_millis(think_ms)))
        .collect();
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(report.all_finished(), "motivation run completes");
    report.utilization
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Motivation (§1)",
        "Bursty clients: dedicated GPU vs multiplexed serving (stock TF-Serving)",
    );
    let mut rows = Vec::new();
    for think_ms in [0u64, 200, 500, 1_000] {
        let dedicated = utilization_with(1, think_ms);
        let multiplexed = utilization_with(10, think_ms);
        rows.push(vec![
            format!("{think_ms} ms"),
            format!("{:.1}%", dedicated * 100.0),
            format!("{:.1}%", multiplexed * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &["think time", "1 client (dedicated)", "10 clients (multiplexed)"],
        &rows,
    ));
    out.push_str(
        "\nExpected: as clients get burstier, a dedicated GPU's utilization collapses \
         while the multiplexed serving system keeps it high — the reason serving \
         systems share GPUs, and hence why GPU scheduling (Olympian) matters.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn multiplexing_recovers_utilization_for_bursty_clients() {
        let dedicated = super::utilization_with(1, 500);
        let multiplexed = super::utilization_with(10, 500);
        assert!(dedicated < 0.60, "dedicated {dedicated}");
        assert!(multiplexed > dedicated * 1.5, "multiplexed {multiplexed}");
    }
}
