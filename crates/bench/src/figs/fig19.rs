//! Figure 19: the ablation — replacing the profiled cost-accumulation
//! quantum with a plain CPU (wall-clock) timer.
//!
//! Left panel: homogeneous workload finish times drift apart again.
//! Right panel: heterogeneous workload GPU durations per quantum diverge —
//! a wall-clock slice buys different amounts of GPU depending on each
//! model's CPU/GPU mix, so "equal time" is not "equal GPU".

use crate::{banner, build_store_for, default_config, format_finish_times, format_quanta,
    homogeneous_clients, DEFAULT_BATCH, DEFAULT_NUM_BATCHES};
use crate::figs::fig13_14;
use metrics::Summary;
use models::ModelKind;
use olympian::{OlympianScheduler, RoundRobin};
use serving::{run_experiment, RunReport};
use simtime::SimDuration;

/// The wall-clock quantum used for the ablation (the paper reuses the
/// cost-chosen Q's magnitude).
pub const WALL_Q: SimDuration = SimDuration::from_micros(1200);

fn timer_sched(store: std::sync::Arc<olympian::ProfileStore>) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(RoundRobin::new()), WALL_Q).with_wall_clock_meter()
}

/// Homogeneous workload under the CPU-timer scheduler.
pub fn homogeneous_timer_run() -> RunReport {
    let cfg = default_config();
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
    let store = build_store_for(&cfg, &clients);
    let mut sched = timer_sched(store);
    run_experiment(&cfg, clients, &mut sched)
}

/// Heterogeneous workload under the CPU-timer scheduler.
pub fn heterogeneous_timer_run() -> RunReport {
    let cfg = default_config();
    let clients = fig13_14::workload(100);
    let store = build_store_for(&cfg, &clients);
    let mut sched = timer_sched(store);
    run_experiment(&cfg, clients, &mut sched)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 19",
        "CPU-timer quantum ablation: wall-clock slicing fails to equalize GPU usage",
    );
    let homo = homogeneous_timer_run();
    out.push_str(&format_finish_times("homogeneous, CPU timer", &homo));
    let hetero = heterogeneous_timer_run();
    out.push_str(&format_quanta("heterogeneous, CPU timer", &hetero));
    let means: Vec<f64> = hetero
        .clients
        .iter()
        .filter_map(|c| c.mean_quantum_us())
        .collect();
    let s = Summary::of(means.iter().copied());
    out.push_str(&format!(
        "\nheterogeneous per-client mean GPU/quantum spans {:.0}-{:.0} us \
         (ratio {:.2}x), with per-quantum std blowing up to 25-40% — compare \
         Figure 14's near-equal, low-variance shares under cost accumulation \
         (paper's extreme: one client got 1872 us, others far less).\n",
        s.min(),
        s.max(),
        s.max() / s.min()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn timer_quanta_diverge_across_models() {
        let hetero = super::heterogeneous_timer_run();
        let means: Vec<f64> = hetero
            .clients
            .iter()
            .filter_map(|c| c.mean_quantum_us())
            .collect();
        let s = metrics::Summary::of(means.iter().copied());
        assert!(
            s.max() / s.min() > 1.04,
            "wall-clock slicing should skew GPU shares across models: {means:?}"
        );
    }
}
