//! Live-telemetry report: what an operator dashboard would show during the
//! `drifted` incident run — per-snapshot sparklines of the key series, the
//! final counter totals and the alert log.
//!
//! The underlying run is `bench::telemetered`'s `drifted` experiment: a
//! deployment whose GPU regressed 40% after profiling, so both online
//! monitors (streaming drift detection and SLO burn rate) fire mid-run.

use crate::banner;
use crate::telemetered::telemetered_experiment;
use metrics::table::{render_sparkline, render_table};
use simtime::SimDuration;
use telemetry::Alert;

/// Snapshot cadence of the report run.
pub const INTERVAL: SimDuration = SimDuration::from_micros(100);

/// Sparkline width the per-snapshot series are downsampled to.
const SPARK_WIDTH: usize = 96;

/// Bucket-means a series down to at most `width` points, so a run with
/// thousands of snapshots still renders as one terminal line.
fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let a = i * values.len() / width;
            let b = ((i + 1) * values.len() / width).max(a + 1);
            values[a..b].iter().sum::<f64>() / (b - a) as f64
        })
        .collect()
}

/// Per-snapshot values of one named series, for sparkline rendering.
fn gauge_series(t: &serving::TelemetryReport, name: &str) -> Vec<f64> {
    let Some(i) = t.gauge_names.iter().position(|n| *n == name) else {
        return Vec::new();
    };
    t.snapshots.iter().map(|s| s.gauges[i]).collect()
}

/// Per-snapshot deltas of a cumulative counter.
fn counter_deltas(t: &serving::TelemetryReport, name: &str) -> Vec<f64> {
    let Some(i) = t.counter_names.iter().position(|n| *n == name) else {
        return Vec::new();
    };
    let mut prev = 0u64;
    t.snapshots
        .iter()
        .map(|s| {
            let v = s.counters[i];
            let d = v - prev;
            prev = v;
            d as f64
        })
        .collect()
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "telemetry",
        "Live telemetry during a profile-drift incident (regressed device, fresh profiles)",
    );
    let report = telemetered_experiment("drifted").expect("registered")(INTERVAL);
    let t = &report.telemetry;
    out.push_str(&format!(
        "\nscheduler={} makespan={:.3}ms snapshots={} (every {})\n",
        report.scheduler_name,
        report.makespan.as_secs_f64() * 1e3,
        t.snapshots.len(),
        t.interval,
    ));

    out.push_str(&format!(
        "\nper-snapshot series (downsampled to {SPARK_WIDTH} buckets, low..high):\n"
    ));
    let series: &[(&str, Vec<f64>)] = &[
        ("runs completed (delta)", counter_deltas(t, "runs_completed")),
        ("token switches (delta)", counter_deltas(t, "token_switches")),
        ("SLO breaches (delta)", counter_deltas(t, "slo_breaches")),
        ("scheduler active jobs", gauge_series(t, "scheduler_active_jobs")),
        ("holder cost ratio", gauge_series(t, "holder_cost_ratio")),
        ("GPU-share fairness", gauge_series(t, "gpu_share_fairness")),
    ];
    for (label, values) in series {
        let line = render_sparkline(&downsample(values, SPARK_WIDTH));
        out.push_str(&format!("  {label:<24} |{line}|\n"));
    }

    out.push_str("\nfinal totals:\n");
    let last = t.last().expect("telemetry ran");
    let rows: Vec<Vec<String>> = t
        .counter_names
        .iter()
        .zip(last.counters)
        .map(|(n, v)| vec![(*n).to_string(), v.to_string()])
        .collect();
    out.push_str(&render_table(&["counter", "total"], &rows));

    if let Some(q) = t.hist("quantum_us") {
        out.push_str(&format!(
            "\nquantum (us): p50 {:.0}, p99 {:.0}, max {} over {} quanta (target {})\n",
            q.p50,
            q.p99,
            q.max,
            q.count,
            SimDuration::from_micros(200),
        ));
    }
    if let Some(h) = t.hist("handoff_us") {
        out.push_str(&format!(
            "hand-off (us): p50 {:.0}, p99 {:.0} over {} grants\n",
            h.p50, h.p99, h.count
        ));
    }

    out.push_str(&format!("\nalerts ({}):\n", t.alerts.len()));
    for a in &t.alerts {
        match a {
            Alert::Drift { at, client, observed_us, expected_us, deviation } => {
                out.push_str(&format!(
                    "  {at}  drift     client {client}: quanta {observed_us:.0}us vs \
                     {expected_us:.0}us expected ({:+.0}%) — re-profile\n",
                    deviation * 100.0
                ));
            }
            Alert::SloBurn { at, model, short_burn, long_burn, .. } => {
                out.push_str(&format!(
                    "  {at}  slo-burn  {model}: burn rate {short_burn:.1}x short / \
                     {long_burn:.1}x long of budget\n"
                ));
            }
            Alert::FaultRecovery { at, client, action, detail } => {
                out.push_str(&format!(
                    "  {at}  recovery  client {client}: {action} ({detail})\n"
                ));
            }
            Alert::Rollout { at, model, version, action, cand_us, base_us } => {
                out.push_str(&format!(
                    "  {at}  rollout   {model}@v{version}: {action} \
                     (candidate {cand_us}us vs incumbent {base_us}us)\n"
                ));
            }
        }
    }

    out.push_str(
        "\nShape: the regressed device stretches quanta ~40% past Q, so the streaming \
         detector flags every client's profile stale within a few quanta, and the \
         latency objective calibrated on the fresh device burns its error budget \
         immediately.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_sparklines_and_alerts() {
        let out = run();
        assert!(out.contains("per-snapshot series"));
        assert!(out.contains("GPU-share fairness"));
        assert!(out.contains("drift"));
        assert!(out.contains("slo-burn"));
        assert!(out.contains("re-profile"));
    }
}
