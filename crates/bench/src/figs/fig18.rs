//! Figure 18: priority scheduling on a homogeneous workload.
//!
//! Ten Inception clients under two priority assignments:
//!
//! * **10-level**: strictly decreasing priorities — execution is
//!   effectively serialized, client 0 first;
//! * **2-level**: clients 0–4 share a high priority (and fair-share among
//!   themselves, finishing ≈ half-way), clients 5–9 run afterwards.

use crate::{banner, build_store_for, choose_q, default_config, format_finish_times,
    homogeneous_clients, DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE};
use models::ModelKind;
use olympian::{OlympianScheduler, Priority};
use serving::{run_experiment, ClientSpec, RunReport};

/// Priority assignment schemes from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Levels {
    /// Strictly decreasing: client 0 highest … client 9 lowest.
    Ten,
    /// Clients 0–4 high, 5–9 low.
    Two,
}

/// Runs the priority experiment; returns the report.
pub fn priority_run(levels: Levels) -> RunReport {
    let cfg = default_config();
    let clients: Vec<ClientSpec> =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES)
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let priority = match levels {
                    Levels::Ten => (10 - i) as u32,
                    Levels::Two => {
                        if i < 5 {
                            2
                        } else {
                            1
                        }
                    }
                };
                c.with_priority(priority)
            })
            .collect();
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = OlympianScheduler::new(store, Box::new(Priority::new()), q);
    run_experiment(&cfg, clients, &mut sched)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 18",
        "Priority scheduling, 10 Inception clients, two priority assignments",
    );
    let ten = priority_run(Levels::Ten);
    out.push_str(&format_finish_times("10-level priority", &ten));
    out.push_str("expected: staircase — client 0 first, client 9 last (serialized).\n");
    let two = priority_run(Levels::Two);
    out.push_str(&format_finish_times("2-level priority", &two));
    out.push_str(
        "expected: clients 0-4 fair-share and finish together around the halfway \
         point; clients 5-9 finish together at the end (paper: ~25 s then ~50 s).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn ten_level_serializes() {
        let report = priority_run(Levels::Ten);
        let f = report.finish_times_secs();
        assert!(f.windows(2).all(|w| w[0] < w[1]), "staircase order: {f:?}");
    }

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn two_level_groups() {
        let report = priority_run(Levels::Two);
        let f = report.finish_times_secs();
        let high_max = f[..5].iter().fold(0.0_f64, |a, &b| a.max(b));
        let low_min = f[5..].iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(high_max < low_min, "high group first: {f:?}");
        let mid = f[9] / 2.0;
        assert!((f[..5].iter().sum::<f64>() / 5.0 - mid).abs() / mid < 0.15);
    }
}
