//! §4.3 scalability: how many concurrent clients fit?
//!
//! Two limits exist:
//!
//! * **GPU memory** — activations scale with clients; both systems hit this
//!   (paper: ~45 clients of ResNet-152-class models on a 1080 Ti).
//! * **Worker threads** — Olympian's suspended gangs *hold* their pool
//!   threads, so for thread-hungry models it saturates the pool well before
//!   TF-Serving does (paper: 40–60 Inception clients vs ~100).

use crate::{banner, build_store_for, default_config};
use crate::figs::fair;
use metrics::table::render_table;
use models::ModelKind;
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler, RunReport};
use simtime::SimDuration;

/// Outcome of one admission probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// All clients finished.
    Ok,
    /// Some clients were rejected (GPU memory).
    Oom,
    /// Some clients stalled (worker-thread exhaustion).
    Stalled,
}

fn classify(report: &RunReport) -> Probe {
    use serving::ClientOutcome;
    if report.all_finished() {
        return Probe::Ok;
    }
    if report
        .clients
        .iter()
        .any(|c| matches!(c.outcome, ClientOutcome::Stalled))
    {
        return Probe::Stalled;
    }
    Probe::Oom
}

fn probe(cfg: &EngineConfig, kind: ModelKind, n: usize, olympian: bool) -> Probe {
    let model = models::load(kind, 100).expect("zoo model");
    let clients = vec![ClientSpec::new(model, 1); n];
    let report = if olympian {
        let store = build_store_for(cfg, &clients);
        let mut sched = fair(store, SimDuration::from_micros(1200));
        run_experiment(cfg, clients, &mut sched)
    } else {
        run_experiment(cfg, clients, &mut FifoScheduler::new())
    };
    classify(&report)
}

/// Largest client count (stepping by 5 up to `max`) at which all clients
/// finish, plus the failure mode just beyond it.
pub fn capacity(kind: ModelKind, olympian: bool, max: usize) -> (usize, Probe) {
    let cfg = default_config();
    let mut last_ok = 0;
    let mut failure = Probe::Ok;
    let mut n = 5;
    while n <= max {
        match probe(&cfg, kind, n, olympian) {
            Probe::Ok => last_ok = n,
            other => {
                failure = other;
                break;
            }
        }
        n += 5;
    }
    (last_ok, failure)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "§4.3 scalability",
        "Maximum concurrent clients (batch 100, 1 batch each, step 5)",
    );
    let mut rows = Vec::new();
    for (kind, max, paper_tf, paper_oly) in [
        (ModelKind::ResNet152, 70, "~45 (memory)", "~45 (memory)"),
        (ModelKind::InceptionV4, 130, "~100 (memory)", "40-60 (threads)"),
    ] {
        let (tf_cap, tf_fail) = capacity(kind, false, max);
        let (oly_cap, oly_fail) = capacity(kind, true, max);
        rows.push(vec![
            kind.name().to_string(),
            format!("{tf_cap} ({tf_fail:?} beyond)"),
            paper_tf.to_string(),
            format!("{oly_cap} ({oly_fail:?} beyond)"),
            paper_oly.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &["model", "tf-serving max", "paper", "olympian max", "paper"],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: memory caps both systems near 45 clients for big-activation \
         models; for Inception, Olympian saturates the worker-thread pool (suspended \
         gangs hold threads) at roughly half of TF-Serving's client count.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn olympian_thread_bound_below_tf_for_inception() {
        let (tf_cap, _) = capacity(ModelKind::InceptionV4, false, 130);
        let (oly_cap, oly_fail) = capacity(ModelKind::InceptionV4, true, 130);
        assert!(oly_cap < tf_cap, "olympian {oly_cap} vs tf {tf_cap}");
        assert_eq!(oly_fail, Probe::Stalled);
        assert!((40..=60).contains(&oly_cap), "olympian cap {oly_cap}");
    }

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn memory_caps_resnet() {
        let (tf_cap, tf_fail) = capacity(ModelKind::ResNet152, false, 70);
        assert_eq!(tf_fail, Probe::Oom);
        assert!((40..=55).contains(&tf_cap), "tf cap {tf_cap}");
    }
}
