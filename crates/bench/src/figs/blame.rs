//! Latency blame report: the attribution layer pointed at the `drifted`
//! incident run.
//!
//! The underlying runs are `bench::telemetered`'s `drifted` experiment (a
//! deployment whose GPU regressed 40% after profiling) and its healthy
//! `smoke` twin. Every traced run is decomposed into phases that tile its
//! span exactly, the cross-request critical path of the makespan is walked,
//! and the drifted run is diffed against the baseline — the report should
//! pin nearly the whole p99 regression on the execute (compute) cause,
//! which is what actually changed between the two runs.

use crate::banner;
use crate::default_config;
use crate::telemetered::telemetered_experiment;
use serving::attrib;
use simtime::SimDuration;

/// Snapshot cadence of the underlying telemetered runs.
pub const INTERVAL: SimDuration = SimDuration::from_micros(100);

/// Attributes a telemetered experiment's trace. The hand-off horizon is the
/// engine default the experiments run with: token switch latency plus first
/// launch overhead.
pub fn attribute(experiment: &str) -> (serving::RunReport, attrib::Attribution) {
    let f = telemetered_experiment(experiment).expect("known telemetered experiment");
    let report = f(INTERVAL);
    let cfg = default_config();
    let attr = report.attribution(cfg.switch_latency + cfg.launch_overhead);
    (report, attr)
}

/// Renders the blame report (saved as `results/blame.txt`).
pub fn run() -> String {
    let mut out = banner(
        "blame",
        "latency attribution of the drifted incident run vs the healthy baseline",
    );
    let (_, target) = attribute("drifted");
    let (_, base) = attribute("smoke");
    let cp = attrib::critical_path(&target);
    let d = attrib::diff(&target, &base);
    out.push_str(&attrib::render_text("drifted", &target, &cp, Some(("smoke", &d))));
    out.push_str(
        "\nReading: phases tile every run span exactly (the decomposition is\n\
         asserted, not approximated); token-wait on the critical path and in\n\
         the diff is re-attributed to whatever the concurrent token holder\n\
         was doing, and hand-off growth at an unchanged per-switch cost is\n\
         rolled into the execute cause — so a pure compute regression shows\n\
         up as (almost) pure execute blame.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::attrib::Phase;

    #[test]
    fn drifted_blame_pins_the_regression_on_execute() {
        let (_, target) = attribute("drifted");
        let (_, base) = attribute("smoke");
        assert!(target.token_based && base.token_based);
        assert!(!target.runs.is_empty() && !base.runs.is_empty());
        let d = attrib::diff(&target, &base);
        assert!(d.delta_total_ns > 0, "regressed device must be slower");
        assert!(
            d.execute_share >= 0.9,
            "compute drift must own >=90% of the p99 delta, got {:.3}",
            d.execute_share
        );
        // The cause vector still accounts for the whole delta.
        for cd in &d.per_client {
            let sum: i64 = cd.cause_ns.iter().sum();
            assert_eq!(sum, cd.delta_ns);
        }
    }

    #[test]
    fn critical_path_tiles_the_makespan() {
        let (_, attr) = attribute("drifted");
        let cp = attrib::critical_path(&attr);
        assert_eq!(cp.span_ns, attr.makespan_ns);
        let blamed: u64 = cp.blame_ns.iter().map(|&(_, v)| v).sum();
        assert_eq!(blamed, cp.span_ns);
        // A quantum-sharing run spends real time executing and handing off.
        let exec = cp
            .blame_ns
            .iter()
            .find(|&&(n, _)| n == Phase::Execute.name())
            .unwrap()
            .1;
        assert!(exec > 0);
    }

    #[test]
    fn report_mentions_the_headline_number() {
        let out = run();
        assert!(out.contains("execute share"));
        assert!(out.contains("latency attribution: drifted"));
        assert!(out.contains("blame vs baseline: smoke"));
    }
}
