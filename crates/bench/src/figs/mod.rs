//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run() -> String`: it executes the experiment,
//! formats the same rows/series the paper plots, and returns the report
//! text (which the corresponding binary prints and saves under `results/`).

pub mod ablations;
pub mod dynamic_workload;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod motivation;
pub mod multi_gpu;
pub mod robustness;
pub mod scalability;
pub mod stability;
pub mod table2;
pub mod timeline;
pub mod utilization;

use olympian::{OlympianScheduler, ProfileStore, RoundRobin};
use simtime::SimDuration;
use std::sync::Arc;

/// A fair-sharing Olympian scheduler over the given profiles and quantum.
pub(crate) fn fair(store: Arc<ProfileStore>, q: SimDuration) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(RoundRobin::new()), q)
}
