//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes `run() -> String`: it executes the experiment,
//! formats the same rows/series the paper plots, and returns the report
//! text (which the corresponding binary prints and saves under `results/`).

pub mod ablations;
pub mod blame;
pub mod chaos;
pub mod closedloop;
pub mod dynamic_workload;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig08;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fleet;
pub mod lifecycle;
pub mod motivation;
pub mod multi_gpu;
pub mod overhead;
pub mod robustness;
pub mod scalability;
pub mod stability;
pub mod table2;
pub mod telemetry;
pub mod timeline;
pub mod utilization;

use olympian::{OlympianScheduler, ProfileStore, RoundRobin};
use simtime::SimDuration;
use std::sync::Arc;

/// An experiment: a stable name (the `results/<name>.txt` key) and the
/// function regenerating its report.
pub type Experiment = (&'static str, fn() -> String);

/// Every experiment of the reproduction, in the paper's presentation order.
///
/// This is the registry both `bench::all` and `perfsuite` iterate; entries
/// are independent deterministic simulations, so the harness may run them in
/// parallel as long as results are merged in registry order.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("table2", table2::run),
        ("fig03", fig03::run),
        ("fig04", fig04::run),
        ("fig06", fig06::run),
        ("fig08", fig08::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13_14", fig13_14::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("fig19", fig19::run),
        ("fig20", fig20::run),
        ("fig21", fig21::run),
        ("utilization", utilization::run),
        ("scalability", scalability::run),
        ("stability", stability::run),
        ("multi_gpu", multi_gpu::run),
        ("dynamic_workload", dynamic_workload::run),
        ("ablations", ablations::run),
        ("timeline", timeline::run),
        ("telemetry", telemetry::run),
        ("overhead", overhead::run),
        ("motivation", motivation::run),
        ("robustness", robustness::run),
        ("chaos", chaos::run),
        ("lifecycle", lifecycle::run),
        ("blame", blame::run),
        ("closedloop", closedloop::run),
        ("fleet", fleet::run),
    ]
}

/// A fair-sharing Olympian scheduler over the given profiles and quantum.
pub(crate) fn fair(store: Arc<ProfileStore>, q: SimDuration) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(RoundRobin::new()), q)
}
