//! Extension experiment (paper §7 future work: "more realistic workloads"):
//! open-loop Poisson request arrivals through TF-Serving's batcher.
//!
//! Two tenants share the GPU: a latency-sensitive tenant with small, fast
//! batches and a bulk tenant with large ones. Requests arrive Poisson; the
//! batcher (size cap + timeout) forms `Session::Run`s; per-request latency
//! is `batch completion − request arrival`. Under the baseline, the bulk
//! tenant's kernels crowd the interactive tenant's; under Olympian weighted
//! fair sharing, the interactive tenant's latency tail collapses.

use crate::{banner, build_store_for, default_config};
use metrics::table::render_table;
use metrics::Cdf;
use models::ModelKind;
use olympian::{OlympianScheduler, WeightedFair};
use serving::batching::{plan_batches, poisson_arrivals, BatchingConfig};
use serving::{run_experiment, ClientSpec, FifoScheduler, RunReport};
use simtime::{SimDuration, SimTime};

/// Per-tenant workload description.
struct Tenant {
    kind: ModelKind,
    rate_per_sec: f64,
    batching: BatchingConfig,
    weight: u32,
    seed: u64,
}

/// Builds the experiment's client list and remembers which clients belong
/// to which tenant plus each batch's request arrivals.
pub struct DynamicWorkload {
    clients: Vec<ClientSpec>,
    /// (tenant index, request arrivals) per client, aligned with `clients`.
    membership: Vec<(usize, Vec<SimTime>)>,
}

fn tenants() -> Vec<Tenant> {
    vec![
        Tenant {
            // Interactive: small batches, short batching timeout, 4 tickets.
            kind: ModelKind::ResNet50,
            rate_per_sec: 6.0,
            batching: BatchingConfig::new(8, SimDuration::from_millis(100)),
            weight: 4,
            seed: 11,
        },
        Tenant {
            // Bulk analytics: big batches, generous timeout, 1 ticket.
            kind: ModelKind::InceptionV4,
            rate_per_sec: 40.0,
            batching: BatchingConfig::new(100, SimDuration::from_millis(500)),
            weight: 1,
            seed: 22,
        },
    ]
}

/// The arrival horizon. Rates are sized so the offered GPU load is ~75% of
/// capacity — loaded but stable.
pub const HORIZON: SimDuration = SimDuration::from_secs(10);

/// Builds the batched workload.
pub fn build() -> DynamicWorkload {
    let mut clients = Vec::new();
    let mut membership = Vec::new();
    for (ti, t) in tenants().into_iter().enumerate() {
        let arrivals = poisson_arrivals(t.rate_per_sec, HORIZON, t.seed);
        for batch in plan_batches(&arrivals, &t.batching) {
            let model = models::load(t.kind, batch.size()).expect("zoo model");
            clients.push(
                ClientSpec::new(model, 1)
                    .with_weight(t.weight)
                    .with_start(batch.formed_at()),
            );
            membership.push((ti, batch.request_arrivals().to_vec()));
        }
    }
    DynamicWorkload { clients, membership }
}

/// Per-request latencies (ms) of one tenant under a finished report.
pub fn tenant_latencies(w: &DynamicWorkload, report: &RunReport, tenant: usize) -> Vec<f64> {
    let mut latencies = Vec::new();
    for (client, (ti, arrivals)) in report.clients.iter().zip(&w.membership) {
        if *ti != tenant || !client.is_finished() {
            continue;
        }
        let done = client.finish_time();
        for &a in arrivals {
            latencies.push((done - a).as_millis_f64());
        }
    }
    latencies
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Extension: dynamic workload",
        "Poisson arrivals through the batcher: interactive vs bulk tenant",
    );
    let cfg = default_config();
    let w = build();
    out.push_str(&format!(
        "\n{} batched Session::Runs formed from open-loop arrivals over {}s\n",
        w.clients.len(),
        HORIZON.as_secs_f64()
    ));

    let base = run_experiment(&cfg, w.clients.clone(), &mut FifoScheduler::new());
    // Weighted fair: the interactive tenant holds 4 tickets. Profiles must
    // cover every batch size the batcher produced — exact profiles for each
    // (cheap here), as a deployment would combine common sizes + linear fits.
    let store = build_store_for(&cfg, &w.clients);
    let mut sched =
        OlympianScheduler::new(store, Box::new(WeightedFair::new()), SimDuration::from_micros(1200));
    let oly = run_experiment(&cfg, w.clients.clone(), &mut sched);

    let mut rows = Vec::new();
    for (system, report) in [("tf-serving", &base), ("olympian weighted 4:1", &oly)] {
        for (ti, name) in [(0usize, "interactive"), (1, "bulk")] {
            let lat = tenant_latencies(&w, report, ti);
            let cdf = Cdf::of(lat.iter().copied());
            rows.push(vec![
                system.to_string(),
                name.to_string(),
                format!("{}", cdf.len()),
                format!("{:.0}", cdf.quantile(0.5)),
                format!("{:.0}", cdf.quantile(0.95)),
                format!("{:.0}", cdf.quantile(0.99)),
            ]);
        }
    }
    out.push_str(&render_table(
        &["system", "tenant", "requests", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        &rows,
    ));
    out.push_str(
        "\nExpected: Olympian cuts the interactive tenant's tail latency sharply \
         while the bulk tenant pays modestly — the service-differentiation story \
         of the paper's introduction under a realistic arrival process.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn weighted_sharing_improves_interactive_tail() {
        let cfg = crate::default_config();
        let w = super::build();
        let base = serving::run_experiment(
            &cfg,
            w.clients.clone(),
            &mut serving::FifoScheduler::new(),
        );
        let store = crate::build_store_for(&cfg, &w.clients);
        let mut sched = olympian::OlympianScheduler::new(
            store,
            Box::new(olympian::WeightedFair::new()),
            simtime::SimDuration::from_micros(1200),
        );
        let oly = serving::run_experiment(&cfg, w.clients.clone(), &mut sched);
        let p99 = |r: &serving::RunReport| {
            metrics::Cdf::of(super::tenant_latencies(&w, r, 0)).quantile(0.99)
        };
        assert!(
            p99(&oly) < p99(&base),
            "interactive p99 should improve: {} vs {}",
            p99(&oly),
            p99(&base)
        );
    }
}
