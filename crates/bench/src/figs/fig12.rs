//! Figure 12: duration of successive scheduling intervals under Olympian
//! fair sharing (average ≈ 1.8 ms in the paper).
//!
//! Individual intervals vary widely — quantum completion is cost-driven and
//! jobs do not accumulate cost evenly — but average out to the configured
//! quantum plus switch costs.

use crate::banner;
use crate::figs::fig11;
use metrics::table::render_series;
use metrics::Summary;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 12",
        "Scheduling-interval durations under Olympian fair sharing",
    );
    let (_, oly, q_us) = fig11::reports();
    let intervals_ms: Vec<f64> = oly
        .scheduling_intervals
        .iter()
        .map(|d| d.as_millis_f64())
        .collect();
    let s = Summary::of(intervals_ms.iter().copied());
    out.push_str(&format!(
        "\nQ = {q_us:.0} us; {} intervals; mean = {:.2} ms (paper: 1.8 ms), \
         median = {:.2} ms, p99 = {:.2} ms, max = {:.2} ms\n",
        s.count(),
        s.mean(),
        s.median(),
        {
            let mut v = intervals_ms.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            v[(v.len() as f64 * 0.99) as usize]
        },
        s.max()
    ));
    out.push_str("\nfirst 60 intervals (interval_id, duration_ms):\n");
    let series: Vec<(f64, f64)> = intervals_ms
        .iter()
        .take(60)
        .enumerate()
        .map(|(i, &d)| (i as f64, d))
        .collect();
    out.push_str(&render_series(&series));
    out.push_str(
        "\nPaper shape: millisecond-scale intervals with wide variation around the mean.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn intervals_are_millisecond_scale() {
        let (_, oly, q_us) = super::fig11::reports();
        let mean = oly.mean_interval_ms().expect("intervals recorded");
        assert!(mean > q_us / 1000.0 * 0.8 && mean < q_us / 1000.0 * 3.0, "mean {mean}");
    }
}
