//! Figure 8: Overhead-Q curves for the seven DNNs.
//!
//! For each model, two instances are raced on stock TF-Serving and on
//! Olympian fair sharing across a sweep of quantum values; overhead falls
//! as the quantum grows. An operator's overhead tolerance is mapped through
//! these curves to pick `Q` (largest over the models in the workload).

use crate::{banner, default_config, standard_q_grid};
use metrics::table::render_table;
use models::ModelKind;
use olympian::{OverheadQCurve, Profiler};

/// Measures all seven curves.
pub fn curves() -> Vec<OverheadQCurve> {
    let cfg = default_config();
    let profiler = Profiler::new(&cfg).with_pair_batches(3);
    let grid = standard_q_grid();
    ModelKind::ALL
        .iter()
        .map(|&kind| {
            let model = models::load(kind, kind.reference_batch()).expect("zoo model");
            profiler.overhead_q_curve(&model, &grid)
        })
        .collect()
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner("Figure 8", "Overhead-Q curves for the 7 DNNs");
    let curves = curves();
    let grid = standard_q_grid();
    let mut header: Vec<String> = vec!["model".into()];
    header.extend(grid.iter().map(|q| format!("{:.1}ms", q.as_millis_f64())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let mut row = vec![c.model.clone()];
            row.extend(c.points.iter().map(|(_, ov)| format!("{:.1}%", ov * 100.0)));
            row
        })
        .collect();
    out.push_str(&render_table(&header_refs, &rows));

    for tol in [0.025, 0.02] {
        let q = Profiler::q_for_tolerance(&curves, tol);
        out.push_str(&format!(
            "Q for tolerance {:.1}%: {}\n",
            tol * 100.0,
            q.map_or("unreachable".into(), |q| format!("{:.0} us", q.as_micros_f64()))
        ));
    }
    out.push_str(
        "\nPaper shape: every curve decreases with Q; a 2.5% tolerance lands near \
         Q ~ 1.2 ms and 2% near Q ~ 1.6 ms.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn curves_decline() {
        for c in super::curves() {
            let first = c.points.first().expect("non-empty").1;
            let last = c.points.last().expect("non-empty").1;
            assert!(first > last, "{}: {first} vs {last}", c.model);
        }
    }
}
