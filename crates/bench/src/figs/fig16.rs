//! Figure 16: average GPU duration per quantum for the complex workload —
//! 14 clients across all seven DNNs at the Table 2 batch sizes.
//!
//! Even with widely varying graphs and batch sizes, every client receives a
//! near-identical per-quantum GPU share close to the predicted `Q`
//! (paper: Q = 1620 µs at 2% tolerance, observed 1438–1662 µs,
//! std 4.1–12.0%, overhead 1.8%).

use crate::{banner, build_store_for, choose_q, complex_workload, default_config,
    format_quanta, DEFAULT_NUM_BATCHES};
use crate::figs::fair;
use metrics::Summary;
use serving::{run_experiment, FifoScheduler, RunReport};
use simtime::SimDuration;

/// The 2% overhead tolerance the paper uses for this workload.
pub const TOLERANCE: f64 = 0.02;

/// Runs the complex workload; returns `(baseline, olympian, Q)`.
pub fn reports() -> (RunReport, RunReport, SimDuration) {
    let cfg = default_config();
    let clients = complex_workload(DEFAULT_NUM_BATCHES);
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, TOLERANCE);
    let mut sched = fair(store, q);
    let oly = run_experiment(&cfg, clients, &mut sched);
    (base, oly, q)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 16",
        "Complex workload: 14 clients x 7 DNNs, per-quantum GPU durations",
    );
    let (base, oly, q) = reports();
    out.push_str(&format!(
        "\nchosen Q for {:.0}% tolerance: {:.0} us (paper: 1620 us)\n",
        TOLERANCE * 100.0,
        q.as_micros_f64()
    ));
    out.push_str(&format_quanta("fig16", &oly));
    let means: Vec<f64> = oly.clients.iter().filter_map(|c| c.mean_quantum_us()).collect();
    let s = Summary::of(means.iter().copied());
    let overhead = (oly.makespan.as_secs_f64() - base.makespan.as_secs_f64())
        / base.makespan.as_secs_f64();
    out.push_str(&format!(
        "\nper-client means span {:.0}-{:.0} us (paper: 1438-1662 us); \
         whole-workload overhead vs TF-Serving: {:.1}% (paper: 1.8% vs 2% predicted)\n",
        s.min(),
        s.max(),
        overhead * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn complex_workload_shares_evenly() {
        let (_, oly, q) = super::reports();
        let q_us = q.as_micros_f64();
        let means: Vec<f64> = oly.clients.iter().filter_map(|c| c.mean_quantum_us()).collect();
        assert_eq!(means.len(), 14);
        for m in means {
            assert!((m - q_us).abs() / q_us < 0.20, "mean {m} vs Q {q_us}");
        }
    }
}
