//! Figure 21: portability — the fair-sharing experiment on a different
//! platform (NVIDIA Titan X instead of the GTX 1080 Ti).
//!
//! Olympian inherits device independence from the middleware layer: no
//! code changes, only re-profiling on the new device. Absolute finish
//! times shift with the hardware; fairness is preserved.

use crate::{banner, build_store_for, choose_q, default_config, format_finish_times,
    homogeneous_clients, DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE};
use crate::figs::fair;
use gpusim::DeviceProfile;
use metrics::max_min_ratio;
use models::ModelKind;
use serving::{run_experiment, RunReport};

/// Runs fair sharing of 10 Inception clients on the Titan X platform.
pub fn titan_run() -> (RunReport, f64) {
    let mut cfg = default_config();
    cfg.device = DeviceProfile::titan_x();
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
    // Profiles are measured on the *target* device, as the paper's profiler
    // does when the servable is deployed to new hardware.
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = fair(store, q);
    (run_experiment(&cfg, clients, &mut sched), q.as_micros_f64())
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 21",
        "Portability: fair sharing on the Titan X platform",
    );
    let (report, q_us) = titan_run();
    out.push_str(&format!("re-profiled Q on titan-x: {q_us:.0} us\n"));
    out.push_str(&format_finish_times("Olympian fair @ titan-x", &report));
    out.push_str(&format!(
        "spread (max/min) = {:.4}; absolute times are longer than Figure 11's \
         (slower device) but fairness is preserved — the paper's point.\n",
        max_min_ratio(&report.finish_times_secs())
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn titan_preserves_fairness() {
        let (report, _) = super::titan_run();
        assert!(report.all_finished());
        let spread = metrics::max_min_ratio(&report.finish_times_secs());
        assert!(spread < 1.01, "spread {spread}");
    }
}
