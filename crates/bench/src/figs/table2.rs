//! Table 2: the seven models' node counts and single-job runtimes at the
//! complex-workload batch sizes.
//!
//! Node counts come from the calibrated generators (they match the paper by
//! construction — that is the calibration contract); runtimes are
//! *measured* by running each model alone on an idle simulated GPU.

use crate::{banner, default_config};
use metrics::table::render_table;
use models::ModelKind;
use serving::{run_experiment, ClientSpec, FifoScheduler};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Table 2",
        "Model inventory: nodes, GPU nodes, measured single-job runtime",
    );
    let cfg = default_config().quiescent();
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let model = models::load(kind, kind.reference_batch()).expect("zoo model");
        let report = run_experiment(
            &cfg,
            vec![ClientSpec::new(model.clone(), 1)],
            &mut FifoScheduler::new(),
        );
        assert!(report.all_finished(), "single-job run completes");
        let measured = report.makespan.as_secs_f64();
        let paper = models::spec(kind).runtime_s;
        rows.push(vec![
            kind.name().to_string(),
            format!("{}", kind.reference_batch()),
            format!("{}", model.graph().node_count()),
            format!("{}", model.graph().gpu_node_count()),
            format!("{measured:.2}"),
            format!("{paper:.2}"),
            format!("{:+.1}%", (measured / paper - 1.0) * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &["model", "batch", "nodes", "gpu nodes", "runtime (s)", "paper (s)", "delta"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn measured_runtimes_match_paper_within_ten_percent() {
        let cfg = crate::default_config().quiescent();
        for kind in models::ModelKind::ALL {
            let model = models::load(kind, kind.reference_batch()).expect("zoo model");
            let report = serving::run_experiment(
                &cfg,
                vec![serving::ClientSpec::new(model, 1)],
                &mut serving::FifoScheduler::new(),
            );
            let measured = report.makespan.as_secs_f64();
            let paper = models::spec(kind).runtime_s;
            let err = (measured / paper - 1.0).abs();
            assert!(err < 0.10, "{kind}: measured {measured} vs paper {paper}");
        }
    }
}
