//! Figure 20: the linear batch-size cost model.
//!
//! Instead of profiling every batch size, Olympian profiles two common ones
//! (50 and 100), fits per-node linear models, and predicts profiles for
//! other batches (25, 75, 150). Fair sharing with the *predicted* profiles
//! is as fair as with directly measured ones (Figure 11).

use crate::{banner, default_config, format_finish_times, homogeneous_clients,
    DEFAULT_NUM_BATCHES};
use crate::figs::fair;
use metrics::max_min_ratio;
use models::ModelKind;
use olympian::{LinearCostModel, Profiler, ProfileStore};
use serving::{run_experiment, RunReport};
use simtime::SimDuration;
use std::sync::Arc;

/// Quantum used for the runs (the magnitude chosen in Figure 11).
pub const Q: SimDuration = SimDuration::from_micros(1200);

/// Runs 10 Inception clients at `batch` using a *predicted* profile.
pub fn predicted_run(batch: u64) -> RunReport {
    let cfg = default_config();
    let profiler = Profiler::new(&cfg);
    let p50 = profiler.profile(&models::load(ModelKind::InceptionV4, 50).expect("zoo model"));
    let p100 = profiler.profile(&models::load(ModelKind::InceptionV4, 100).expect("zoo model"));
    let lin = LinearCostModel::fit(&[&p50, &p100]).expect("two distinct batches");
    let mut store = ProfileStore::new();
    store.insert(lin.predict(batch));
    let clients = homogeneous_clients(ModelKind::InceptionV4, batch, 10, DEFAULT_NUM_BATCHES);
    let mut sched = fair(Arc::new(store), Q);
    run_experiment(&cfg, clients, &mut sched)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 20",
        "Linear cost model: fairness with profiles predicted from batches 50+100",
    );
    for batch in [25u64, 75, 150] {
        let report = predicted_run(batch);
        out.push_str(&format_finish_times(&format!("batch {batch} (predicted profile)"), &report));
        out.push_str(&format!(
            "spread (max/min) = {:.4}\n",
            max_min_ratio(&report.finish_times_secs())
        ));
    }
    out.push_str(
        "\nPaper shape: completion-time fairness comparable to Figure 11 at every \
         batch size despite never profiling those batches directly.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn predicted_profiles_preserve_fairness() {
        for batch in [25u64, 150] {
            let report = super::predicted_run(batch);
            assert!(report.all_finished());
            let spread = metrics::max_min_ratio(&report.finish_times_secs());
            assert!(spread < 1.02, "batch {batch}: spread {spread}");
        }
    }
}
