//! Chaos resilience suite: fault-injected runs against their fault-free
//! twins.
//!
//! Each scenario replays the same workload four ways — {fifo, olympian} ×
//! {fault-free, faulted} — under the engine's deterministic fault
//! injection (see the `faults` crate) with the full recovery stack on:
//! kernel retries with exponential backoff, per-client circuit breakers
//! and Olympian's token-hold watchdog. The report asserts the resilience
//! band the repo promises: with recovery, Olympian's survivor fairness
//! (Jain over finish times) stays within [`JAIN_BAND`] of its fault-free
//! run and survivor p99 run latency within [`P99_BAND`]×, while the
//! baseline's finish-time spread collapses under the same faults.

use crate::figs::fair;
use crate::{banner, build_store, build_store_for, default_config};
use controlplane::ControlConfig;
use metrics::table::render_table;
use metrics::{max_min_ratio, try_jain_fairness};
use serving::faults::{FaultConfig, FaultPlan};
use serving::{run_experiment, ClientOutcome, ClientSpec, FifoScheduler, RunReport, TraceConfig};
use simtime::{SimDuration, SimTime};
use telemetry::{BurnWindows, SloSpec, TelemetryConfig};

/// Survivor Jain fairness under faults must stay within this fraction of
/// the fault-free run's Jain index.
pub const JAIN_BAND: f64 = 0.95;
/// Survivor p99 run latency under faults must stay within this multiple
/// of the fault-free run's p99.
pub const P99_BAND: f64 = 2.5;

/// Clients in the chaos workload.
const CLIENTS: usize = 6;
/// Batches per client.
const BATCHES: u32 = 6;
/// Scheduling quantum.
const QUANTUM: SimDuration = SimDuration::from_micros(200);
/// Token-hold watchdog patience, in quanta.
const WATCHDOG_QUANTA: f64 = 3.0;
/// Telemetry snapshot cadence.
const CADENCE: SimDuration = SimDuration::from_micros(500);

/// A named disturbance plan.
pub struct Scenario {
    /// Stable name (`olympctl chaos <name>`).
    pub name: &'static str,
    /// One-line description for the report.
    pub caption: &'static str,
    /// What gets injected.
    pub plan: FaultPlan,
}

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// The escalating scenario ladder, mildest first.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "kernel-faults",
            caption: "2% of kernel launches transiently fail",
            plan: FaultPlan::new().with_kernel_failures(0.02),
        },
        Scenario {
            name: "slowdown",
            caption: "kernels run 3x slower during [2ms, 6ms)",
            plan: FaultPlan::new().with_slowdown(3.0, ms(2), ms(6)),
        },
        Scenario {
            name: "stall",
            caption: "the device starts nothing during [3ms, 5ms)",
            plan: FaultPlan::new().with_stall(ms(3), ms(5)),
        },
        Scenario {
            name: "mixed",
            caption: "1% kernel faults + 2x slowdown [2ms, 4ms) + stall [6ms, 7ms)",
            plan: FaultPlan::new()
                .with_kernel_failures(0.01)
                .with_slowdown(2.0, ms(2), ms(4))
                .with_stall(ms(6), ms(7)),
        },
        Scenario {
            name: "drift",
            caption: "sustained 1.4x device regression during [1ms, 50ms)",
            plan: FaultPlan::new().with_slowdown(1.4, ms(1), ms(50)),
        },
    ]
}

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

fn workload() -> Vec<ClientSpec> {
    vec![ClientSpec::new(models::mini::small(4), BATCHES); CLIENTS]
}

/// Runs the chaos workload once. `plan: None` is the fault-free twin;
/// `olympian` selects Olympian fair sharing (with the token-hold watchdog
/// armed) over the TF-Serving baseline. Trace capture is sampled and
/// telemetry is on, so the run is fully observable — and byte-comparable
/// across worker counts.
pub fn chaos_report(plan: Option<&FaultPlan>, olympian: bool) -> RunReport {
    let clients = workload();
    let mut cfg = default_config()
        .with_trace(TraceConfig::sampled())
        .with_telemetry(TelemetryConfig::enabled(CADENCE));
    // Profiles come from the healthy device: faults are a runtime
    // disturbance, not a property of the offline profile.
    let store = build_store_for(&cfg, &clients);
    if let Some(p) = plan {
        cfg = cfg.with_faults(FaultConfig::new(p.clone()));
    }
    if olympian {
        let mut sched = fair(store, QUANTUM).with_watchdog(WATCHDOG_QUANTA);
        run_experiment(&cfg, clients, &mut sched)
    } else {
        run_experiment(&cfg, clients, &mut FifoScheduler::new())
    }
}

/// The control-plane axis of the `drift` scenario: the same sustained-
/// slowdown workload twice, degradation ladder {off, on}, with a latency
/// objective calibrated on the fault-free twin (p50 × 1.15). The off cell
/// is PR 3 observability — burn alerts pile up, nothing acts. In the on
/// cell the repeated burn episodes walk the ladder up to Shedding
/// (shrinking batch hints on the way), and the quiet tail after the
/// slowdown window walks it back down. Every client is admitted at time
/// zero — before the first burn — so the Shedding rung has no admissions
/// left to reject: the ladder degrades the work it already accepted
/// instead of dropping clients, which is exactly the ≤10% shed bound the
/// suite asserts.
///
/// Returns `(control_off, control_on)`.
pub fn control_axis() -> (RunReport, RunReport) {
    let s = scenario("drift").expect("registered scenario");
    let clients = workload();
    let model_name = clients[0].model.name().to_string();

    // Objective from the fault-free fair-shared twin.
    let fresh = default_config().with_telemetry(TelemetryConfig::enabled(CADENCE));
    let probe_store = build_store_for(&fresh, &clients);
    let mut probe_sched = fair(probe_store, QUANTUM);
    let probe = run_experiment(&fresh, clients.clone(), &mut probe_sched);
    let p50 = probe
        .telemetry
        .hist("run_latency_us")
        .expect("telemetered probe")
        .p50;
    let objective = SimDuration::from_micros((p50 * 1.15).ceil() as u64);

    let cell = |control: bool| -> RunReport {
        let clients = workload();
        let full_batch = clients[0].model.batch();
        let divisor = ControlConfig::new().batch_divisor;
        // Healthy-device profiles, covering the Degraded-rung shrunk batch
        // so ladder escalations re-register without a profile miss.
        let profiled = [
            models::mini::small(full_batch),
            models::mini::small((full_batch / divisor).max(1)),
        ];
        let store = build_store(&default_config(), &profiled);
        let mut cfg = default_config()
            .with_trace(TraceConfig::sampled())
            .with_telemetry(
                TelemetryConfig::enabled(CADENCE)
                    .with_slo(SloSpec::new(&model_name, objective, 0.05))
                    .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 }),
            )
            .with_faults(FaultConfig::new(s.plan.clone()));
        if control {
            cfg = cfg.with_control(ControlConfig::new());
        }
        let mut sched = fair(store, QUANTUM).with_watchdog(WATCHDOG_QUANTA);
        run_experiment(&cfg, clients, &mut sched)
    };
    (cell(false), cell(true))
}

/// Headline numbers of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Clients that finished every batch.
    pub finished: usize,
    /// Clients shed by the recovery layer (retries exhausted or breaker).
    pub shed: usize,
    /// Clients with no terminal outcome (must be zero: no run may wedge).
    pub wedged: usize,
    /// Jain fairness index over survivors' finish times.
    pub jain: f64,
    /// p99 run latency (µs) across completed runs.
    pub p99_us: f64,
    /// max/min survivor finish-time ratio.
    pub spread: f64,
    /// Makespan in seconds.
    pub makespan_s: f64,
    /// Injected kernel faults observed.
    pub faults: u64,
    /// Backoff retries scheduled.
    pub retries: u64,
    /// Token-hold watchdog revocations.
    pub watchdog: u64,
}

/// Summarises a chaos run.
pub fn outcome(r: &RunReport) -> Outcome {
    let finish = r.finish_times_secs();
    Outcome {
        finished: r.finished_count(),
        shed: r
            .clients
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome,
                    ClientOutcome::RetriesExhausted { .. } | ClientOutcome::CircuitOpen { .. }
                )
            })
            .count(),
        wedged: r
            .clients
            .iter()
            .filter(|c| matches!(c.outcome, ClientOutcome::Stalled))
            .count(),
        jain: try_jain_fairness(&finish).unwrap_or(0.0),
        p99_us: r.telemetry.hist("run_latency_us").map_or(0.0, |h| h.p99),
        spread: if finish.len() >= 2 { max_min_ratio(&finish) } else { 1.0 },
        makespan_s: r.makespan.as_secs_f64(),
        faults: r.telemetry.counter("faults_kernel").unwrap_or(0),
        retries: r.telemetry.counter("kernel_retries").unwrap_or(0),
        watchdog: r.telemetry.counter("watchdog_revocations").unwrap_or(0),
    }
}

fn row(scenario: &str, sched: &str, o: &Outcome, base: &Outcome) -> Vec<String> {
    vec![
        scenario.to_string(),
        sched.to_string(),
        format!("{}/{}", o.finished, CLIENTS),
        format!("{:.4}", o.jain),
        format!("{:.3}", if base.jain > 0.0 { o.jain / base.jain } else { 0.0 }),
        format!("{:.0}", o.p99_us),
        format!("{:.2}", if base.p99_us > 0.0 { o.p99_us / base.p99_us } else { 0.0 }),
        format!("{:.3}", o.spread),
        format!("{}", o.faults),
        format!("{}", o.retries),
        format!("{}", o.watchdog),
    ]
}

/// Runs the whole suite and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Chaos",
        "Resilience under deterministic fault injection (6 mini clients, Q = 200 us)",
    );
    let base_fifo = outcome(&chaos_report(None, false));
    let base_oly = outcome(&chaos_report(None, true));
    out.push_str(&format!(
        "fault-free twins: fifo Jain {:.4} p99 {:.0} us; olympian Jain {:.4} p99 {:.0} us\n\n",
        base_fifo.jain, base_fifo.p99_us, base_oly.jain, base_oly.p99_us
    ));
    let mut rows = Vec::new();
    let mut all_pass = true;
    let mut summaries = Vec::new();
    for s in scenarios() {
        let fifo = outcome(&chaos_report(Some(&s.plan), false));
        let oly = outcome(&chaos_report(Some(&s.plan), true));
        rows.push(row(s.name, "fifo", &fifo, &base_fifo));
        rows.push(row(s.name, "olympian", &oly, &base_oly));
        let jain_ratio = if base_oly.jain > 0.0 { oly.jain / base_oly.jain } else { 0.0 };
        let p99_ratio = if base_oly.p99_us > 0.0 { oly.p99_us / base_oly.p99_us } else { 0.0 };
        let pass = jain_ratio >= JAIN_BAND
            && p99_ratio <= P99_BAND
            && oly.wedged == 0
            && fifo.wedged == 0;
        all_pass &= pass;
        summaries.push(format!(
            "{:<14} {} — {}: olympian Jain ratio {:.3} (>= {JAIN_BAND}), p99 ratio {:.2} \
             (<= {P99_BAND}), wedged 0; fifo spread {:.3}x vs {:.3}x fault-free",
            s.name,
            if pass { "PASS" } else { "FAIL" },
            s.caption,
            jain_ratio,
            p99_ratio,
            fifo.spread,
            base_fifo.spread,
        ));
    }
    out.push_str(&render_table(
        &[
            "scenario", "sched", "finished", "jain", "jain/base", "p99 (us)", "p99/base",
            "spread", "faults", "retries", "watchdog",
        ],
        &rows,
    ));
    out.push('\n');
    for s in &summaries {
        out.push_str(s);
        out.push('\n');
    }
    out.push_str(&format!(
        "\nresilience band: {}. With recovery on, Olympian absorbs every scenario \
         inside the stated band; the baseline has no watchdog or fairness to \
         defend, so its finish-time spread widens instead.\n",
        if all_pass { "PASS" } else { "FAIL" }
    ));

    // The control-plane axis: the drift scenario with the degradation
    // ladder off vs on.
    let (off, on) = control_axis();
    let off_o = outcome(&off);
    let on_o = outcome(&on);
    let ctr = |r: &RunReport, n: &str| r.telemetry.counter(n).unwrap_or(0);
    let sheds = ctr(&on, "clients_admission_shed");
    let ctl_pass = on_o.wedged == 0
        && sheds as usize * 10 <= CLIENTS
        && on_o.jain / base_oly.jain >= JAIN_BAND
        && on_o.p99_us / base_oly.p99_us <= P99_BAND;
    out.push_str(&format!(
        "\ncontrol axis (drift scenario, ladder off vs on): {}\n\
         off: finished {}/{CLIENTS}, p99 {:.0} us, burn alerts {}, transitions 0 (by construction)\n\
         on:  finished {}/{CLIENTS}, p99 {:.0} us, transitions {}, batch shrinks {}, sheds {} \
         (bound: <= {}), wedged {}\n\
         The ladder climbs to Shedding under sustained burn, shrinks batch hints on the \
         way, and steps back down over the quiet tail; everything it accepted still \
         finishes inside the resilience band.\n",
        if ctl_pass { "PASS" } else { "FAIL" },
        off_o.finished,
        off_o.p99_us,
        ctr(&off, "alerts_slo_burn"),
        on_o.finished,
        on_o.p99_us,
        ctr(&on, "control_transitions"),
        ctr(&on, "control_batch_shrinks"),
        sheds,
        CLIENTS / 10,
        on_o.wedged,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_known_and_valid() {
        for s in scenarios() {
            s.plan.validate();
            assert!(scenario(s.name).is_some());
        }
        assert!(scenario("no-such-chaos").is_none());
    }

    #[test]
    fn control_axis_sheds_nothing_and_holds_the_band() {
        let base = outcome(&chaos_report(None, true));
        let (off, on) = control_axis();
        let off_o = outcome(&off);
        let on_o = outcome(&on);

        // The off cell is PR 3 observability: the burn is detected, nothing
        // acts on it.
        assert!(off.telemetry.counter("alerts_slo_burn").unwrap_or(0) >= 1);
        assert_eq!(off.telemetry.counter("control_transitions").unwrap_or(0), 0);
        assert_eq!(off_o.finished, CLIENTS);

        // The on cell walks the ladder up under sustained burn and back
        // down over the quiet tail, shrinking batch hints in between.
        let transitions = on.telemetry.counter("control_transitions").unwrap_or(0);
        assert!(transitions >= 2, "up and back down, got {transitions}");
        assert!(on.telemetry.counter("control_batch_shrinks").unwrap_or(0) >= 1);

        // The robustness bound: at most 10% of clients shed, nobody
        // wedged, survivors inside the resilience band.
        let sheds = on.telemetry.counter("clients_admission_shed").unwrap_or(0) as usize;
        assert!(sheds * 10 <= CLIENTS, "{sheds} sheds of {CLIENTS} clients");
        assert_eq!(on_o.wedged, 0, "no client may wedge");
        assert_eq!(on_o.finished, CLIENTS, "everyone admitted still finishes");
        assert!(
            on_o.jain / base.jain >= JAIN_BAND,
            "jain {:.4} vs fault-free {:.4}",
            on_o.jain,
            base.jain
        );
        assert!(
            on_o.p99_us / base.p99_us <= P99_BAND,
            "p99 {:.0} vs fault-free {:.0}",
            on_o.p99_us,
            base.p99_us
        );

        // Ladder transitions land on the trace as typed control events.
        assert!(on.chrome_trace_json().contains("\"control-healthy-to-degraded\""));
    }

    #[test]
    fn olympian_absorbs_kernel_faults_inside_the_band() {
        let base = outcome(&chaos_report(None, true));
        let s = scenario("kernel-faults").expect("known scenario");
        let faulted = outcome(&chaos_report(Some(&s.plan), true));
        assert_eq!(faulted.wedged, 0, "no client may wedge");
        assert!(faulted.faults > 0, "the plan must actually fire");
        assert_eq!(faulted.retries, faulted.faults);
        assert!(
            faulted.jain / base.jain >= JAIN_BAND,
            "jain {:.4} vs fault-free {:.4}",
            faulted.jain,
            base.jain
        );
        assert!(
            faulted.p99_us / base.p99_us <= P99_BAND,
            "p99 {:.0} vs fault-free {:.0}",
            faulted.p99_us,
            base.p99_us
        );
    }
}
