//! The `overhead` report: the paper's "<2% scheduling overhead" claim as a
//! checked number.
//!
//! The paper's contract is the Overhead-Q curve: an operator states an
//! overhead tolerance, the profiler maps it to a quantum, and the realized
//! overhead honors the tolerance. This report runs the Figure 11 workload
//! (10 Inception clients) twice under full tracing — once under the
//! TF-Serving baseline (no scheduling) and once under Olympian fair sharing
//! with Q chosen for the paper's 2% bound — and checks the realized
//! overhead, measured the way the paper measures it: makespan inflation
//! over the unscheduled baseline.
//!
//! The trace provides the decomposition behind the number: every token
//! hand-off opens a window (switch latency + launch overhead) after the
//! grant, and the report attributes to the scheduler exactly the device
//! idle falling inside those windows. Overflowed kernels from the previous
//! holder mask part of them — the very mechanism the paper credits for the
//! low overhead.

use crate::figs::fair;
use crate::{
    banner, build_store_for, choose_q, default_config, homogeneous_clients, DEFAULT_BATCH,
    DEFAULT_NUM_BATCHES,
};
use models::ModelKind;
use serving::{run_experiment, FifoScheduler, TraceConfig};
use trace::TraceStats;

/// The paper's claimed bound on scheduling overhead, doubling as the
/// operator tolerance handed to the Overhead-Q curve.
pub const OVERHEAD_BOUND: f64 = 0.02;

/// Counters for the two Figure 11 runs: the unscheduled baseline and
/// Olympian fair sharing at the 2%-tolerance quantum.
pub struct OverheadStats {
    /// Snapshot of the TF-Serving baseline run.
    pub baseline: TraceStats,
    /// Snapshot of the Olympian fair-sharing run.
    pub olympian: TraceStats,
    /// The quantum the Overhead-Q curve chose for [`OVERHEAD_BOUND`], in µs.
    pub q_us: f64,
}

impl OverheadStats {
    /// Realized scheduling overhead: makespan inflation over the
    /// unscheduled baseline — the paper's definition.
    pub fn realized_overhead(&self) -> f64 {
        (self.olympian.makespan_us - self.baseline.makespan_us) / self.baseline.makespan_us
    }
}

/// Runs the Figure 11 workload under the baseline and under Olympian with
/// full tracing, returning both counter snapshots.
pub fn stats() -> OverheadStats {
    let cfg = default_config().with_trace(TraceConfig::full());
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
    let handoff = cfg.switch_latency + cfg.launch_overhead;

    let base_report =
        run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    assert!(base_report.all_finished());
    assert_eq!(base_report.trace.dropped, 0, "full trace must be lossless");
    let baseline = TraceStats::from_trace(&base_report.trace, handoff);

    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, OVERHEAD_BOUND);
    let mut sched = fair(store, q);
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(report.all_finished());
    assert_eq!(report.trace.dropped, 0, "full trace must be lossless");
    let olympian = TraceStats::from_trace(&report.trace, handoff);

    OverheadStats { baseline, olympian, q_us: q.as_micros_f64() }
}

/// Runs the experiment and returns the report text.
///
/// # Panics
///
/// Panics if the realized scheduling overhead is not below the paper's 2%
/// bound — this report *is* the reproduction of that claim.
pub fn run() -> String {
    let mut out = banner(
        "Overhead",
        "Scheduler overhead for the Figure 11 workload at the paper's 2% tolerance",
    );
    let s = stats();
    let o = &s.olympian;
    let frac = s.realized_overhead();
    out.push_str(&format!(
        "quantum Q            : {:.0} us (Overhead-Q curve at {:.0}% tolerance)\n",
        s.q_us,
        OVERHEAD_BOUND * 100.0
    ));
    out.push_str(&format!(
        "makespan             : baseline {:.3} s, olympian {:.3} s\n",
        s.baseline.makespan_us / 1e6,
        o.makespan_us / 1e6
    ));
    out.push_str(&format!("token switches       : {}\n", o.token_switches));
    out.push_str(&format!(
        "quantum GPU duration : mean {:.0} us, p50 {:.0} us, p90 {:.0} us ({} quanta)\n",
        o.quantum.mean_us, o.quantum.p50_us, o.quantum.p90_us, o.quantum.count
    ));
    out.push_str(&format!(
        "overflow             : {:.0} us across {} kernels\n",
        o.overflow_us, o.overflow_count
    ));
    let attributed = o.scheduler_overhead_us.expect("full trace has kernel spans");
    let masked = 1.0 - attributed / o.handoff_bound_us.max(1e-9);
    out.push_str(&format!(
        "hand-off windows     : {:.0} us opened, {:.0} us left idle ({:.0}% masked by overflow)\n",
        o.handoff_bound_us, attributed, masked * 100.0
    ));
    out.push_str(&format!(
        "realized overhead    : {:.3}% makespan inflation over baseline (paper: <{:.0}%)\n",
        frac * 100.0,
        OVERHEAD_BOUND * 100.0
    ));
    assert!(
        frac < OVERHEAD_BOUND,
        "scheduling overhead {:.3}% exceeds the paper's {:.0}% bound",
        frac * 100.0,
        OVERHEAD_BOUND * 100.0
    );
    out.push_str(&format!(
        "\nCHECK PASSED: realized overhead {:.3}% < {:.0}% bound\n",
        frac * 100.0,
        OVERHEAD_BOUND * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn overhead_is_under_the_paper_bound() {
        let s = super::stats();
        assert!(s.realized_overhead() < super::OVERHEAD_BOUND);
        assert!(s.olympian.token_switches > 100, "fair sharing must actually switch");
        // The trace-attributed hand-off idle stays within its own bound.
        let attributed = s.olympian.scheduler_overhead_us.unwrap();
        assert!(attributed <= s.olympian.handoff_bound_us);
    }
}
