//! §4.4 stability: are cost and GPU duration stable enough to profile
//! offline once and reuse?
//!
//! The paper profiles Inception (batch 100) 100 times: total cost
//! σ/µ ≈ 2.5% and GPU duration σ/µ ≈ 1.7%. We repeat the measurement with
//! 100 differently seeded profiling runs.

use crate::{banner, default_config};
use metrics::Summary;
use models::ModelKind;
use olympian::Profiler;

/// Number of profiling repetitions.
pub const RUNS: usize = 100;

/// Profiles Inception `RUNS` times; returns `(costs, durations_us)`.
///
/// Each replication derives its configuration (and hence all randomness)
/// from its own seed, so the replications run in parallel and `par_map`'s
/// seed-ordered results are byte-identical to the serial loop.
pub fn samples() -> (Vec<f64>, Vec<f64>) {
    let model = models::load(ModelKind::InceptionV4, 100).expect("zoo model");
    let seeds: Vec<u64> = (0..RUNS as u64).collect();
    let pairs = simpar::par_map(&seeds, |_, &seed| {
        let cfg = default_config().with_seed(seed * 7919 + 13);
        let p = Profiler::new(&cfg).profile(&model);
        (p.total_cost as f64, p.gpu_duration.as_micros_f64())
    });
    pairs.into_iter().unzip()
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "§4.4 stability",
        "Cost and GPU-duration stability over 100 profiling runs (Inception, batch 100)",
    );
    let (costs, durations) = samples();
    let c = Summary::of(costs.iter().copied());
    let d = Summary::of(durations.iter().copied());
    out.push_str(&format!(
        "\ntotal cost:   mean = {:.3e} units, std = {:.3e} ({:.2}%)  [paper: σ/µ ≈ 2.5%]\n",
        c.mean(),
        c.std_dev(),
        c.cv() * 100.0
    ));
    out.push_str(&format!(
        "GPU duration: mean = {:.0} us, std = {:.0} us ({:.2}%)      [paper: σ/µ ≈ 1.7%]\n",
        d.mean(),
        d.std_dev(),
        d.cv() * 100.0
    ));
    out.push_str(
        "\nPaper shape: both quantities are stable to a few percent across runs, \
         validating one-shot offline profiling.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn stability_within_paper_band() {
        let (costs, durations) = super::samples();
        let c = metrics::Summary::of(costs.iter().copied());
        let d = metrics::Summary::of(durations.iter().copied());
        assert!(c.cv() > 0.005 && c.cv() < 0.05, "cost cv {}", c.cv());
        assert!(d.cv() > 0.005 && d.cv() < 0.04, "duration cv {}", d.cv());
    }
}
