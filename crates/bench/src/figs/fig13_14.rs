//! Figures 13 & 14: heterogeneous workload — 5 Inception + 5 ResNet-152
//! clients.
//!
//! Figure 13: finish times for two batch configurations (Inception at 100
//! and at 150, ResNet at 100). Within a model, finish times are equal;
//! across models they differ even when total runtimes are equalized,
//! because Olympian fair-shares the *GPU*, not the CPU.
//!
//! Figure 14: average GPU duration per quantum — every client receives a
//! near-identical GPU share that matches the profiler-predicted `Q`.

use crate::{banner, build_store_for, choose_q, default_config, format_finish_times,
    format_quanta, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE};
use crate::figs::fair;
use metrics::Summary;
use models::ModelKind;
use serving::{run_experiment, ClientSpec, RunReport};
use simtime::SimDuration;

/// Builds the 5+5 workload.
pub fn workload(inception_batch: u64) -> Vec<ClientSpec> {
    let inception = models::load(ModelKind::InceptionV4, inception_batch).expect("zoo model");
    let resnet = models::load(ModelKind::ResNet152, 100).expect("zoo model");
    let mut clients = vec![ClientSpec::new(inception, DEFAULT_NUM_BATCHES); 5];
    clients.extend(vec![ClientSpec::new(resnet, DEFAULT_NUM_BATCHES); 5]);
    clients
}

/// Runs one configuration; returns the report and the chosen quantum.
pub fn heterogeneous_run(inception_batch: u64) -> (RunReport, SimDuration) {
    let cfg = default_config();
    let clients = workload(inception_batch);
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = fair(store, q);
    (run_experiment(&cfg, clients, &mut sched), q)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figures 13/14",
        "Heterogeneous workload: 5 Inception + 5 ResNet-152 under Olympian fair",
    );
    for inception_batch in [100u64, 150] {
        let (report, q) = heterogeneous_run(inception_batch);
        out.push_str(&format!(
            "\n--- Inception batch {inception_batch}, ResNet-152 batch 100; chosen Q = {:.0} us \
             (paper: 1190 us) ---\n",
            q.as_micros_f64()
        ));
        out.push_str(&format_finish_times("fig13", &report));
        out.push_str(&format_quanta("fig14", &report));
        let means: Vec<f64> = report
            .clients
            .iter()
            .filter_map(|c| c.mean_quantum_us())
            .collect();
        let s = Summary::of(means.iter().copied());
        out.push_str(&format!(
            "per-client mean quanta: {:.0}-{:.0} us around Q = {:.0} us \
             (paper: 1084-1257 us around 1190 us)\n",
            s.min(),
            s.max(),
            q.as_micros_f64()
        ));
    }
    out.push_str(
        "\nPaper shape: same-model clients finish together; the two model groups \
         differ slightly even at equalized runtimes (GPU is shared fairly, CPU is \
         not), while per-quantum GPU durations are equal across all ten clients.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn gpu_share_is_equal_across_models() {
        let (report, q) = super::heterogeneous_run(100);
        let q_us = q.as_micros_f64();
        for c in &report.clients {
            let m = c.mean_quantum_us().expect("quanta recorded");
            assert!(
                (m - q_us).abs() / q_us < 0.15,
                "client {} mean {m} vs Q {q_us}",
                c.client.0
            );
        }
    }
}
