//! Figure 11: fair sharing on a homogeneous workload — finish times of
//! 10 Inception clients under TF-Serving vs Olympian.
//!
//! The headline result: Olympian's fair scheduler gives all ten identical
//! clients nearly identical finish times, while TF-Serving spreads them.

use crate::{
    banner, choose_q, default_config, format_finish_times, homogeneous_clients,
    build_store_for, DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE,
};
use crate::figs::fair;
use metrics::max_min_ratio;
use models::ModelKind;
use serving::{run_experiment, FifoScheduler, RunReport};

/// Runs both systems and returns `(baseline, olympian, chosen Q in µs)`.
pub fn reports() -> (RunReport, RunReport, f64) {
    let cfg = default_config();
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = fair(store, q);
    let oly = run_experiment(&cfg, clients, &mut sched);
    (base, oly, q.as_micros_f64())
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 11",
        "Fair sharing, homogeneous workload: 10 Inception clients",
    );
    let (base, oly, q_us) = reports();
    out.push_str(&format!(
        "profiler-chosen Q for {:.1}% tolerance: {q_us:.0} us (paper: 1190 us)\n",
        DEFAULT_TOLERANCE * 100.0
    ));
    out.push_str(&format_finish_times("TF-Serving", &base));
    out.push_str(&format_finish_times("Olympian fair", &oly));
    let base_ratio = max_min_ratio(&base.finish_times_secs());
    let oly_ratio = max_min_ratio(&oly.finish_times_secs());
    out.push_str(&format!(
        "\nspread (max/min): TF-Serving {base_ratio:.3} vs Olympian {oly_ratio:.3} \
         (paper: 42-50 s spread vs 48-50 s near-equal)\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn olympian_is_fairer_than_baseline() {
        let (base, oly, _) = super::reports();
        let b = metrics::max_min_ratio(&base.finish_times_secs());
        let o = metrics::max_min_ratio(&oly.finish_times_secs());
        assert!(o < 1.01, "olympian spread {o}");
        assert!(b > 1.10, "baseline spread {b}");
    }
}
