//! Figure 3: finish times for ten concurrent clients in stock TF-Serving,
//! two different runs.
//!
//! Ten identical Inception clients (batch 100, 10 batches each) run under
//! the baseline scheduler with two different seeds. The paper's point: jobs
//! with identical resource needs finish at very different times, and the
//! pattern changes run to run — the GPU driver cannot tell DNNs apart.

use crate::{banner, default_config, format_finish_times, homogeneous_clients, DEFAULT_BATCH,
    DEFAULT_NUM_BATCHES};
use metrics::max_min_ratio;
use models::ModelKind;
use serving::{run_experiment, FifoScheduler};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 3",
        "TF-Serving finish-time variability, 10 Inception clients, 2 runs",
    );
    for (label, seed) in [("Run-1", 1u64), ("Run-2", 2u64)] {
        let cfg = default_config().with_seed(seed);
        let clients =
            homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
        let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
        out.push_str(&format_finish_times(label, &report));
        let ratio = max_min_ratio(&report.finish_times_secs());
        out.push_str(&format!(
            "{label}: slowest/fastest client = {ratio:.2}x (paper: spreads up to 1.7x)\n"
        ));
    }
    out.push_str(
        "\nPaper shape: identical clients spread widely and differently per run. \
         Reproduced if both runs show max/min well above 1.1 with different orderings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn runs_and_reports_spread() {
        let out = super::run();
        assert!(out.contains("Run-1"));
        assert!(out.contains("Run-2"));
        assert!(out.contains("slowest/fastest"));
    }
}
