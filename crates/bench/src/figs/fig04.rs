//! Figure 4: node-duration CDF for one Inception job at batch sizes 10
//! and 100.
//!
//! Motivates the choice of the TensorFlow node as the interleaving unit:
//! the vast majority of nodes run for tens of microseconds, so switching at
//! node boundaries is fine-grained enough without hardware preemption.

use crate::banner;
use metrics::table::render_series;
use metrics::Cdf;
use models::ModelKind;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 4",
        "Node-duration CDF, Inception, batch 10 vs batch 100",
    );
    for batch in [10u64, 100] {
        let model = models::load(ModelKind::InceptionV4, batch).expect("zoo model");
        let durations: Vec<f64> = model
            .graph()
            .iter()
            .filter(|(_, n)| n.is_gpu())
            .map(|(_, n)| n.duration().as_micros_f64())
            .collect();
        let cdf = Cdf::of(durations);
        out.push_str(&format!(
            "\nbatch {batch}: {} GPU nodes; F(20us) = {:.1}%, F(100us) = {:.1}%, F(1ms) = {:.1}%, p50 = {:.1}us, p99 = {:.0}us\n",
            cdf.len(),
            cdf.fraction_below(20.0) * 100.0,
            cdf.fraction_below(100.0) * 100.0,
            cdf.fraction_below(1_000.0) * 100.0,
            cdf.quantile(0.5),
            cdf.quantile(0.99),
        ));
        out.push_str("duration_us\tcdf\n");
        out.push_str(&render_series(&cdf.series(24)));
    }
    out.push_str(
        "\nPaper shape: >80% of nodes under ~20us and >90% under 1ms, with the \
         batch-10 curve shifted left of batch-100.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cdf_matches_paper_shape() {
        let out = super::run();
        assert!(out.contains("batch 10"));
        assert!(out.contains("batch 100"));
    }
}
