//! Seed-robustness study: the headline results across 8 independent seeds.
//!
//! A reproduction's numbers should not depend on a lucky seed. For each
//! seed we re-run the Figure 11 core comparison and report the spread of
//! the headline metrics: baseline unfairness, Olympian fairness, overhead
//! and mean quantum accuracy.

use crate::{banner, build_store_for, default_config, homogeneous_clients, DEFAULT_BATCH};
use crate::figs::fair;
use metrics::table::render_table;
use metrics::{max_min_ratio, Summary};
use models::ModelKind;
use serving::{run_experiment, FifoScheduler};
use simtime::SimDuration;

/// Seeds swept.
pub const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Headline metrics for one seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedOutcome {
    /// Baseline max/min finish-time ratio.
    pub baseline_spread: f64,
    /// Olympian max/min finish-time ratio.
    pub olympian_spread: f64,
    /// Olympian-vs-baseline makespan overhead.
    pub overhead: f64,
    /// Mean per-quantum GPU duration across clients, µs.
    pub mean_quantum_us: f64,
}

/// Runs the core comparison for one seed at a fixed Q of 1.2 ms.
pub fn outcome_for(seed: u64) -> SeedOutcome {
    let cfg = default_config().with_seed(seed);
    let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, 5);
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, SimDuration::from_micros(1200));
    let oly = run_experiment(&cfg, clients, &mut sched);
    let quanta: Vec<f64> = oly
        .clients
        .iter()
        .filter_map(|c| c.mean_quantum_us())
        .collect();
    SeedOutcome {
        baseline_spread: max_min_ratio(&base.finish_times_secs()),
        olympian_spread: max_min_ratio(&oly.finish_times_secs()),
        overhead: (oly.makespan.as_secs_f64() - base.makespan.as_secs_f64())
            / base.makespan.as_secs_f64(),
        mean_quantum_us: Summary::of(quanta.iter().copied()).mean(),
    }
}

/// Runs the study and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Robustness",
        "Headline metrics across 8 seeds (10 Inception clients, Q = 1.2 ms)",
    );
    let outcomes: Vec<(u64, SeedOutcome)> =
        SEEDS.iter().map(|&s| (s, outcome_for(s))).collect();
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(s, o)| {
            vec![
                format!("{s}"),
                format!("{:.3}", o.baseline_spread),
                format!("{:.4}", o.olympian_spread),
                format!("{:.2}%", o.overhead * 100.0),
                format!("{:.0}", o.mean_quantum_us),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["seed", "baseline max/min", "olympian max/min", "overhead", "mean quantum (us)"],
        &rows,
    ));
    let base = Summary::of(outcomes.iter().map(|(_, o)| o.baseline_spread));
    let oly = Summary::of(outcomes.iter().map(|(_, o)| o.olympian_spread));
    let q = Summary::of(outcomes.iter().map(|(_, o)| o.mean_quantum_us));
    out.push_str(&format!(
        "\nacross seeds: baseline spread {:.2}-{:.2}x, olympian spread ≤ {:.4}x, \
         mean quantum {:.0}±{:.0} us around the configured 1200 us.\n\
         Every seed reproduces the paper's qualitative result.\n",
        base.min(),
        base.max(),
        oly.max(),
        q.mean(),
        q.std_dev()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn every_seed_reproduces_the_headline() {
        for &seed in &super::SEEDS[..4] {
            let o = super::outcome_for(seed);
            assert!(o.baseline_spread > 1.08, "seed {seed}: baseline {:.3}", o.baseline_spread);
            assert!(o.olympian_spread < 1.01, "seed {seed}: olympian {:.4}", o.olympian_spread);
            assert!(o.overhead < 0.08, "seed {seed}: overhead {:.3}", o.overhead);
            assert!(
                (o.mean_quantum_us - 1200.0).abs() / 1200.0 < 0.06,
                "seed {seed}: quantum {:.0}",
                o.mean_quantum_us
            );
        }
    }
}
