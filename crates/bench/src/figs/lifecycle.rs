//! Model-lifecycle suite: memory-budgeted churn and canary rollouts.
//!
//! Two scenarios exercise the lifecycle manager end to end under load:
//!
//! * **churn** — six single-version deployments share a device whose
//!   memory fits only [`CHURN_RESIDENT`] weight sets. Staggered open-loop
//!   clients keep every service active, so the manager continuously
//!   evicts the cheapest idle resident version (cost-aware LRU) and
//!   reloads it on demand — without ever exceeding the device budget.
//! * **canary** — one deployment publishes version 2 mid-run. The rollout
//!   controller splits traffic deterministically (every stride-th run to
//!   the candidate), then promotes a healthy candidate and rolls back a
//!   regressed one on the mean-latency gate.
//!
//! Every run is a deterministic simulation with per-version cost profiles
//! wired through [`StoreBinder`], so the report is byte-identical across
//! `--jobs N`.

use crate::figs::fair;
use crate::banner;
use metrics::table::render_table;
use models::LoadedModel;
use olympian::{ProfileStore, StoreBinder};
use serving::lifecycle::{CanaryConfig, DeploymentPlan, LifecycleConfig, ModelDeployment};
use serving::{run_experiment, ClientSpec, EngineConfig, RunReport, TraceConfig};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;
use telemetry::TelemetryConfig;

/// Deployments in the churn scenario.
pub const CHURN_SERVICES: usize = 6;
/// Whole weight sets the churn device budget fits (< [`CHURN_SERVICES`],
/// so eviction must fire for every client to finish).
pub const CHURN_RESIDENT: u64 = 3;
/// Scheduling quantum for the Olympian runs.
const QUANTUM: SimDuration = SimDuration::from_micros(200);
/// Telemetry snapshot cadence.
const CADENCE: SimDuration = SimDuration::from_micros(500);
/// Batches per churn client.
const CHURN_BATCHES: u32 = 4;
/// Think time between a churn client's batches: long enough for its
/// version to go idle (and become evictable) while other services run.
const CHURN_THINK: SimDuration = SimDuration::from_micros(800);
/// Stagger between churn client start times.
const CHURN_STAGGER: SimDuration = SimDuration::from_micros(150);
/// Clients of the canaried service.
const CANARY_CLIENTS: usize = 3;
/// Batches per canary client.
const CANARY_BATCHES: u32 = 16;
/// When version 2 of the canaried service is published.
const CANARY_PUBLISH: SimTime = SimTime::from_micros(500);
/// Canary split/gate parameters: every 3rd run to the candidate, decide
/// after 4 completed runs per arm, promote within 25% of the incumbent.
const CANARY: CanaryConfig = CanaryConfig { stride: 3, min_runs: 4, tolerance: 0.25 };

/// A named lifecycle scenario (`olympctl lifecycle <name>`).
pub struct Scenario {
    /// Stable name.
    pub name: &'static str,
    /// One-line description for the report.
    pub caption: &'static str,
}

/// The scenario catalogue.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "churn",
            caption: "6 services share memory that fits 3 weight sets; evict + reload on demand",
        },
        Scenario {
            name: "canary",
            caption: "version 2 published mid-run; promote when healthy, roll back when regressed",
        },
    ]
}

/// Looks up a scenario by name.
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Rebadges a mini zoo model as the named service (same graph, weights
/// and batch). `regressed` picks a much heavier graph — the unhealthy
/// canary candidate.
fn service(name: &str, regressed: bool) -> LoadedModel {
    let m = if regressed { models::mini::small(4) } else { models::mini::tiny(4) };
    LoadedModel::from_parts(
        name,
        None,
        m.batch(),
        Arc::clone(m.graph()),
        m.weights_bytes(),
        m.activation_bytes(),
    )
}

/// Device memory budget of the churn scenario: [`CHURN_RESIDENT`] weight
/// sets plus headroom for every client's activations.
pub fn churn_budget() -> u64 {
    let m = service("probe", false);
    CHURN_RESIDENT * m.weights_bytes()
        + CHURN_SERVICES as u64 * m.activation_bytes()
        + (64 << 10)
}

fn churn_name(i: usize) -> String {
    format!("svc-{i}")
}

/// An engine + profile store with the lifecycle manager on: the store
/// starts empty and is populated per-version by the calibrated binder as
/// the manager loads and unloads versions.
fn lifecycle_cfg(mut cfg: EngineConfig, plan: DeploymentPlan) -> (EngineConfig, Arc<ProfileStore>) {
    cfg = cfg
        .with_trace(TraceConfig::sampled())
        .with_telemetry(TelemetryConfig::enabled(CADENCE));
    let store = Arc::new(ProfileStore::new());
    let binder = StoreBinder::calibrate(&cfg, &plan, Arc::clone(&store));
    let lc = LifecycleConfig::new(plan).with_canary(CANARY).with_binder(binder);
    (cfg.with_lifecycle(lc), store)
}

/// Runs the churn scenario: more deployments than fit, staggered
/// open-loop clients, cost-aware eviction keeping residency under budget.
pub fn churn_report() -> RunReport {
    let mut plan = DeploymentPlan::new();
    for i in 0..CHURN_SERVICES {
        let name = churn_name(i);
        plan = plan.with_model(ModelDeployment::new(name.clone(), service(&name, false)));
    }
    let device = gpusim::DeviceProfile::custom("lifecycle-lab", 1.0, churn_budget(), 8, 0.0);
    let cfg = EngineConfig { device, ..EngineConfig::default() };
    let (cfg, store) = lifecycle_cfg(cfg, plan);
    let clients: Vec<ClientSpec> = (0..CHURN_SERVICES)
        .map(|i| {
            ClientSpec::new(service(&churn_name(i), false), CHURN_BATCHES)
                .with_start(SimTime::ZERO + CHURN_STAGGER.mul_f64(i as f64))
                .with_think_time(CHURN_THINK)
        })
        .collect();
    let mut sched = fair(store, QUANTUM);
    run_experiment(&cfg, clients, &mut sched)
}

/// Runs the canary scenario. `regressed` publishes a version-2 graph that
/// is far heavier than version 1, so the mean-latency gate rolls it back;
/// otherwise version 2 matches version 1 and is promoted.
pub fn canary_report(regressed: bool) -> RunReport {
    let plan = DeploymentPlan::new().with_model(
        ModelDeployment::new("svc", service("svc", false))
            .with_version(service("svc", regressed), CANARY_PUBLISH),
    );
    let (cfg, store) = lifecycle_cfg(EngineConfig::default(), plan);
    let clients =
        vec![ClientSpec::new(service("svc", false), CANARY_BATCHES); CANARY_CLIENTS];
    let mut sched = fair(store, QUANTUM);
    run_experiment(&cfg, clients, &mut sched)
}

/// Headline numbers of one lifecycle run.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Clients that finished every batch.
    pub finished: usize,
    /// Version loads (initial loads plus reloads after eviction).
    pub loads: u64,
    /// Warm-up runs executed by freshly loaded versions.
    pub warmups: u64,
    /// Memory-pressure evictions of idle versions.
    pub evictions: u64,
    /// Versions unloaded (drained rollouts and evictions combined).
    pub unloads: u64,
    /// Drains started (version retirements that waited for in-flight runs).
    pub drains: u64,
    /// Canary candidates promoted.
    pub promotions: u64,
    /// Canary candidates rolled back.
    pub rollbacks: u64,
    /// Peak device memory in use, bytes.
    pub peak_bytes: u64,
    /// Makespan in seconds.
    pub makespan_s: f64,
}

/// Summarises a lifecycle run from its telemetry counters.
pub fn outcome(r: &RunReport) -> Outcome {
    let c = |name: &str| r.telemetry.counter(name).unwrap_or(0);
    Outcome {
        finished: r.finished_count(),
        loads: c("versions_loaded"),
        warmups: c("warmup_runs"),
        evictions: c("versions_evicted"),
        unloads: c("versions_unloaded"),
        drains: c("drains_started"),
        promotions: c("canary_promotions"),
        rollbacks: c("canary_rollbacks"),
        peak_bytes: r.peak_memory,
        makespan_s: r.makespan.as_secs_f64(),
    }
}

fn row(label: &str, clients: usize, o: &Outcome) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}/{}", o.finished, clients),
        format!("{}", o.loads),
        format!("{}", o.warmups),
        format!("{}", o.evictions),
        format!("{}", o.unloads),
        format!("{}", o.drains),
        format!("{}", o.promotions),
        format!("{}", o.rollbacks),
        format!("{:.1}", o.peak_bytes as f64 / (1 << 20) as f64),
        format!("{:.3}", o.makespan_s),
    ]
}

/// Formats one scenario's section for `olympctl lifecycle <name>`.
/// Returns `None` for unknown names.
pub fn scenario_report(name: &str) -> Option<String> {
    let s = scenario(name)?;
    let mut out = format!("scenario       : {} — {}\n", s.name, s.caption);
    match name {
        "churn" => {
            let o = outcome(&churn_report());
            out.push_str(&format!(
                "finished       : {}/{CHURN_SERVICES}\n\
                 loads          : {} ({} reloads after eviction)\n\
                 evictions      : {}\nwarm-up runs   : {}\n\
                 peak memory    : {:.1} MB (budget {:.1} MB)\n\
                 makespan       : {:.3} s\n",
                o.finished,
                o.loads,
                o.loads.saturating_sub(CHURN_SERVICES as u64),
                o.evictions,
                o.warmups,
                o.peak_bytes as f64 / (1 << 20) as f64,
                churn_budget() as f64 / (1 << 20) as f64,
                o.makespan_s,
            ));
        }
        "canary" => {
            for (label, regressed) in [("healthy", false), ("regressed", true)] {
                let o = outcome(&canary_report(regressed));
                out.push_str(&format!(
                    "--- {label} candidate ---\n\
                     finished       : {}/{CANARY_CLIENTS}\n\
                     promotions     : {}\nrollbacks      : {}\n\
                     drains         : {}\nmakespan       : {:.3} s\n",
                    o.finished, o.promotions, o.rollbacks, o.drains, o.makespan_s,
                ));
            }
        }
        _ => unreachable!("scenario() vetted the name"),
    }
    Some(out)
}

/// Runs the whole suite and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Lifecycle",
        "Versioned registry, memory-budgeted residency and canary rollouts",
    );
    let churn = outcome(&churn_report());
    let healthy = outcome(&canary_report(false));
    let regressed = outcome(&canary_report(true));
    let rows = vec![
        row("churn", CHURN_SERVICES, &churn),
        row("canary-healthy", CANARY_CLIENTS, &healthy),
        row("canary-regressed", CANARY_CLIENTS, &regressed),
    ];
    out.push_str(&render_table(
        &[
            "scenario", "finished", "loads", "warmups", "evict", "unload", "drain",
            "promote", "rollback", "peak (MB)", "makespan (s)",
        ],
        &rows,
    ));
    out.push('\n');

    let churn_pass = churn.finished == CHURN_SERVICES
        && churn.evictions >= 1
        && churn.loads > CHURN_SERVICES as u64
        && churn.peak_bytes <= churn_budget();
    out.push_str(&format!(
        "churn            {} — {} loads over {} services under a {}-set budget \
         ({} evictions, peak {:.1} of {:.1} MB)\n",
        if churn_pass { "PASS" } else { "FAIL" },
        churn.loads,
        CHURN_SERVICES,
        CHURN_RESIDENT,
        churn.evictions,
        churn.peak_bytes as f64 / (1 << 20) as f64,
        churn_budget() as f64 / (1 << 20) as f64,
    ));
    let healthy_pass =
        healthy.finished == CANARY_CLIENTS && healthy.promotions == 1 && healthy.rollbacks == 0;
    out.push_str(&format!(
        "canary-healthy   {} — candidate within {:.0}% of the incumbent is promoted \
         ({} promotion, {} rollbacks, {} drain)\n",
        if healthy_pass { "PASS" } else { "FAIL" },
        CANARY.tolerance * 100.0,
        healthy.promotions,
        healthy.rollbacks,
        healthy.drains,
    ));
    let regressed_pass = regressed.finished == CANARY_CLIENTS
        && regressed.rollbacks == 1
        && regressed.promotions == 0;
    out.push_str(&format!(
        "canary-regressed {} — heavier candidate breaches the latency gate and is \
         rolled back ({} rollback, {} promotions)\n",
        if regressed_pass { "PASS" } else { "FAIL" },
        regressed.rollbacks,
        regressed.promotions,
    ));
    out.push_str(&format!(
        "\nlifecycle band: {}. The manager never exceeds the device budget, keeps \
         every client servable through eviction churn, and gates version 2 on \
         observed run latency.\n",
        if churn_pass && healthy_pass && regressed_pass { "PASS" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_known() {
        for s in scenarios() {
            assert!(scenario(s.name).is_some());
        }
        assert!(scenario("no-such-scenario").is_none());
        assert!(scenario_report("no-such-scenario").is_none());
    }

    #[test]
    fn churn_evicts_and_reloads_under_budget() {
        let r = churn_report();
        let o = outcome(&r);
        assert!(r.all_finished(), "every churn client must finish");
        assert!(o.evictions >= 1, "memory pressure must evict ({o:?})");
        assert!(
            o.loads > CHURN_SERVICES as u64,
            "evicted services must reload on demand ({o:?})"
        );
        assert!(o.peak_bytes <= churn_budget(), "budget breached ({o:?})");
    }

    #[test]
    fn canary_gate_promotes_healthy_and_rolls_back_regressed() {
        let h = outcome(&canary_report(false));
        assert_eq!((h.promotions, h.rollbacks), (1, 0), "healthy: {h:?}");
        let r = outcome(&canary_report(true));
        assert_eq!((r.promotions, r.rollbacks), (0, 1), "regressed: {r:?}");
        assert_eq!(r.finished, CANARY_CLIENTS);
    }
}
