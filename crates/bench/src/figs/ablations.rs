//! Ablations over the design constants DESIGN.md calls out: how overhead
//! and fairness respond to the switch latency, the gang width (in-flight
//! kernel depth), and the driver's inter-kernel gap.

use crate::{banner, build_store_for, default_config, homogeneous_clients, DEFAULT_BATCH};
use crate::figs::fair;
use metrics::table::render_table;
use models::ModelKind;
use serving::{run_experiment, EngineConfig, FifoScheduler};
use simtime::SimDuration;

const Q: SimDuration = SimDuration::from_micros(1200);

/// Overhead of a two-instance Inception race under `cfg` at quantum `Q`.
fn pair_overhead(cfg: &EngineConfig) -> f64 {
    let quiet = cfg.quiescent();
    let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 2, 3);
    let base = run_experiment(&quiet, clients.clone(), &mut FifoScheduler::new());
    let store = build_store_for(&quiet, &clients);
    let mut sched = fair(store, Q);
    let oly = run_experiment(&quiet, clients, &mut sched);
    (oly.makespan.as_secs_f64() - base.makespan.as_secs_f64()) / base.makespan.as_secs_f64()
}

/// Sweep of the token hand-off latency.
pub fn switch_latency_sweep() -> Vec<(u64, f64)> {
    [10u64, 40, 80, 160, 320]
        .into_iter()
        .map(|us| {
            let mut cfg = default_config();
            cfg.switch_latency = SimDuration::from_micros(us);
            (us, pair_overhead(&cfg))
        })
        .collect()
}

/// Sweep of gang width: deeper gangs keep more kernels in flight, masking
/// more of the switch bubble (and enlarging overflow variance).
pub fn gang_width_sweep() -> Vec<(u32, f64)> {
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|g| {
            let mut cfg = default_config();
            cfg.max_gang = g;
            cfg.min_effective_gang = g;
            (g, pair_overhead(&cfg))
        })
        .collect()
}

/// Sweep of the device's inter-kernel gap: larger gaps depress utilization
/// for everyone (the baseline's sub-100% utilization knob).
pub fn kernel_gap_sweep() -> Vec<(u64, f64)> {
    [0u64, 3, 6, 12]
        .into_iter()
        .map(|gap| {
            let mut cfg = default_config();
            cfg.device = cfg.device.with_kernel_gap(SimDuration::from_micros(gap));
            let clients = homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 4, 2);
            let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
            (gap, report.utilization)
        })
        .collect()
}

/// Runs the ablations and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Ablations",
        "Design-constant sweeps: switch latency, gang width, kernel gap",
    );

    out.push_str("\nswitch latency vs two-instance overhead at Q = 1.2 ms:\n");
    let rows: Vec<Vec<String>> = switch_latency_sweep()
        .into_iter()
        .map(|(us, ov)| vec![format!("{us} us"), format!("{:.2}%", ov * 100.0)])
        .collect();
    out.push_str(&render_table(&["switch latency", "overhead"], &rows));

    out.push_str("\ngang width vs two-instance overhead (masking by in-flight kernels):\n");
    let rows: Vec<Vec<String>> = gang_width_sweep()
        .into_iter()
        .map(|(g, ov)| vec![format!("{g}"), format!("{:.2}%", ov * 100.0)])
        .collect();
    out.push_str(&render_table(&["gang width", "overhead"], &rows));

    out.push_str("\ninter-kernel gap vs baseline utilization:\n");
    let rows: Vec<Vec<String>> = kernel_gap_sweep()
        .into_iter()
        .map(|(gap, util)| vec![format!("{gap} us"), format!("{:.1}%", util * 100.0)])
        .collect();
    out.push_str(&render_table(&["kernel gap", "utilization"], &rows));

    out.push_str(
        "\nExpected: overhead grows with switch latency and falls with gang width \
         (overflow masks the bubble); utilization falls as the per-launch gap grows.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn overhead_monotone_in_switch_latency() {
        let sweep = super::switch_latency_sweep();
        assert!(
            sweep.windows(2).all(|w| w[0].1 <= w[1].1 + 0.004),
            "sweep {sweep:?}"
        );
        assert!(sweep.last().expect("non-empty").1 > sweep[0].1);
    }

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn utilization_falls_with_kernel_gap() {
        let sweep = super::kernel_gap_sweep();
        assert!(sweep[0].1 > sweep.last().expect("non-empty").1, "sweep {sweep:?}");
    }
}
