//! Figure 6: overhead of TensorFlow's online cost profiler for the seven
//! DNNs.
//!
//! Running the CUPTI-based cost profiler inline inflates execution by
//! 21–29% depending on the model — the reason Olympian profiles *offline*.

use crate::{banner, default_config};
use metrics::table::render_table;
use models::ModelKind;
use olympian::Profiler;

/// Per-model inflation factor: a stable draw in the paper's measured
/// 21–29% band.
pub fn inflation_for(kind: ModelKind) -> f64 {
    let mut h: u64 = 0x9E37_79B9;
    for b in kind.name().bytes() {
        h = h.wrapping_mul(31).wrapping_add(b as u64);
    }
    // The band is slightly above the paper's 21-29% because the inter-kernel
    // driver gap is not inflated by instrumentation, diluting the measured
    // end-to-end overhead by a few percent.
    0.225 + (h % 1000) as f64 / 1000.0 * 0.085
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut out = banner(
        "Figure 6",
        "Online cost-profiler overhead (profiler off vs on), 7 DNNs",
    );
    let cfg = default_config();
    let profiler = Profiler::new(&cfg);
    let mut rows = Vec::new();
    for kind in ModelKind::ALL {
        let model = models::load(kind, kind.reference_batch()).expect("zoo model");
        let inflation = inflation_for(kind);
        let (off, on) = profiler.online_profiler_cost(&model, inflation);
        rows.push(vec![
            kind.name().to_string(),
            format!("{}", kind.reference_batch()),
            format!("{off:.3}"),
            format!("{on:.3}"),
            format!("{:.1}%", (on / off - 1.0) * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &["model", "batch", "profiler off (s)", "profiler on (s)", "overhead"],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: the online profiler inflates single-job completion by 21-29%, \
         which is why Olympian moves profiling offline.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflations_are_in_paper_band() {
        for kind in ModelKind::ALL {
            let f = inflation_for(kind);
            assert!((0.225..=0.31).contains(&f), "{kind}: {f}");
        }
    }

    #[test]
    #[ignore = "full-scale experiment; run with `cargo test --release -- --ignored`"]
    fn reports_each_model() {
        let out = run();
        for kind in ModelKind::ALL {
            assert!(out.contains(kind.name()));
        }
    }
}
