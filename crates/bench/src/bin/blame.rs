//! Renders the latency-blame report. See `bench::figs::blame`.

fn main() {
    let out = bench::figs::blame::run();
    print!("{out}");
    let path = bench::save_result("blame.txt", &out);
    eprintln!("(saved to {})", path.display());
}
