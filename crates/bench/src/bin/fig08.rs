//! Regenerates the paper's fig08 output. See `bench::figs::fig08`.

fn main() {
    let out = bench::figs::fig08::run();
    print!("{out}");
    let path = bench::save_result("fig08.txt", &out);
    eprintln!("(saved to {})", path.display());
}
