//! Renders the token-ownership timeline. See `bench::figs::timeline`.

fn main() {
    let out = bench::figs::timeline::run();
    print!("{out}");
    let path = bench::save_result("timeline.txt", &out);
    eprintln!("(saved to {})", path.display());
}
