//! `olympctl` — a small operator CLI over the Olympian stack.
//!
//! ```text
//! olympctl models
//! olympctl export-model --model inception-v4 --batch 100 --out model.json
//! olympctl inspect --model vgg --batch 120 [--dot graph.dot]
//! olympctl profile --model inception-v4 --batch 100 [--out profiles.json]
//! olympctl curve   --model resnet-152 --batch 100 [--tolerance 0.025]
//! olympctl run     --model inception-v4 --batch 100 --clients 10 --batches 10
//!                  --policy fair|weighted|priority|drr|lottery|baseline
//!                  [--quantum-us 1200] [--gpus 1] [--seed 1]
//!                  [--deadline-ms 500] [--trace 40]
//! olympctl bench   [--shards N] [--gpus 3] [--clients 12] [--batches 4]
//!                  [--model <name> --batch <n>] [--policy fair|baseline]
//!                  [--seed 1] [--switch-us 1000]
//! olympctl trace   <experiment> [--out trace.json] [--mode sampled|full]
//! olympctl metrics <experiment> [--interval-us N] [--out telemetry.jsonl]
//!                  [--prom metrics.prom] [--store <dir>]
//! olympctl blame   <experiment> [--vs <experiment>] [--out blame.json]
//!                  [--trace phases.json]
//! olympctl chaos   <scenario>   [--scheduler olympian|fifo|both]
//! olympctl control <scenario>   [--policy edf|laxity] [--out report.txt]
//! olympctl lifecycle <scenario>
//! olympctl fleet   <scenario>   [--out report.txt]
//! olympctl top     <experiment> [--interval-us N] [--fps N] [--rows N]
//! olympctl query   <expr> [--dir runs] [--run A] [--vs B] [--dash out.html]
//! olympctl import-bench <BENCH.json> [--dir runs] [--as seed]
//! ```
//!
//! `trace` runs a named experiment (see `bench::traced::traced_registry`)
//! with capture enabled and writes Chrome trace-event JSON loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! `metrics` runs a named experiment (see
//! `bench::telemetered::telemetered_registry`) with live telemetry enabled
//! at the given virtual-time snapshot cadence and writes the JSON-lines
//! time series; `--prom` additionally writes the final registry state as
//! Prometheus text exposition.
//!
//! `bench` measures the device-group-sharded runner: it runs the same
//! multi-GPU experiment through `run_sharded_experiment` with one worker
//! thread and with `--shards N` (default: all cores), verifies the two
//! reports are byte-identical — the shard-count invariance contract — and
//! prints the throughput of each plus the parallel speedup.
//!
//! `blame` runs a named telemetered experiment with tracing on and prints
//! its latency attribution: the per-phase decomposition of every run (the
//! phases tile each span exactly), the critical path of the makespan, and
//! — with `--vs` — a p99 blame diff against a baseline experiment. `--out`
//! writes the machine-readable `blame/v1` JSON document; `--trace` writes
//! Chrome trace-event JSON with the phase slices and the highlighted
//! critical path on their own process.
//!
//! `chaos` runs a named fault-injection scenario (see
//! `bench::figs::chaos::scenarios`) with the full recovery stack on —
//! retries with backoff, circuit breaking and the token-hold watchdog —
//! against its fault-free twin, and prints the resilience comparison.
//!
//! `control` runs a closed-loop control-plane scenario (see
//! `bench::figs::closedloop`): the `drifted` scenario replays the same
//! regressed-device workload open-loop (telemetry only) and closed-loop
//! (deadline-aware hand-off, laxity cancellation, in-run recalibration and
//! the degradation ladder) and prints the SLO comparison, ending with the
//! machine-readable `summary:` line CI validates.
//!
//! `fleet` runs a named fleet-orchestration scenario (see
//! `bench::figs::fleet::scenarios`): the same Zipf-skewed arrival trace
//! through static hash placement and through cost-aware routing plus the
//! min-cost-flow reconfiguration loop, printing the tail-latency
//! comparison and the machine-readable `summary:` line CI validates.
//!
//! `lifecycle` runs a named model-lifecycle scenario (see
//! `bench::figs::lifecycle::scenarios`): `churn` exercises
//! memory-budgeted eviction and reload of versioned models, `canary`
//! rolls out a version 2 both healthy (promoted) and regressed (rolled
//! back).
//!
//! `top` replays a telemetered experiment as a live-refreshing ASCII
//! dashboard: the run executes once (virtual time), then its time-series
//! store is played back frame by frame — per-series sparklines growing
//! toward each snapshot boundary, with the alert feed underneath.
//!
//! `query` evaluates a `tsdb` expression against runs stored in the
//! catalog directory (`metrics --store <dir>` or `import-bench` fill
//! it): `p99{client=*}` for nearest-rank latency quantiles,
//! `rate:counter` for event rates, any metric name for its latest value.
//! `--vs <run>` joins a baseline run into a delta report — regression
//! checks over stored history alone, no re-simulation. `--dash` writes
//! the self-contained HTML dashboard (per-series SVG sparklines,
//! heatmaps, alert markers and — with `--vs` — the delta table).
//!
//! `import-bench` flattens a `BENCH_engine.json`-style document into the
//! catalog (metric `section.key`, deeper path components as a `case`
//! label), so perf baselines are queryable: `olympctl query
//! 'engine.events_per_s' --run seed --vs seed`.

use olympian::{
    DeficitRoundRobin, Lottery, MultiGpuScheduler, OlympianScheduler, Policy, Priority,
    Profiler, ProfileStore, RoundRobin, WeightedFair,
};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  olympctl models\n  olympctl profile --model <name> --batch <n> [--out <file>]\n  \
         olympctl curve --model <name> --batch <n> [--tolerance <frac>]\n  \
         olympctl run --model <name> --batch <n> --clients <n> [--batches <n>]\n               \
         --policy <fair|weighted|priority|drr|lottery|baseline>\n               \
         [--quantum-us <n>] [--gpus <n>] [--seed <n>]\n  \
         olympctl bench [--shards <n>] [--gpus <n>] [--clients <n>] [--batches <n>]\n               \
         [--model <name> --batch <n>] [--policy <fair|baseline>] [--seed <n>]\n  \
         olympctl trace <experiment> [--out <trace.json>] [--mode sampled|full]\n  \
         olympctl metrics <experiment> [--interval-us <n>] [--out <telemetry.jsonl>]\n                   \
         [--prom <metrics.prom>] [--store <dir>]\n  \
         olympctl blame <experiment> [--vs <experiment>] [--out <blame.json>]\n                 \
         [--trace <phases.json>]\n  \
         olympctl chaos <scenario> [--scheduler <olympian|fifo|both>]\n  \
         olympctl control <scenario> [--policy <edf|laxity>] [--out <report.txt>]\n  \
         olympctl lifecycle <scenario>\n  \
         olympctl fleet <scenario> [--out <report.txt>]\n  \
         olympctl top <experiment> [--interval-us <n>] [--fps <n>] [--rows <n>]\n  \
         olympctl query <expr> [--dir <runs>] [--run <a>] [--vs <b>] [--dash <out.html>]\n  \
         olympctl import-bench <BENCH.json> [--dir <runs>] [--as <seed>]\n  \
         any command also accepts --jobs <n> (worker threads for parallel\n  \
         sweeps; default: all cores, or OLYMPIAN_JOBS)"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn lookup_model(name: &str) -> Option<models::ModelKind> {
    models::ModelKind::ALL.into_iter().find(|k| k.name() == name)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn get_num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T)
    -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_models() -> Result<(), String> {
    println!("{:<14} {:>9} {:>7} {:>10} {:>12} {:>12}",
        "model", "ref batch", "nodes", "gpu nodes", "weights (MB)", "runtime (s)");
    for kind in models::ModelKind::ALL {
        let cal = models::spec(kind);
        println!(
            "{:<14} {:>9} {:>7} {:>10} {:>12} {:>12.2}",
            kind.name(),
            cal.reference_batch,
            cal.total_nodes,
            cal.gpu_nodes,
            cal.weights_mb,
            cal.runtime_s
        );
    }
    Ok(())
}

fn cmd_export_model(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = get(flags, "model")?;
    let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
    let batch: u64 = get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
    let path = get(flags, "out")?;
    let model = models::load(kind, batch).map_err(|e| e.to_string())?;
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    models::servable::save(&model, file).map_err(|e| e.to_string())?;
    println!(
        "exported {} @ batch {} ({} nodes) to {path}",
        model.name(),
        model.batch(),
        model.graph().node_count()
    );
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = get(flags, "model")?;
    let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
    let batch: u64 = get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
    let model = models::load(kind, batch).map_err(|e| e.to_string())?;
    let g = model.graph();
    println!("model {} @ batch {batch}", model.name());
    println!("  nodes          : {} ({} gpu / {} cpu)", g.node_count(), g.gpu_node_count(), g.cpu_node_count());
    println!("  critical path  : {} nodes", g.critical_path_len());
    println!("  gpu busy (ex.) : {}", g.total_gpu_time());
    println!("  cpu work       : {}", g.total_cpu_time());
    println!("  memory         : {} MB weights + {} MB activations",
        model.weights_bytes() / (1 << 20), model.activation_bytes() / (1 << 20));
    println!("  op histogram (by GPU time):");
    for (op, count, total) in g.op_histogram() {
        println!("    {op:<15} x{count:<6} {total}");
    }
    if let Some(path) = flags.get("dot") {
        std::fs::write(path, g.to_dot(model.name())).map_err(|e| e.to_string())?;
        println!("wrote DOT graph to {path}");
    }
    Ok(())
}

fn cmd_profile(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = get(flags, "model")?;
    let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
    let batch: u64 = get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
    let model = models::load(kind, batch).map_err(|e| e.to_string())?;
    let cfg = EngineConfig::default();
    let profile = Profiler::new(&cfg).profile(&model);
    println!("model         : {}", profile.model);
    println!("batch         : {}", profile.batch);
    println!("total cost C  : {} units", profile.total_cost);
    println!("GPU duration D: {}", profile.gpu_duration);
    println!("rate C/D      : {:.3} units/ns", profile.rate());
    println!("T at Q=1.2ms  : {} units", profile.threshold(SimDuration::from_micros(1200)));
    if let Some(path) = flags.get("out") {
        let mut store = ProfileStore::new();
        store.insert(profile);
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        store.save(file).map_err(|e| e.to_string())?;
        println!("saved profile store to {path}");
    }
    Ok(())
}

fn cmd_curve(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = get(flags, "model")?;
    let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
    let batch: u64 = get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
    let tolerance: f64 = get_num(flags, "tolerance", 0.025)?;
    let model = models::load(kind, batch).map_err(|e| e.to_string())?;
    let cfg = EngineConfig::default();
    let grid: Vec<SimDuration> = [100u64, 200, 400, 800, 1_200, 1_600, 2_400, 4_000, 6_000, 10_000]
        .into_iter()
        .map(SimDuration::from_micros)
        .collect();
    let curve = Profiler::new(&cfg).with_pair_batches(3).overhead_q_curve(&model, &grid);
    println!("Overhead-Q curve for {name} @ batch {batch}:");
    for (q, ov) in &curve.points {
        println!("  Q = {:>8}  overhead = {:>6.2}%", q.to_string(), ov * 100.0);
    }
    match curve.q_at_tolerance(tolerance) {
        Some(q) => println!("Q for {:.2}% tolerance: {}", tolerance * 100.0, q),
        None => println!("no measured Q meets {:.2}% tolerance", tolerance * 100.0),
    }
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = get(flags, "model")?;
    let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
    let batch: u64 = get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
    let clients: usize = get(flags, "clients")?.parse().map_err(|_| "--clients: not a number")?;
    let batches: u32 = get_num(flags, "batches", 10)?;
    let quantum_us: u64 = get_num(flags, "quantum-us", 1200)?;
    let gpus: usize = get_num(flags, "gpus", 1)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    let deadline_ms: u64 = get_num(flags, "deadline-ms", 0)?;
    let trace_lines: usize = get_num(flags, "trace", 0)?;
    let policy = get(flags, "policy")?;

    let model = models::load(kind, batch).map_err(|e| e.to_string())?;
    let mut cfg = EngineConfig::default().with_device_count(gpus).with_seed(seed);
    if trace_lines > 0 {
        cfg.trace = serving::TraceConfig::sampled();
    }
    let specs: Vec<ClientSpec> = (0..clients)
        .map(|i| {
            let mut spec = ClientSpec::new(model.clone(), batches)
                .with_weight(if i < clients / 2 { 2 } else { 1 })
                .with_priority((clients - i) as u32);
            if deadline_ms > 0 {
                spec = spec.with_run_deadline(SimDuration::from_millis(deadline_ms));
            }
            spec
        })
        .collect();

    let q = SimDuration::from_micros(quantum_us);
    let report = if policy == "baseline" {
        run_experiment(&cfg, specs, &mut FifoScheduler::new())
    } else {
        let mut store = ProfileStore::new();
        store.insert(Profiler::new(&cfg).profile(&model));
        let store = Arc::new(store);
        let factory: Box<dyn Fn() -> Box<dyn Policy> + Send> = match policy {
            "fair" => Box::new(|| Box::new(RoundRobin::new())),
            "weighted" => Box::new(|| Box::new(WeightedFair::new())),
            "priority" => Box::new(|| Box::new(Priority::new())),
            "drr" => Box::new(|| Box::new(DeficitRoundRobin::new())),
            "lottery" => Box::new(move || Box::new(Lottery::new(seed))),
            other => return Err(format!("unknown policy {other:?}")),
        };
        if gpus > 1 {
            let mut sched = MultiGpuScheduler::new(store, factory, q);
            run_experiment(&cfg, specs, &mut sched)
        } else {
            let mut sched = OlympianScheduler::new(store, factory(), q);
            let report = run_experiment(&cfg, specs, &mut sched);
            print_run(&report, &sched);
            print_trace(&report, trace_lines);
            return Ok(());
        }
    };
    print_report(&report);
    print_trace(&report, trace_lines);
    Ok(())
}

fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let shards: u32 = get_num(flags, "shards", simpar::max_jobs() as u32)?;
    if shards == 0 {
        return Err("--shards: must be positive".into());
    }
    let gpus: usize = get_num(flags, "gpus", 3)?;
    let clients: usize = get_num(flags, "clients", 12)?;
    let batches: u32 = get_num(flags, "batches", 4)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    // The token hand-off latency doubles as the sync-window length, so it
    // sets the parallel grain; default to the millisecond large-model
    // regime rather than the engine's 80 us default.
    let switch_us: u64 = get_num(flags, "switch-us", 1000)?;
    let model = match flags.get("model") {
        Some(name) => {
            let kind = lookup_model(name).ok_or_else(|| format!("unknown model {name:?}"))?;
            let batch: u64 =
                get(flags, "batch")?.parse().map_err(|_| "--batch: not a number")?;
            models::load(kind, batch).map_err(|e| e.to_string())?
        }
        None => models::mini::small(4),
    };
    let policy = flags.get("policy").map(String::as_str).unwrap_or("fair");
    let mut cfg = EngineConfig::default().with_device_count(gpus).with_seed(seed);
    cfg.switch_latency = SimDuration::from_micros(switch_us.max(1));
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let q = SimDuration::from_micros(1200);
    let factory: Box<dyn Fn(usize) -> Box<dyn serving::Scheduler> + Sync> = match policy {
        "baseline" => Box::new(|_g| Box::new(FifoScheduler::new()) as Box<dyn serving::Scheduler>),
        "fair" => Box::new(move |_g| {
            Box::new(OlympianScheduler::new(
                Arc::clone(&store),
                Box::new(RoundRobin::new()),
                q,
            )) as Box<dyn serving::Scheduler>
        }),
        other => return Err(format!("--policy: expected fair|baseline, got {other:?}")),
    };
    let specs = || -> Vec<ClientSpec> {
        (0..clients).map(|_| ClientSpec::new(model.clone(), batches)).collect()
    };

    let measure = |n: u32| {
        let mut c = cfg.clone();
        c.shards = n;
        let probe = serving::run_sharded_experiment(&c, specs(), &factory);
        let m = bench::harness::run(&format!("bench/shards={n}"), || {
            std::hint::black_box(serving::run_sharded_experiment(&c, specs(), &factory))
        });
        (probe, m.per_second())
    };
    let (base_report, base_rps) = measure(1);
    let (shard_report, shard_rps) = measure(shards);
    let identical = format!("{base_report:?}") == format!("{shard_report:?}");
    let events = base_report.event_count as f64;

    println!("devices        : {gpus} ({} groups)", gpus);
    println!("clients        : {clients} x {batches} batches of {}", model.name());
    println!("events per run : {}", base_report.event_count);
    println!("shards=1       : {:.0} events/s", base_rps * events);
    println!("shards={shards:<7}: {:.0} events/s", shard_rps * events);
    println!("speedup        : {:.2}x", shard_rps / base_rps.max(1e-12));
    println!(
        "reports        : {}",
        if identical { "byte-identical across shard counts" } else { "DIVERGED" }
    );
    if !identical {
        return Err("sharded report diverged between shards=1 and the requested count".into());
    }
    Ok(())
}

fn print_trace(report: &serving::RunReport, lines: usize) {
    if lines > 0 {
        println!("--- trace (first {lines} events) ---");
        print!("{}", serving::trace::render_trace(&report.trace, lines));
    }
}

fn cmd_trace(experiment: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let tc = match flags.get("mode").map(String::as_str).unwrap_or("sampled") {
        "sampled" => serving::TraceConfig::sampled(),
        "full" => serving::TraceConfig::full(),
        other => return Err(format!("--mode: expected sampled|full, got {other:?}")),
    };
    let out = flags.get("out").map(String::as_str).unwrap_or("trace.json");
    let Some(f) = bench::traced::traced_experiment(experiment) else {
        let names: Vec<&str> = bench::traced::traced_registry()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        return Err(format!(
            "unknown traced experiment {experiment:?}; available: {}",
            names.join(", ")
        ));
    };
    let report = f(tc);
    std::fs::write(out, report.chrome_trace_json()).map_err(|e| e.to_string())?;
    let cfg = EngineConfig::default();
    let stats =
        trace::TraceStats::from_trace(&report.trace, cfg.switch_latency + cfg.launch_overhead);
    println!("experiment     : {experiment}");
    println!("scheduler      : {}", report.scheduler_name);
    println!("makespan       : {:.3} s", report.makespan.as_secs_f64());
    println!(
        "events         : {} captured, {} dropped",
        report.trace.len(),
        report.trace.dropped
    );
    print_track_summary(&report.trace);
    println!("token switches : {}", stats.token_switches);
    if stats.quantum.count > 0 {
        println!(
            "quantum (us)   : mean {:.0}, p50 {:.0}, p90 {:.0} over {} quanta",
            stats.quantum.mean_us, stats.quantum.p50_us, stats.quantum.p90_us, stats.quantum.count
        );
    }
    if let Some(frac) = stats.overhead_fraction() {
        println!(
            "sched overhead : {:.0} us = {:.3}% of makespan",
            stats.scheduler_overhead_us.unwrap_or(0.0),
            frac * 100.0
        );
    }
    println!("wrote {out} — open it at https://ui.perfetto.dev or chrome://tracing");
    Ok(())
}

/// Per-track event counts: one line per client track (ascending id) plus
/// the ownerless scheduler track, so a truncated or lopsided capture is
/// visible before anyone opens the export in Perfetto.
fn print_track_summary(trace: &serving::trace::Trace) {
    let mut per_client: Vec<u64> = Vec::new();
    let mut scheduler = 0u64;
    for e in &trace.events {
        match e.kind.client() {
            Some(c) => {
                if per_client.len() <= c as usize {
                    per_client.resize(c as usize + 1, 0);
                }
                per_client[c as usize] += 1;
            }
            None => scheduler += 1,
        }
    }
    println!("track summary  :");
    for (c, n) in per_client.iter().enumerate() {
        println!("  {:<13}: {n} events", format!("client{c}"));
    }
    println!("  {:<13}: {scheduler} events", "scheduler");
}

fn cmd_blame(experiment: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use serving::attrib;
    let known = |name: &str| bench::telemetered::telemetered_experiment(name).is_some();
    let names = || -> String {
        bench::telemetered::telemetered_registry()
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !known(experiment) {
        return Err(format!(
            "unknown telemetered experiment {experiment:?}; available: {}",
            names()
        ));
    }
    if let Some(base) = flags.get("vs") {
        if !known(base) {
            return Err(format!(
                "unknown baseline experiment {base:?}; available: {}",
                names()
            ));
        }
    }
    let (report, attr) = bench::figs::blame::attribute(experiment);
    let cp = attrib::critical_path(&attr);
    let base = flags
        .get("vs")
        .map(|b| (b.as_str(), bench::figs::blame::attribute(b).1));
    let diffed = base.as_ref().map(|(name, b)| (*name, attrib::diff(&attr, b)));
    let baseline = diffed.as_ref().map(|(n, d)| (*n, d));
    print!("{}", attrib::render_text(experiment, &attr, &cp, baseline));
    if let Some(out) = flags.get("out") {
        let doc = attrib::to_json(experiment, &attr, &cp, baseline);
        let mut text = String::new();
        doc.write(&mut text);
        std::fs::write(out, text).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    if let Some(path) = flags.get("trace") {
        let json = report.chrome_trace_json_with_phases(&attr, &cp);
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!(
            "wrote {path} (phase slices + critical path on the \"phases\" \
             process) — open it at https://ui.perfetto.dev"
        );
    }
    Ok(())
}

fn cmd_metrics(experiment: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let interval_us: u64 = get_num(flags, "interval-us", 100)?;
    if interval_us == 0 {
        return Err("--interval-us: must be positive".into());
    }
    let out = flags.get("out").map(String::as_str).unwrap_or("telemetry.jsonl");
    let Some(f) = bench::telemetered::telemetered_experiment(experiment) else {
        let names: Vec<&str> = bench::telemetered::telemetered_registry()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        return Err(format!(
            "unknown telemetered experiment {experiment:?}; available: {}",
            names.join(", ")
        ));
    };
    let report = f(SimDuration::from_micros(interval_us));
    std::fs::write(out, report.telemetry_jsonl()).map_err(|e| e.to_string())?;
    if let Some(prom) = flags.get("prom") {
        std::fs::write(prom, report.prometheus_text()).map_err(|e| e.to_string())?;
    }
    if let Some(dir) = flags.get("store") {
        let catalog = serving::tsdb::RunCatalog::open(dir).map_err(|e| e.to_string())?;
        let store = report.tsdb();
        let path = catalog.store_run(experiment, &store).map_err(|e| e.to_string())?;
        println!(
            "stored run {experiment:?} ({} series, {} points) at {}",
            store.series_count(),
            store.total_points(),
            path.display()
        );
    }
    let t = &report.telemetry;
    println!("experiment     : {experiment}");
    println!("scheduler      : {}", report.scheduler_name);
    println!("makespan       : {:.3} s", report.makespan.as_secs_f64());
    println!(
        "snapshots      : {} (every {}, virtual time)",
        t.snapshots.len(),
        t.interval
    );
    for name in ["runs_completed", "token_switches", "slo_breaches"] {
        if let Some(v) = t.counter(name) {
            println!("{name:<15}: {v}");
        }
    }
    if let Some(q) = t.hist("quantum_us") {
        println!(
            "quantum (us)   : p50 {:.0}, p99 {:.0} over {} quanta",
            q.p50, q.p99, q.count
        );
    }
    let drift = t.alerts.iter().filter(|a| a.kind() == "drift").count();
    let burn = t.alerts.len() - drift;
    println!("alerts         : {} ({drift} drift, {burn} slo-burn)", t.alerts.len());
    println!("wrote {out}");
    if let Some(prom) = flags.get("prom") {
        println!("wrote {prom}");
    }
    Ok(())
}

fn cmd_query(expr_text: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use serving::tsdb;
    let expr = tsdb::Expr::parse(expr_text)?;
    let dir = flags.get("dir").map(String::as_str).unwrap_or("runs");
    let catalog = tsdb::RunCatalog::open(dir).map_err(|e| e.to_string())?;
    let runs = catalog.runs();
    if runs.is_empty() {
        return Err(format!(
            "no stored runs under {dir:?}; fill it with `olympctl metrics <experiment> \
             --store {dir}` or `olympctl import-bench BENCH_engine.json --dir {dir}`"
        ));
    }
    let vs = flags.get("vs").map(String::as_str);
    let run = match flags.get("run") {
        Some(r) => r.clone(),
        None => catalog
            .latest(vs)
            .ok_or_else(|| format!("no stored run other than the baseline under {dir:?}"))?,
    };
    let store = catalog.load_run(&run)?;
    let unit = expr.unit();
    // Quantiles over the run-latency stream evaluate in ns; print µs.
    let show = |v: f64| -> String {
        match unit {
            "us" => format!("{:.1} us", v / 1_000.0),
            "/s" => format!("{v:.0} /s"),
            _ => format!("{v}"),
        }
    };

    println!("expr           : {expr_text}");
    println!("catalog        : {dir} ({} runs)", runs.len());
    println!("run            : {run}");
    let base = match vs {
        Some(b) => {
            println!("baseline       : {b}");
            Some((b, catalog.load_run(b)?))
        }
        None => None,
    };

    match &base {
        None => {
            let rows = tsdb::evaluate(&store, &expr);
            if rows.is_empty() {
                return Err(format!("expression matched no series in run {run:?}"));
            }
            let w = rows.iter().map(|r| r.key.len()).max().unwrap_or(0);
            for r in &rows {
                println!("{:<w$} : {}", r.key, show(r.value));
            }
        }
        Some((bname, bstore)) => {
            let rows = tsdb::diff_rows(&store, bstore, &expr);
            if rows.is_empty() {
                return Err(format!(
                    "expression matched no series in {run:?} or {bname:?}"
                ));
            }
            let w = rows.iter().map(|r| r.key.len()).max().unwrap_or(0);
            let mut delta_sum = 0.0f64;
            let mut joined = 0usize;
            for r in &rows {
                let t = r.target.map_or("·".to_string(), show);
                let b = r.base.map_or("·".to_string(), show);
                match r.delta() {
                    Some(d) => {
                        delta_sum += d;
                        joined += 1;
                        let d_txt = match unit {
                            "us" => format!("{:+.1} us", d / 1_000.0),
                            _ => format!("{d:+}"),
                        };
                        println!("{:<w$} : {t} (baseline {b}, delta {d_txt})", r.key);
                    }
                    None => println!("{:<w$} : {t} (baseline {b})", r.key),
                }
            }
            if joined > 0 {
                let total = match unit {
                    "us" => format!("{:+.1} us", delta_sum / 1_000.0),
                    _ => format!("{delta_sum:+}"),
                };
                println!("total delta    : {total} over {joined} series");
            }
        }
    }

    if let Some(path) = flags.get("dash") {
        let html = tsdb::render_dashboard(
            &run,
            &store,
            base.as_ref().map(|(n, s)| (*n, s)),
        );
        std::fs::write(path, html).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_import_bench(path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use serving::tsdb;
    let name = flags.get("as").map(String::as_str).unwrap_or("seed");
    let dir = flags.get("dir").map(String::as_str).unwrap_or("runs");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = microjson::Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let store = tsdb::catalog::import_bench(&doc);
    if store.series_count() == 0 {
        return Err(format!("{path}: no numeric sections to import"));
    }
    let catalog = tsdb::RunCatalog::open(dir).map_err(|e| e.to_string())?;
    let stored = catalog.store_run(name, &store).map_err(|e| e.to_string())?;
    println!(
        "imported {path} as run {name:?}: {} series at {}",
        store.series_count(),
        stored.display()
    );
    let keys: Vec<String> =
        store.sorted_series().iter().take(4).map(|s| store.series_key(s)).collect();
    println!("sample series  : {}", keys.join(", "));
    Ok(())
}

fn cmd_top(experiment: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use serving::tsdb;
    let interval_us: u64 = get_num(flags, "interval-us", 100)?;
    if interval_us == 0 {
        return Err("--interval-us: must be positive".into());
    }
    let fps: u64 = get_num(flags, "fps", 12)?;
    let rows: usize = get_num(flags, "rows", 20)?;
    let Some(f) = bench::telemetered::telemetered_experiment(experiment) else {
        let names: Vec<&str> = bench::telemetered::telemetered_registry()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        return Err(format!(
            "unknown telemetered experiment {experiment:?}; available: {}",
            names.join(", ")
        ));
    };
    let report = f(SimDuration::from_micros(interval_us));
    let store = report.tsdb();

    // Pre-extract per-series points once; frames then just slice by time.
    let series: Vec<(String, Vec<tsdb::Point>)> = store
        .sorted_series()
        .into_iter()
        .map(|s| (store.series_key(s), s.raw().copied().collect()))
        .take(rows)
        .collect();
    let boundaries: Vec<u64> =
        report.telemetry.snapshots.iter().map(|s| s.at.as_nanos()).collect();
    if boundaries.is_empty() {
        return Err("the run produced no telemetry snapshots".into());
    }
    // Cap the replay at ~120 frames however long the run was.
    let stride = boundaries.len().div_ceil(120).max(1);
    const WIDTH: usize = 48;
    let key_w = series.iter().map(|(k, _)| k.len()).max().unwrap_or(0).min(44);
    for (i, &t) in boundaries.iter().enumerate() {
        let last_frame = i + 1 == boundaries.len();
        if i % stride != 0 && !last_frame {
            continue;
        }
        // Clear screen + home; plain ANSI so any terminal replays it.
        print!("\x1b[2J\x1b[H");
        println!(
            "olympctl top — {experiment} @ {:.3} ms (snapshot {}/{})",
            t as f64 / 1e6,
            i + 1,
            boundaries.len()
        );
        for (key, pts) in &series {
            let upto = pts.partition_point(|p| p.at_ns <= t);
            let visible = &pts[..upto];
            let window = &visible[visible.len().saturating_sub(WIDTH)..];
            let values: Vec<f64> = window.iter().map(|p| p.value).collect();
            let spark = metrics::table::render_sparkline(&values);
            let last = window.last().map_or(String::from("·"), |p| format!("{}", p.value));
            println!("{key:<key_w$} |{spark:<WIDTH$}| {last}");
        }
        let fired: Vec<&tsdb::AlertMark> =
            store.alerts().iter().filter(|a| a.at_ns <= t).collect();
        println!("alerts         : {}", fired.len());
        for a in fired.iter().rev().take(3) {
            println!("  [{:.3} ms] {} — {}", a.at_ns as f64 / 1e6, a.kind, a.detail);
        }
        if !last_frame && fps > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1000 / fps.max(1)));
        }
    }
    println!("\nreplay done — {} snapshots, {} alerts", boundaries.len(), store.alerts().len());
    Ok(())
}

fn cmd_chaos(name: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let Some(s) = bench::figs::chaos::scenario(name) else {
        let names: Vec<&str> = bench::figs::chaos::scenarios()
            .iter()
            .map(|s| s.name)
            .collect();
        return Err(format!(
            "unknown chaos scenario {name:?}; available: {}",
            names.join(", ")
        ));
    };
    let which = flags.get("scheduler").map(String::as_str).unwrap_or("olympian");
    let schedulers: Vec<bool> = match which {
        "olympian" => vec![true],
        "fifo" => vec![false],
        "both" => vec![false, true],
        other => return Err(format!("--scheduler: expected olympian|fifo|both, got {other:?}")),
    };
    println!("scenario       : {name} — {}", s.caption);
    for olympian in schedulers {
        let base = bench::figs::chaos::chaos_report(None, olympian);
        let faulted = bench::figs::chaos::chaos_report(Some(&s.plan), olympian);
        let b = bench::figs::chaos::outcome(&base);
        let f = bench::figs::chaos::outcome(&faulted);
        println!("--- {} ---", faulted.scheduler_name);
        println!(
            "fault-free     : Jain {:.4}, p99 {:.0} us, makespan {:.3} s",
            b.jain, b.p99_us, b.makespan_s
        );
        println!(
            "faulted        : Jain {:.4} (ratio {:.3}), p99 {:.0} us (ratio {:.2}), makespan {:.3} s",
            f.jain,
            if b.jain > 0.0 { f.jain / b.jain } else { 0.0 },
            f.p99_us,
            if b.p99_us > 0.0 { f.p99_us / b.p99_us } else { 0.0 },
            f.makespan_s
        );
        println!(
            "recovery       : {} faults, {} retries, {} watchdog revocations, {} shed",
            f.faults, f.retries, f.watchdog, f.shed
        );
        for c in &faulted.clients {
            if !c.is_finished() {
                println!("  client {:>3}: {}", c.client.0, c.outcome);
            }
        }
    }
    Ok(())
}

fn cmd_control(name: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let policy_s = flags.get("policy").map(String::as_str).unwrap_or("edf");
    let policy = controlplane::ControlPolicy::parse(policy_s)
        .ok_or_else(|| format!("--policy: expected edf|laxity, got {policy_s:?}"))?;
    let report = match name {
        "drifted" => bench::figs::closedloop::run_with_policy(policy),
        other => {
            return Err(format!(
                "unknown control scenario {other:?}; available: drifted"
            ))
        }
    };
    print!("{report}");
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &report).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_lifecycle(name: &str) -> Result<(), String> {
    match bench::figs::lifecycle::scenario_report(name) {
        Some(report) => {
            print!("{report}");
            Ok(())
        }
        None => {
            let names: Vec<&str> = bench::figs::lifecycle::scenarios()
                .iter()
                .map(|s| s.name)
                .collect();
            Err(format!(
                "unknown lifecycle scenario {name:?}; available: {}",
                names.join(", ")
            ))
        }
    }
}

fn cmd_fleet(name: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    match bench::figs::fleet::scenario_report(name) {
        Some(report) => {
            print!("{report}");
            if let Some(path) = flags.get("out") {
                std::fs::write(path, &report).map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
            Ok(())
        }
        None => {
            let names: Vec<&str> = bench::figs::fleet::scenarios()
                .iter()
                .map(|s| s.name)
                .collect();
            Err(format!(
                "unknown fleet scenario {name:?}; available: {}",
                names.join(", ")
            ))
        }
    }
}

fn print_run(report: &serving::RunReport, sched: &OlympianScheduler) {
    print_report(report);
    println!("token switches : {}", sched.switches());
}

fn print_report(report: &serving::RunReport) {
    println!("scheduler      : {}", report.scheduler_name);
    println!("makespan       : {:.3} s", report.makespan.as_secs_f64());
    println!("utilization    : {:.1}%", report.utilization * 100.0);
    println!("kernels        : {}", report.kernel_count);
    for c in &report.clients {
        match &c.outcome {
            serving::ClientOutcome::Finished(t) => {
                println!("  client {:>3}: finished {:.3} s (GPU {:.3} s)",
                    c.client.0, t.as_secs_f64(), c.total_gpu.as_secs_f64());
            }
            other => println!("  client {:>3}: {other}", c.client.0),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // `trace`, `metrics`, `chaos`, `lifecycle`, `top`, `query` and
    // `import-bench` take one positional argument (the experiment,
    // scenario, query expression or file) before flags.
    let (positional, flag_args) = if cmd == "trace"
        || cmd == "metrics"
        || cmd == "blame"
        || cmd == "chaos"
        || cmd == "control"
        || cmd == "lifecycle"
        || cmd == "fleet"
        || cmd == "top"
        || cmd == "query"
        || cmd == "import-bench"
    {
        match args.get(1) {
            Some(a) if !a.starts_with("--") => (Some(a.clone()), &args[2..]),
            _ => {
                eprintln!("error: {cmd} needs an argument");
                return usage();
            }
        }
    } else {
        (None, &args[1..])
    };
    let flags = match parse_flags(flag_args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Some(j) = flags.get("jobs") {
        match j.parse::<usize>() {
            // Parallel sweeps (e.g. the Overhead-Q grid) size themselves via
            // `simpar::max_jobs`, which reads this variable.
            Ok(n) if n > 0 => std::env::set_var(simpar::JOBS_ENV, n.to_string()),
            _ => {
                eprintln!("error: --jobs: expected a positive integer, got {j:?}");
                return usage();
            }
        }
    }
    let result = match cmd.as_str() {
        "models" => cmd_models(),
        "export-model" => cmd_export_model(&flags),
        "inspect" => cmd_inspect(&flags),
        "profile" => cmd_profile(&flags),
        "curve" => cmd_curve(&flags),
        "run" => cmd_run(&flags),
        "bench" => cmd_bench(&flags),
        "trace" => cmd_trace(positional.as_deref().expect("positional parsed"), &flags),
        "metrics" => cmd_metrics(positional.as_deref().expect("positional parsed"), &flags),
        "blame" => cmd_blame(positional.as_deref().expect("positional parsed"), &flags),
        "chaos" => cmd_chaos(positional.as_deref().expect("positional parsed"), &flags),
        "control" => cmd_control(positional.as_deref().expect("positional parsed"), &flags),
        "lifecycle" => cmd_lifecycle(positional.as_deref().expect("positional parsed")),
        "fleet" => cmd_fleet(positional.as_deref().expect("positional parsed"), &flags),
        "top" => cmd_top(positional.as_deref().expect("positional parsed"), &flags),
        "query" => cmd_query(positional.as_deref().expect("positional parsed"), &flags),
        "import-bench" => {
            cmd_import_bench(positional.as_deref().expect("positional parsed"), &flags)
        }
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
