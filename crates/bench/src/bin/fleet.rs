//! Renders the fleet-orchestration report. See `bench::figs::fleet`.

fn main() {
    let out = bench::figs::fleet::run();
    print!("{out}");
    let path = bench::save_result("fleet.txt", &out);
    eprintln!("(saved to {})", path.display());
}
