//! Regenerates the paper's fig16 output. See `bench::figs::fig16`.

fn main() {
    let out = bench::figs::fig16::run();
    print!("{out}");
    let path = bench::save_result("fig16.txt", &out);
    eprintln!("(saved to {})", path.display());
}
