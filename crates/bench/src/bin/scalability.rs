//! Regenerates the paper's scalability output. See `bench::figs::scalability`.

fn main() {
    let out = bench::figs::scalability::run();
    print!("{out}");
    let path = bench::save_result("scalability.txt", &out);
    eprintln!("(saved to {})", path.display());
}
