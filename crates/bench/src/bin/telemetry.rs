//! Renders the live-telemetry incident report. See `bench::figs::telemetry`.

fn main() {
    let out = bench::figs::telemetry::run();
    print!("{out}");
    let path = bench::save_result("telemetry.txt", &out);
    eprintln!("(saved to {})", path.display());
}
