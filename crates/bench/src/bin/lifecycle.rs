//! Model-lifecycle suite. See `bench::figs::lifecycle`.

fn main() {
    let out = bench::figs::lifecycle::run();
    print!("{out}");
    let path = bench::save_result("lifecycle.txt", &out);
    eprintln!("(saved to {})", path.display());
}
