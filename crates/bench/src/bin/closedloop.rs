//! Renders the closed-loop SLO control report. See `bench::figs::closedloop`.

fn main() {
    let out = bench::figs::closedloop::run();
    print!("{out}");
    let path = bench::save_result("closedloop.txt", &out);
    eprintln!("(saved to {})", path.display());
}
