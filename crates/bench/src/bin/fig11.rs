//! Regenerates the paper's fig11 output. See `bench::figs::fig11`.

fn main() {
    let out = bench::figs::fig11::run();
    print!("{out}");
    let path = bench::save_result("fig11.txt", &out);
    eprintln!("(saved to {})", path.display());
}
