//! Regenerates the paper's fig13_14 output. See `bench::figs::fig13_14`.

fn main() {
    let out = bench::figs::fig13_14::run();
    print!("{out}");
    let path = bench::save_result("fig13_14.txt", &out);
    eprintln!("(saved to {})", path.display());
}
