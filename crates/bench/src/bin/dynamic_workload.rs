//! Regenerates the dynamic_workload extension experiment. See `bench::figs::dynamic_workload`.

fn main() {
    let out = bench::figs::dynamic_workload::run();
    print!("{out}");
    let path = bench::save_result("dynamic_workload.txt", &out);
    eprintln!("(saved to {})", path.display());
}
