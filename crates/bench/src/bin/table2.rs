//! Regenerates the paper's table2 output. See `bench::figs::table2`.

fn main() {
    let out = bench::figs::table2::run();
    print!("{out}");
    let path = bench::save_result("table2.txt", &out);
    eprintln!("(saved to {})", path.display());
}
