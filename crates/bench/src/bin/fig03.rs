//! Regenerates the paper's fig03 output. See `bench::figs::fig03`.

fn main() {
    let out = bench::figs::fig03::run();
    print!("{out}");
    let path = bench::save_result("fig03.txt", &out);
    eprintln!("(saved to {})", path.display());
}
