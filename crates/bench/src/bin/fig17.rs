//! Regenerates the paper's fig17 output. See `bench::figs::fig17`.

fn main() {
    let out = bench::figs::fig17::run();
    print!("{out}");
    let path = bench::save_result("fig17.txt", &out);
    eprintln!("(saved to {})", path.display());
}
