//! Regenerates the paper's fig20 output. See `bench::figs::fig20`.

fn main() {
    let out = bench::figs::fig20::run();
    print!("{out}");
    let path = bench::save_result("fig20.txt", &out);
    eprintln!("(saved to {})", path.display());
}
