//! Checks the paper's <2% scheduling-overhead claim. See
//! `bench::figs::overhead`.

fn main() {
    let out = bench::figs::overhead::run();
    print!("{out}");
    let path = bench::save_result("overhead.txt", &out);
    eprintln!("(saved to {})", path.display());
}
