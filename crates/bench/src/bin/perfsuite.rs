//! `perfsuite` — the engine performance suite.
//!
//! Measures the simulator's hot paths and writes `BENCH_engine.json` at the
//! workspace root:
//!
//! * event-queue throughput, for both the optimized 4-ary queue and the
//!   original binary-heap baseline it replaced (the seed reference), plus
//!   the resulting speedup;
//! * the hierarchical timing wheel the engine now runs on, on the same
//!   churn workload, with speedups against both earlier queues;
//! * end-to-end engine throughput in events/second under the TF-Serving
//!   baseline (FIFO) and the Olympian scheduler, with a hard regression
//!   guard: the Olympian rate must stay above 0.7x the PR 5 reference;
//! * the SoA cache proxy: the Olympian engine at 10x the client count, so a
//!   regression in the job tables' cache behavior shows up as a falling
//!   ratio to the 4-client rate;
//! * the device-group sharding check: a three-device run through the
//!   sharded entry point at `shards = 1` vs every core, asserting
//!   byte-identical reports and recording the wall-clock speedup (which
//!   must exceed 1.0 whenever more than one core is available);
//! * total wall-clock of the full `bench::all` experiment suite run through
//!   the parallel harness, with its serial-equivalent time and speedup;
//! * the recorded seed-reference numbers (pre-optimization engine + queue)
//!   and this run's speedups over them;
//! * the tracing guardrail: engine throughput with the trace layer off,
//!   sampled, and full, with a hard assert that the off-mode rate stays
//!   within noise of the PR 1 reference (tracing must be free when off);
//! * the telemetry guardrail: engine throughput with live telemetry off
//!   and on, with a hard assert that the off-mode rate stays within noise
//!   of the PR 2 reference (telemetry must cost one predicted branch per
//!   event when off);
//! * the fault-injection guardrail: engine throughput with fault injection
//!   off (`cfg.faults = None`) and with a live chaos plan, with a hard
//!   assert that the off-mode rate stays within noise of the PR 3
//!   reference (fault hooks must cost one predicted branch when off);
//! * the lifecycle guardrail: engine throughput with the model-lifecycle
//!   manager off (`cfg.lifecycle = None`) and with every run routed
//!   through a managed deployment, with a hard assert that the off-mode
//!   rate stays within noise of the PR 4 reference (an unmanaged engine
//!   must not pay for version routing);
//! * the attribution rate: how fast the post-hoc blame pipeline (phase
//!   sweep, critical path, run diff) rebuilds its report from a fully
//!   traced run — pure post-processing, so it is recorded rather than
//!   guarded (the capture cost lives in the tracing section).
//! * the tsdb guardrail: how fast a telemetry-on run's report ingests into
//!   the time-series store's tiered rings, with hard asserts that the
//!   telemetry-off engine rate stays within noise of the PR 7 reference
//!   (the run-log capture must cost one predicted branch when off) and
//!   that the capture slows the telemetry-on engine by at most a few
//!   percent of its PR 7 reference rate.
//! * the control-plane guardrail: engine throughput with the control plane
//!   off (`cfg.control = None`) and with the full closed loop ticking, with
//!   a hard assert that the off-mode rate stays within noise of the PR 8
//!   reference (an uncontrolled engine must pay one predicted branch, not a
//!   control loop).
//! * the cluster guardrail: engine throughput with the fleet orchestrator
//!   off (`cfg.cluster = None`) and with a two-device fleet routing every
//!   run, with a hard assert that the off-mode rate stays within noise of
//!   the PR 9 reference (a single-pool engine must pay one predicted
//!   branch, not a router).
//!
//! ```text
//! perfsuite [--smoke] [--jobs N] [--out path]
//! ```
//!
//! `--smoke` keeps the run CI-sized: it still measures the queue and engine
//! sections but skips the (minutes-long) experiment suite, emitting the same
//! JSON schema with a zero-experiment suite section.

use bench::harness;
use microjson::Value;
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{
    run_experiment, run_sharded_experiment, ClientSpec, EngineConfig, FifoScheduler, Scheduler,
};
use simtime::{BaselineEventQueue, DetRng, EventQueue, SimDuration, SimTime, TimingWheel};
use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events pushed through each queue per measured iteration.
const QUEUE_EVENTS: usize = 100_000;

/// Seed-reference numbers: this suite run against the pre-optimization tree
/// (HashMap job/kernel tables, per-run allocation, binary-heap event queue)
/// on the same machine — `perfsuite --smoke` for the engine rates and a
/// timed `all --jobs 1` for the suite wall clock. The queue section needs no
/// recorded number because `BaselineEventQueue` *is* the seed queue and is
/// measured live above.
const SEED_ENGINE_FIFO_EPS: f64 = 3_088_458.0;
const SEED_ENGINE_OLYMPIAN_EPS: f64 = 2_955_628.0;
const SEED_SUITE_WALL_SECS: f64 = 172.5;

/// PR 1 reference numbers (this suite's own `BENCH_engine.json` before the
/// trace layer landed) — the baseline the tracing-off guardrail compares
/// against.
const PR1_ENGINE_FIFO_EPS: f64 = 3_941_153.0;
const PR1_ENGINE_OLYMPIAN_EPS: f64 = 4_228_107.0;

/// PR 2 reference numbers (this suite's own `BENCH_engine.json` before the
/// telemetry layer landed) — the baseline the telemetry-off guardrail
/// compares against.
const PR2_ENGINE_FIFO_EPS: f64 = 4_945_747.0;
const PR2_ENGINE_OLYMPIAN_EPS: f64 = 4_670_088.0;

/// PR 3 reference numbers (this suite's own `BENCH_engine.json` before the
/// fault-injection layer landed) — the baseline the faults-off guardrail
/// compares against.
const PR3_ENGINE_FIFO_EPS: f64 = 4_945_747.0;
const PR3_ENGINE_OLYMPIAN_EPS: f64 = 4_670_088.0;

/// PR 4 reference numbers (this suite's own `BENCH_engine.json` before the
/// lifecycle manager landed) — the baseline the lifecycle-off guardrail
/// compares against.
const PR4_ENGINE_FIFO_EPS: f64 = 4_653_017.0;
const PR4_ENGINE_OLYMPIAN_EPS: f64 = 4_857_083.0;

/// PR 5 reference numbers (this suite's own `BENCH_engine.json` before the
/// timing-wheel queue, SoA job tables and device-group sharding landed) —
/// the floor the engine throughput-regression guard compares against.
const PR5_ENGINE_FIFO_EPS: f64 = 4_783_773.45;
const PR5_ENGINE_OLYMPIAN_EPS: f64 = 4_260_753.98;

/// PR 7 reference numbers (this suite's own `BENCH_engine.json` before the
/// time-series store landed) — the baselines the tsdb guardrail compares
/// against: the telemetry-off engine rate (the run-log capture must cost
/// one predicted branch when telemetry is off) and the telemetry-on rate
/// (capture plus ingest must stay within a few percent of it).
const PR7_ENGINE_FIFO_EPS: f64 = 8_863_691.16;
const PR7_ENGINE_OLYMPIAN_EPS: f64 = 8_334_878.22;
const PR7_TELEMETRY_ON_EPS: f64 = 6_610_719.47;

/// PR 8 reference numbers (this suite's own `BENCH_engine.json` before the
/// control plane landed) — the baseline the control-off guardrail compares
/// against.
const PR8_ENGINE_FIFO_EPS: f64 = 10_654_045.47;
const PR8_ENGINE_OLYMPIAN_EPS: f64 = 10_002_699.59;

/// PR 9 reference numbers (this suite's own `BENCH_engine.json` before the
/// fleet orchestrator landed) — the baseline the cluster-off guardrail
/// compares against.
const PR9_ENGINE_FIFO_EPS: f64 = 8_315_513.87;
const PR9_ENGINE_OLYMPIAN_EPS: f64 = 8_367_731.23;

/// Guardrail: the run-log capture the store ingests may grow the relative
/// cost of turning telemetry on (the within-process on/off throughput
/// ratio, which cancels machine-speed drift) by at most this much over the
/// PR 7 reference ratio.
const TSDB_MAX_INGEST_OVERHEAD: f64 = 0.05;

/// Guardrail: tracing-off throughput must stay above this fraction of the
/// PR 1 reference. Generous, to absorb machine and run-to-run noise — the
/// assert is meant to catch a structural regression (tracing cost leaking
/// into the off path), not a few-percent wobble.
const TRACE_OFF_NOISE_FLOOR: f64 = 0.70;

fn usage() -> ExitCode {
    eprintln!("usage: perfsuite [--smoke] [--jobs N] [--out path]");
    ExitCode::FAILURE
}

/// Pre-generated schedule instants: a mix of near-future times with plenty
/// of same-instant ties, the shape the serving engine produces.
fn queue_workload() -> Vec<SimTime> {
    let mut rng = DetRng::new(0xBEEF);
    (0..QUEUE_EVENTS)
        .map(|_| SimTime::from_nanos(rng.range_u64(0, 4096)))
        .collect()
}

/// Schedules all instants in bursts of 4, popping 3 per burst, then drains —
/// exercising both sift directions under realistic occupancy.
fn churn_optimized(times: &[SimTime]) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
    let mut acc = 0u64;
    for (i, &t) in times.iter().enumerate() {
        q.schedule(t, i as u64);
        if i % 4 == 3 {
            for _ in 0..3 {
                acc = acc.wrapping_add(q.pop().expect("non-empty").1);
            }
        }
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn churn_baseline(times: &[SimTime]) -> u64 {
    let mut q: BaselineEventQueue<u64> = BaselineEventQueue::new();
    let mut acc = 0u64;
    for (i, &t) in times.iter().enumerate() {
        q.schedule(t, i as u64);
        if i % 4 == 3 {
            for _ in 0..3 {
                acc = acc.wrapping_add(q.pop().expect("non-empty").1);
            }
        }
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn queue_section() -> Value {
    let times = queue_workload();
    let opt = harness::run("queue_optimized/4-ary", || black_box(churn_optimized(&times)));
    let base = harness::run("queue_baseline/binary-heap", || {
        black_box(churn_baseline(&times))
    });
    let opt_eps = opt.per_second() * QUEUE_EVENTS as f64;
    let base_eps = base.per_second() * QUEUE_EVENTS as f64;
    let speedup = opt_eps / base_eps;
    println!(
        "  -> queue: optimized {opt_eps:.0} events/s vs seed baseline {base_eps:.0} events/s \
         (speedup {speedup:.2}x)"
    );
    Value::Object(vec![
        ("events_per_iter".into(), Value::UInt(QUEUE_EVENTS as u64)),
        ("seed_baseline_events_per_sec".into(), Value::Float(base_eps)),
        ("optimized_events_per_sec".into(), Value::Float(opt_eps)),
        ("speedup".into(), Value::Float(speedup)),
    ])
}

/// Pre-generated near-future offsets for the monotone churn workload: the
/// engine only ever schedules at `now + delta`, never in the past, with
/// deltas on the kernel/switch-latency scale (microseconds to a couple of
/// milliseconds — a few to a few hundred wheel ticks out, the level-0
/// horizon). That is the shape the timing wheel is built for; the
/// absolute-time workload above would land everything in the wheel's
/// current tick and measure its same-tick insertion buffer instead of the
/// engine-relevant path.
fn wheel_workload() -> Vec<u64> {
    let mut rng = DetRng::new(0xF00D);
    (0..QUEUE_EVENTS).map(|_| rng.range_u64(0, 1 << 20)).collect()
}

/// Monotone churn: schedule `now + delta` in bursts of 4, pop 3 per burst
/// (advancing `now` to each popped time), then drain — the engine's access
/// pattern, on whichever queue `$new` builds.
macro_rules! monotone_churn {
    ($new:expr, $deltas:expr) => {{
        let mut q = $new;
        let mut now = SimTime::ZERO;
        let mut acc = 0u64;
        for (i, &d) in $deltas.iter().enumerate() {
            q.schedule(now + SimDuration::from_nanos(d), i as u64);
            if i % 4 == 3 {
                for _ in 0..3 {
                    let (t, v) = q.pop().expect("non-empty");
                    now = t;
                    acc = acc.wrapping_add(v);
                }
            }
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    }};
}

/// The hierarchical timing wheel the engine now runs on, against the 4-ary
/// queue and the seed binary heap, all three on the monotone workload.
fn queue_wheel_section() -> Value {
    let deltas = wheel_workload();
    let wheel = harness::run("queue_wheel/timing-wheel", || {
        black_box(monotone_churn!(TimingWheel::<u64>::with_capacity(1024), deltas))
    });
    let four = harness::run("queue_wheel/4-ary", || {
        black_box(monotone_churn!(EventQueue::<u64>::with_capacity(1024), deltas))
    });
    let heap = harness::run("queue_wheel/binary-heap", || {
        black_box(monotone_churn!(BaselineEventQueue::<u64>::new(), deltas))
    });
    let wheel_eps = wheel.per_second() * QUEUE_EVENTS as f64;
    let four_eps = four.per_second() * QUEUE_EVENTS as f64;
    let heap_eps = heap.per_second() * QUEUE_EVENTS as f64;
    let vs_four = wheel_eps / four_eps;
    let vs_heap = wheel_eps / heap_eps;
    println!(
        "  -> queue_wheel: wheel {wheel_eps:.0} events/s \
         ({vs_four:.2}x 4-ary {four_eps:.0}, {vs_heap:.2}x seed heap {heap_eps:.0})"
    );
    Value::Object(vec![
        ("events_per_iter".into(), Value::UInt(QUEUE_EVENTS as u64)),
        ("wheel_events_per_sec".into(), Value::Float(wheel_eps)),
        ("four_ary_events_per_sec".into(), Value::Float(four_eps)),
        ("seed_baseline_events_per_sec".into(), Value::Float(heap_eps)),
        ("speedup_vs_four_ary".into(), Value::Float(vs_four)),
        ("speedup_vs_seed_baseline".into(), Value::Float(vs_heap)),
    ])
}

fn engine_clients(n: usize, batches: u32) -> Vec<ClientSpec> {
    vec![ClientSpec::new(models::mini::small(4), batches); n]
}

fn engine_entry(
    name: &str,
    events_per_run: u64,
    m: &harness::Measurement,
) -> ((String, Value), f64) {
    let eps = m.per_second() * events_per_run as f64;
    println!("  -> {name}: {eps:.0} events/s ({events_per_run} events per run)");
    (
        (
            name.to_string(),
            Value::Object(vec![
                ("events_per_run".into(), Value::UInt(events_per_run)),
                ("runs_per_sec".into(), Value::Float(m.per_second())),
                ("events_per_sec".into(), Value::Float(eps)),
            ]),
        ),
        eps,
    )
}

/// Returns the section plus the measured (fifo, olympian) events/second for
/// the seed-reference comparison.
fn engine_section() -> (Value, f64, f64) {
    let cfg = EngineConfig::default();
    let fifo_probe = run_experiment(&cfg, engine_clients(4, 2), &mut FifoScheduler::new());
    let fifo = harness::run("engine_fifo/clients=4", || {
        black_box(run_experiment(
            &cfg,
            engine_clients(4, 2),
            &mut FifoScheduler::new(),
        ))
    });

    let model = models::mini::small(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let olympian_sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let oly_probe = run_experiment(&cfg, engine_clients(4, 2), &mut olympian_sched());
    let oly = harness::run("engine_olympian/clients=4", || {
        black_box(run_experiment(
            &cfg,
            engine_clients(4, 2),
            &mut olympian_sched(),
        ))
    });
    let (fifo_entry, fifo_eps) = engine_entry("fifo", fifo_probe.event_count, &fifo);
    let (oly_entry, oly_eps) = engine_entry("olympian", oly_probe.event_count, &oly);
    let oly_vs_pr5 = oly_eps / PR5_ENGINE_OLYMPIAN_EPS;
    assert!(
        oly_vs_pr5 >= TRACE_OFF_NOISE_FLOOR,
        "olympian engine throughput {oly_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 5 reference {PR5_ENGINE_OLYMPIAN_EPS:.0} — \
         the hot path regressed"
    );
    (
        Value::Object(vec![
            fifo_entry,
            oly_entry,
            (
                "pr5_reference_events_per_sec".into(),
                Value::Object(vec![
                    ("fifo".into(), Value::Float(PR5_ENGINE_FIFO_EPS)),
                    ("olympian".into(), Value::Float(PR5_ENGINE_OLYMPIAN_EPS)),
                ]),
            ),
            ("olympian_vs_pr5".into(), Value::Float(oly_vs_pr5)),
            ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ]),
        fifo_eps,
        oly_eps,
    )
}

/// The SoA cache proxy: the same engine workload at 10x the client count.
/// With the hot per-job state packed into structure-of-arrays tables the
/// per-event rate should hold up as the job population grows past what an
/// AoS layout keeps in cache; the section records the rate and its ratio to
/// the 4-client rate so regressions in cache behavior show up as a falling
/// `vs_4_clients`.
fn soa_section(oly_eps_4: f64) -> Value {
    const CLIENTS: usize = 40;
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let probe = run_experiment(&cfg, engine_clients(CLIENTS, 2), &mut sched());
    let m = harness::run("engine_olympian/clients=40", || {
        black_box(run_experiment(&cfg, engine_clients(CLIENTS, 2), &mut sched()))
    });
    let eps = m.per_second() * probe.event_count as f64;
    let vs_4 = eps / oly_eps_4.max(1e-9);
    println!(
        "  -> soa: {eps:.0} events/s at {CLIENTS} clients \
         ({vs_4:.2}x of the 4-client rate, {} events per run)",
        probe.event_count
    );
    Value::Object(vec![
        ("clients".into(), Value::UInt(CLIENTS as u64)),
        ("events_per_run".into(), Value::UInt(probe.event_count)),
        ("events_per_sec".into(), Value::Float(eps)),
        ("vs_4_clients".into(), Value::Float(vs_4)),
    ])
}

/// The device-group sharding section: a three-device experiment run through
/// the sharded entry point with one worker thread and with every available
/// core, asserting the two reports are byte-identical (the shard-count
/// invariance contract) and recording the wall-clock speedup.
///
/// # Panics
///
/// Panics if the `shards = 1` and `shards = N` reports differ, or if more
/// than one core is available and the parallel run is not faster. On a
/// single-core machine the section degrades to a no-op comparison (both
/// runs use one thread and the speedup hovers around 1.0).
fn shard_section() -> Value {
    let base = EngineConfig::default();
    let groups = 3u64;
    // Millisecond hand-off latency — the large-model regime sharding
    // targets. The window length equals the hand-off latency, so this keeps
    // each group's per-window work large relative to the barrier cost.
    let mk_cfg = |shards: u32| EngineConfig {
        extra_devices: vec![base.device.clone(), base.device.clone()],
        shards,
        switch_latency: SimDuration::from_millis(1),
        ..base.clone()
    };
    let clients = || -> Vec<ClientSpec> { engine_clients(12, 4) };
    let factory =
        |_g: usize| Box::new(FifoScheduler::new()) as Box<dyn Scheduler>;
    let cores = simpar::default_jobs() as u32;

    let cfg_1 = mk_cfg(1);
    let cfg_n = mk_cfg(cores);
    let probe_1 = run_sharded_experiment(&cfg_1, clients(), &factory);
    let probe_n = run_sharded_experiment(&cfg_n, clients(), &factory);
    assert_eq!(
        format!("{probe_1:?}"),
        format!("{probe_n:?}"),
        "sharded report diverged between shards=1 and shards={cores}"
    );

    let m_1 = harness::run("engine_sharded/shards=1", || {
        black_box(run_sharded_experiment(&cfg_1, clients(), &factory))
    });
    let eps_1 = m_1.per_second() * probe_1.event_count as f64;
    // On one core `shards = N` is the same single-threaded run; re-measuring
    // it would only record measurement noise as a bogus "speedup".
    let eps_n = if cores > 1 {
        let m_n = harness::run(&format!("engine_sharded/shards={cores}"), || {
            black_box(run_sharded_experiment(&cfg_n, clients(), &factory))
        });
        m_n.per_second() * probe_n.event_count as f64
    } else {
        eps_1
    };
    let speedup = eps_n / eps_1.max(1e-9);
    println!(
        "  -> shard: {groups} groups, shards=1 {eps_1:.0} events/s, \
         shards={cores} {eps_n:.0} events/s (speedup {speedup:.2}x), reports identical"
    );
    if cores > 1 {
        assert!(
            speedup > 1.0,
            "sharded run with {cores} worker threads was not faster than one \
             ({eps_n:.0} vs {eps_1:.0} events/s) despite {cores} cores"
        );
    }
    Value::Object(vec![
        ("groups".into(), Value::UInt(groups)),
        ("cores".into(), Value::UInt(u64::from(cores))),
        ("events_per_run".into(), Value::UInt(probe_1.event_count)),
        ("shards_1_events_per_sec".into(), Value::Float(eps_1)),
        ("shards_n_events_per_sec".into(), Value::Float(eps_n)),
        ("speedup".into(), Value::Float(speedup)),
        ("reports_identical".into(), Value::Bool(true)),
    ])
}

/// Measures the Olympian engine config with tracing off / sampled / full and
/// asserts the off rate is within noise of the PR 1 reference.
///
/// # Panics
///
/// Panics if tracing-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 1 reference — the trace layer must cost
/// nothing when off.
fn tracing_section(off_eps: f64) -> Value {
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&base).profile(&model));
    let store = Arc::new(store);
    let measure = |name: &str, tc: serving::TraceConfig| {
        let cfg = base.with_trace(tc);
        let sched = || {
            OlympianScheduler::new(
                Arc::clone(&store),
                Box::new(RoundRobin::new()),
                SimDuration::from_micros(200),
            )
        };
        let probe = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
        let m = harness::run(name, || {
            black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
        });
        m.per_second() * probe.event_count as f64
    };
    let sampled_eps = measure("engine_olympian/trace=sampled", serving::TraceConfig::sampled());
    let full_eps = measure("engine_olympian/trace=full", serving::TraceConfig::full());
    let off_vs_pr1 = off_eps / PR1_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> tracing: off {off_eps:.0} events/s ({:.2}x PR 1 reference), \
         sampled {sampled_eps:.0}, full {full_eps:.0}",
        off_vs_pr1
    );
    assert!(
        off_vs_pr1 >= TRACE_OFF_NOISE_FLOOR,
        "tracing-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 1 reference {PR1_ENGINE_OLYMPIAN_EPS:.0} — \
         the trace layer is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr1_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR1_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR1_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("sampled_events_per_sec".into(), Value::Float(sampled_eps)),
        ("full_events_per_sec".into(), Value::Float(full_eps)),
        ("off_vs_pr1".into(), Value::Float(off_vs_pr1)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("sampled_cost".into(), Value::Float(1.0 - sampled_eps / off_eps.max(1e-9))),
        ("full_cost".into(), Value::Float(1.0 - full_eps / off_eps.max(1e-9))),
    ])
}

/// Measures the Olympian engine config with live telemetry on and asserts
/// the off rate (measured by `engine_section`, since telemetry defaults to
/// off) is within noise of the PR 2 reference.
///
/// # Panics
///
/// Panics if telemetry-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 2 reference — telemetry must cost one
/// predicted branch per event when off.
fn telemetry_section(off_eps: f64) -> Value {
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&base).profile(&model));
    let store = Arc::new(store);
    let tc = telemetry::TelemetryConfig::enabled(SimDuration::from_micros(100))
        .with_slo(telemetry::SloSpec::new(
            model.name(),
            SimDuration::from_millis(1),
            0.05,
        ))
        .with_drift(telemetry::DriftConfig::new(SimDuration::from_micros(200), 0.25));
    let cfg = base.with_telemetry(tc);
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let probe = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
    let m = harness::run("engine_olympian/telemetry=on", || {
        black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
    });
    let on_eps = m.per_second() * probe.event_count as f64;
    let off_vs_pr2 = off_eps / PR2_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> telemetry: off {off_eps:.0} events/s ({off_vs_pr2:.2}x PR 2 reference), \
         on {on_eps:.0}"
    );
    assert!(
        off_vs_pr2 >= TRACE_OFF_NOISE_FLOOR,
        "telemetry-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 2 reference {PR2_ENGINE_OLYMPIAN_EPS:.0} — \
         the telemetry layer is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr2_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR2_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR2_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("off_vs_pr2".into(), Value::Float(off_vs_pr2)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("on_cost".into(), Value::Float(1.0 - on_eps / off_eps.max(1e-9))),
    ])
}

/// Measures the Olympian engine config with a live chaos plan and asserts
/// the off rate (measured by `engine_section`, since `cfg.faults` defaults
/// to `None`) is within noise of the PR 3 reference.
///
/// # Panics
///
/// Panics if faults-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 3 reference — the fault hooks must cost
/// one predicted branch per event when off.
fn faults_section(off_eps: f64) -> Value {
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&base).profile(&model));
    let store = Arc::new(store);
    let plan = serving::faults::FaultPlan::new()
        .with_kernel_failures(0.02)
        .with_slowdown(2.0, SimTime::from_millis(1), SimTime::from_millis(2));
    let cfg = base.with_faults(serving::faults::FaultConfig::new(plan));
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let probe = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
    let m = harness::run("engine_olympian/faults=on", || {
        black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
    });
    let on_eps = m.per_second() * probe.event_count as f64;
    let off_vs_pr3 = off_eps / PR3_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> faults: off {off_eps:.0} events/s ({off_vs_pr3:.2}x PR 3 reference), \
         on {on_eps:.0}"
    );
    assert!(
        off_vs_pr3 >= TRACE_OFF_NOISE_FLOOR,
        "faults-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 3 reference {PR3_ENGINE_OLYMPIAN_EPS:.0} — \
         the fault-injection layer is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr3_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR3_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR3_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("off_vs_pr3".into(), Value::Float(off_vs_pr3)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("on_cost".into(), Value::Float(1.0 - on_eps / off_eps.max(1e-9))),
    ])
}

/// Measures the Olympian engine config with the lifecycle manager routing
/// every run through a managed single-version deployment, and asserts the
/// off rate (measured by `engine_section`, since `cfg.lifecycle` defaults
/// to `None`) is within noise of the PR 4 reference.
///
/// # Panics
///
/// Panics if lifecycle-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 4 reference — an unmanaged engine must
/// not pay for the lifecycle layer.
fn lifecycle_section(off_eps: f64) -> Value {
    use serving::lifecycle::{DeploymentPlan, LifecycleConfig, ModelDeployment};
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let plan = DeploymentPlan::new()
        .with_model(ModelDeployment::new(model.name(), model.clone()));
    let store = Arc::new(ProfileStore::new());
    let binder = olympian::StoreBinder::calibrate(&base, &plan, Arc::clone(&store));
    let cfg = base.with_lifecycle(LifecycleConfig::new(plan).with_binder(binder));
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let probe = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
    let m = harness::run("engine_olympian/lifecycle=on", || {
        black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
    });
    let on_eps = m.per_second() * probe.event_count as f64;
    let off_vs_pr4 = off_eps / PR4_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> lifecycle: off {off_eps:.0} events/s ({off_vs_pr4:.2}x PR 4 reference), \
         managed {on_eps:.0}"
    );
    assert!(
        off_vs_pr4 >= TRACE_OFF_NOISE_FLOOR,
        "lifecycle-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 4 reference {PR4_ENGINE_OLYMPIAN_EPS:.0} — \
         the lifecycle layer is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr4_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR4_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR4_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("off_vs_pr4".into(), Value::Float(off_vs_pr4)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("on_cost".into(), Value::Float(1.0 - on_eps / off_eps.max(1e-9))),
    ])
}

/// Measures the attribution pipeline — phase sweep, critical path, and
/// run diff — over a fully-traced Olympian run. Attribution is pure
/// post-processing on the finished trace ring (the capture cost is what the
/// tracing section guards), so this section records how fast the blame
/// report can be rebuilt rather than guarding the engine hot path.
fn attribution_section() -> Value {
    use serving::attrib::{critical_path, diff};
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let cfg = base.with_trace(serving::TraceConfig::full());
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let store = Arc::new(store);
    let mut sched = OlympianScheduler::new(
        Arc::clone(&store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let report = run_experiment(&cfg, engine_clients(4, 2), &mut sched);
    let horizon = cfg.switch_latency + cfg.launch_overhead;
    let trace_events = report.trace.len() as u64;
    let probe = report.attribution(horizon);
    let runs = probe.runs.len() as u64;
    let m = harness::run("attrib/sweep+critical+diff", || {
        let attr = report.attribution(horizon);
        let cp = critical_path(&attr);
        let d = diff(&attr, &attr);
        black_box((attr.runs.len(), cp.segments.len(), d.per_client.len()))
    });
    let per_sec = m.per_second();
    let eps = per_sec * trace_events as f64;
    println!(
        "  -> attribution: {per_sec:.0} full pipelines/s over {trace_events} trace \
         events / {runs} runs ({eps:.0} events/s swept)"
    );
    Value::Object(vec![
        ("trace_events".into(), Value::UInt(trace_events)),
        ("runs".into(), Value::UInt(runs)),
        ("pipelines_per_sec".into(), Value::Float(per_sec)),
        ("events_per_sec".into(), Value::Float(eps)),
    ])
}

/// Measures the time-series store: how fast a telemetry-on run's report
/// ingests into tiered per-series rings, and what fraction of the run's own
/// wall clock that ingest costs.
///
/// # Panics
///
/// Panics if telemetry-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 7 reference (the run-log capture the
/// store ingests must cost one predicted branch per event when telemetry is
/// off), or if the relative cost of turning telemetry on — measured
/// back-to-back in this process, so machine-speed drift cancels — grew more
/// than `TSDB_MAX_INGEST_OVERHEAD` over the PR 7 reference ratio (the
/// capture must cost a bounds check and three `Vec` pushes per completed
/// run, nothing more). The post-hoc ingest rate itself is recorded, not
/// guarded — like attribution, it is pure post-processing off the serving
/// hot path.
fn tsdb_section(off_eps: f64) -> Value {
    use serving::tsdb::Store;
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&base).profile(&model));
    let store = Arc::new(store);
    let tc = telemetry::TelemetryConfig::enabled(SimDuration::from_micros(100));
    let cfg = base.with_telemetry(tc);
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    // Back-to-back off/on runs: the ratio between them is immune to the
    // machine running hotter or colder than when the references were cut.
    let off_probe = run_experiment(&base, engine_clients(4, 2), &mut sched());
    let off_m = harness::run("engine_olympian/telemetry=off(run-log)", || {
        black_box(run_experiment(&base, engine_clients(4, 2), &mut sched()))
    });
    let report = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
    let run_m = harness::run("engine_olympian/telemetry=on(run-log)", || {
        black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
    });
    let off_local_eps = off_m.per_second() * off_probe.event_count as f64;
    let on_eps = run_m.per_second() * report.event_count as f64;

    let probe = Store::from_telemetry(&report.telemetry);
    let (series, points) = (probe.series_count() as u64, probe.total_points() as u64);
    let ingest_m = harness::run("tsdb/ingest", || {
        black_box(Store::from_telemetry(&report.telemetry).total_points())
    });
    let points_per_sec = ingest_m.per_second() * points as f64;

    let off_vs_pr7 = off_eps / PR7_ENGINE_OLYMPIAN_EPS;
    // Relative cost of turning telemetry on, here and at the PR 7 cut —
    // within-process ratios, so machine-speed drift cancels out of the
    // comparison.
    let on_cost = 1.0 - on_eps / off_local_eps.max(1e-9);
    let pr7_on_cost = 1.0 - PR7_TELEMETRY_ON_EPS / PR7_ENGINE_OLYMPIAN_EPS;
    let ingest_overhead = (on_cost - pr7_on_cost).max(0.0);
    println!(
        "  -> tsdb: ingest {points_per_sec:.0} points/s ({series} series, {points} \
         points); off {off_vs_pr7:.2}x PR 7 reference, telemetry-on cost {:.1}% \
         (PR 7 {:.1}%, capture overhead {:.1}%)",
        on_cost * 100.0,
        pr7_on_cost * 100.0,
        ingest_overhead * 100.0
    );
    assert!(
        off_vs_pr7 >= TRACE_OFF_NOISE_FLOOR,
        "telemetry-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 7 reference {PR7_ENGINE_OLYMPIAN_EPS:.0} — \
         the run-log capture is no longer free when telemetry is off"
    );
    assert!(
        ingest_overhead <= TSDB_MAX_INGEST_OVERHEAD,
        "run-log capture grew the telemetry-on cost to {:.1}% of engine \
         throughput, more than {:.0}% over the PR 7 reference {:.1}%",
        on_cost * 100.0,
        TSDB_MAX_INGEST_OVERHEAD * 100.0,
        pr7_on_cost * 100.0
    );
    Value::Object(vec![
        (
            "pr7_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR7_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR7_ENGINE_OLYMPIAN_EPS)),
                ("telemetry_on".into(), Value::Float(PR7_TELEMETRY_ON_EPS)),
            ]),
        ),
        ("off_vs_pr7".into(), Value::Float(off_vs_pr7)),
        ("off_events_per_sec".into(), Value::Float(off_local_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("on_cost".into(), Value::Float(on_cost)),
        ("pr7_on_cost".into(), Value::Float(pr7_on_cost)),
        ("series".into(), Value::UInt(series)),
        ("points".into(), Value::UInt(points)),
        ("ingest_points_per_sec".into(), Value::Float(points_per_sec)),
        ("ingest_overhead".into(), Value::Float(ingest_overhead)),
        (
            "max_ingest_overhead".into(),
            Value::Float(TSDB_MAX_INGEST_OVERHEAD),
        ),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
    ])
}

/// Measures the Olympian engine config with the control plane ticking —
/// deadline binding, laxity scans, and the degradation ladder all live —
/// and asserts the off rate (measured by `engine_section`, since
/// `cfg.control` defaults to `None`) is within noise of the PR 8 reference.
///
/// # Panics
///
/// Panics if control-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 8 reference — an uncontrolled engine
/// must pay one predicted branch per event, not a control loop.
fn control_section(off_eps: f64) -> Value {
    let model = models::mini::small(4);
    let base = EngineConfig::default();
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&base).profile(&model));
    let store = Arc::new(store);
    let cfg = base.with_control(
        controlplane::ControlConfig::new()
            .with_cost(olympian::StoreCostOracle::new(Arc::clone(&store))),
    );
    let sched = || {
        OlympianScheduler::new(
            Arc::clone(&store),
            Box::new(RoundRobin::new()),
            SimDuration::from_micros(200),
        )
    };
    let probe = run_experiment(&cfg, engine_clients(4, 2), &mut sched());
    let m = harness::run("engine_olympian/control=on", || {
        black_box(run_experiment(&cfg, engine_clients(4, 2), &mut sched()))
    });
    let on_eps = m.per_second() * probe.event_count as f64;
    let off_vs_pr8 = off_eps / PR8_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> control: off {off_eps:.0} events/s ({off_vs_pr8:.2}x PR 8 reference), \
         closed-loop {on_eps:.0}"
    );
    assert!(
        off_vs_pr8 >= TRACE_OFF_NOISE_FLOOR,
        "control-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 8 reference {PR8_ENGINE_OLYMPIAN_EPS:.0} — \
         the control plane is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr8_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR8_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR8_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("off_vs_pr8".into(), Value::Float(off_vs_pr8)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("on_cost".into(), Value::Float(1.0 - on_eps / off_eps.max(1e-9))),
    ])
}

/// Measures the engine with a two-device fleet routing every run through
/// per-device lifecycle managers, and asserts the off rate (measured by
/// `engine_section`, since `cfg.cluster` defaults to `None`) is within
/// noise of the PR 9 reference.
///
/// # Panics
///
/// Panics if cluster-disabled engine throughput falls below
/// `TRACE_OFF_NOISE_FLOOR` x the PR 9 reference — a single-pool engine must
/// pay one predicted branch per event, not a router.
fn cluster_section(off_eps: f64) -> Value {
    use serving::lifecycle::{DeploymentPlan, LifecycleConfig, ModelDeployment};
    let model = models::mini::small(4);
    let plan = DeploymentPlan::new()
        .with_model(ModelDeployment::new(model.name(), model.clone()));
    let cc = serving::cluster::ClusterConfig::new(
        vec![
            gpusim::DeviceProfile::gtx_1080_ti(),
            gpusim::DeviceProfile::titan_x(),
        ],
        LifecycleConfig::new(plan),
    )
    .with_tick(SimDuration::from_millis(1));
    let cfg = EngineConfig::default().with_cluster(cc);
    let probe = run_experiment(&cfg, engine_clients(4, 2), &mut FifoScheduler::new());
    let m = harness::run("engine_fifo/cluster=on", || {
        black_box(run_experiment(
            &cfg,
            engine_clients(4, 2),
            &mut FifoScheduler::new(),
        ))
    });
    let on_eps = m.per_second() * probe.event_count as f64;
    let off_vs_pr9 = off_eps / PR9_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> cluster: off {off_eps:.0} events/s ({off_vs_pr9:.2}x PR 9 reference), \
         two-device fleet {on_eps:.0}"
    );
    assert!(
        off_vs_pr9 >= TRACE_OFF_NOISE_FLOOR,
        "cluster-disabled engine throughput {off_eps:.0} events/s fell below \
         {TRACE_OFF_NOISE_FLOOR}x the PR 9 reference {PR9_ENGINE_OLYMPIAN_EPS:.0} — \
         the fleet orchestrator is no longer free when off"
    );
    Value::Object(vec![
        (
            "pr9_reference_events_per_sec".into(),
            Value::Object(vec![
                ("fifo".into(), Value::Float(PR9_ENGINE_FIFO_EPS)),
                ("olympian".into(), Value::Float(PR9_ENGINE_OLYMPIAN_EPS)),
            ]),
        ),
        ("off_events_per_sec".into(), Value::Float(off_eps)),
        ("on_events_per_sec".into(), Value::Float(on_eps)),
        ("off_vs_pr9".into(), Value::Float(off_vs_pr9)),
        ("noise_floor".into(), Value::Float(TRACE_OFF_NOISE_FLOOR)),
        ("on_cost".into(), Value::Float(1.0 - on_eps / off_eps.max(1e-9))),
    ])
}

/// Returns the section plus the measured wall clock (0 in smoke mode).
fn suite_section(smoke: bool, jobs: usize) -> (Value, f64) {
    if smoke {
        return (
            Value::Object(vec![
                ("experiments".into(), Value::UInt(0)),
                ("wall_clock_secs".into(), Value::Float(0.0)),
                ("serial_equivalent_secs".into(), Value::Float(0.0)),
                ("speedup".into(), Value::Float(1.0)),
            ]),
            0.0,
        );
    }
    let experiments = bench::figs::registry();
    let t0 = Instant::now();
    let durations: Vec<Duration> = simpar::par_map_jobs(jobs, &experiments, |_, &(name, f)| {
        let t = Instant::now();
        black_box(f());
        let dt = t.elapsed();
        eprintln!("  ({name} done in {dt:.1?})");
        dt
    });
    let elapsed = t0.elapsed();
    let serial_equivalent: Duration = durations.iter().sum();
    let speedup = serial_equivalent.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
    println!(
        "  -> suite: {} experiments in {elapsed:.1?} with {jobs} jobs \
         (serial-equivalent {serial_equivalent:.1?}, speedup {speedup:.2}x)",
        experiments.len()
    );
    (
        Value::Object(vec![
            ("experiments".into(), Value::UInt(experiments.len() as u64)),
            ("wall_clock_secs".into(), Value::Float(elapsed.as_secs_f64())),
            (
                "serial_equivalent_secs".into(),
                Value::Float(serial_equivalent.as_secs_f64()),
            ),
            ("speedup".into(), Value::Float(speedup)),
        ]),
        elapsed.as_secs_f64(),
    )
}

/// The recorded seed-reference numbers plus speedups of this run over them.
fn seed_reference_section(fifo_eps: f64, oly_eps: f64, suite_secs: f64) -> Value {
    let fifo_speedup = fifo_eps / SEED_ENGINE_FIFO_EPS;
    let oly_speedup = oly_eps / SEED_ENGINE_OLYMPIAN_EPS;
    println!(
        "  -> vs seed: fifo {fifo_speedup:.2}x, olympian {oly_speedup:.2}x \
         (seed {SEED_ENGINE_FIFO_EPS:.0} / {SEED_ENGINE_OLYMPIAN_EPS:.0} events/s)"
    );
    let mut fields = vec![
        (
            "engine_fifo_events_per_sec".into(),
            Value::Float(SEED_ENGINE_FIFO_EPS),
        ),
        (
            "engine_olympian_events_per_sec".into(),
            Value::Float(SEED_ENGINE_OLYMPIAN_EPS),
        ),
        (
            "suite_wall_clock_secs".into(),
            Value::Float(SEED_SUITE_WALL_SECS),
        ),
        ("engine_fifo_speedup".into(), Value::Float(fifo_speedup)),
        ("engine_olympian_speedup".into(), Value::Float(oly_speedup)),
    ];
    if suite_secs > 0.0 {
        fields.push((
            "suite_speedup".into(),
            Value::Float(SEED_SUITE_WALL_SECS / suite_secs),
        ));
    }
    Value::Object(fields)
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut jobs = simpar::max_jobs();
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--jobs" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => return usage(),
                }
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                out = Some(v.clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    std::env::set_var(simpar::JOBS_ENV, jobs.to_string());

    println!("perfsuite ({} mode, {jobs} jobs)", if smoke { "smoke" } else { "full" });
    let queue = queue_section();
    let queue_wheel = queue_wheel_section();
    let (engine, fifo_eps, oly_eps) = engine_section();
    let soa = soa_section(oly_eps);
    let shard = shard_section();
    let tracing = tracing_section(oly_eps);
    let telemetry = telemetry_section(oly_eps);
    let faults = faults_section(oly_eps);
    let lifecycle = lifecycle_section(oly_eps);
    let attribution = attribution_section();
    let tsdb = tsdb_section(oly_eps);
    let control = control_section(oly_eps);
    let cluster = cluster_section(oly_eps);
    let (suite, suite_secs) = suite_section(smoke, jobs);
    let seed_reference = seed_reference_section(fifo_eps, oly_eps, suite_secs);

    let doc = Value::Object(vec![
        ("schema".into(), Value::str("BENCH_engine/v1")),
        ("mode".into(), Value::str(if smoke { "smoke" } else { "full" })),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("queue".into(), queue),
        ("queue_wheel".into(), queue_wheel),
        ("engine".into(), engine),
        ("soa".into(), soa),
        ("shard".into(), shard),
        ("tracing".into(), tracing),
        ("telemetry".into(), telemetry),
        ("faults".into(), faults),
        ("lifecycle".into(), lifecycle),
        ("attribution".into(), attribution),
        ("tsdb".into(), tsdb),
        ("control".into(), control),
        ("cluster".into(), cluster),
        ("suite".into(), suite),
        ("seed_reference".into(), seed_reference),
    ]);
    let mut text = String::new();
    doc.write(&mut text);
    text.push('\n');
    let path = match out {
        Some(p) => std::path::PathBuf::from(p),
        None => workspace_root().join("BENCH_engine.json"),
    };
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}
