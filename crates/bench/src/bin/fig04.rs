//! Regenerates the paper's fig04 output. See `bench::figs::fig04`.

fn main() {
    let out = bench::figs::fig04::run();
    print!("{out}");
    let path = bench::save_result("fig04.txt", &out);
    eprintln!("(saved to {})", path.display());
}
