//! Regenerates the paper's fig12 output. See `bench::figs::fig12`.

fn main() {
    let out = bench::figs::fig12::run();
    print!("{out}");
    let path = bench::save_result("fig12.txt", &out);
    eprintln!("(saved to {})", path.display());
}
