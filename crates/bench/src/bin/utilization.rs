//! Regenerates the paper's utilization output. See `bench::figs::utilization`.

fn main() {
    let out = bench::figs::utilization::run();
    print!("{out}");
    let path = bench::save_result("utilization.txt", &out);
    eprintln!("(saved to {})", path.display());
}
