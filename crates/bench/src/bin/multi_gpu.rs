//! Regenerates the multi_gpu extension experiment. See `bench::figs::multi_gpu`.

fn main() {
    let out = bench::figs::multi_gpu::run();
    print!("{out}");
    let path = bench::save_result("multi_gpu.txt", &out);
    eprintln!("(saved to {})", path.display());
}
