//! Regenerates the ablations extension experiment. See `bench::figs::ablations`.

fn main() {
    let out = bench::figs::ablations::run();
    print!("{out}");
    let path = bench::save_result("ablations.txt", &out);
    eprintln!("(saved to {})", path.display());
}
