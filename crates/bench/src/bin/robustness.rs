//! Seed-robustness study. See `bench::figs::robustness`.

fn main() {
    let out = bench::figs::robustness::run();
    print!("{out}");
    let path = bench::save_result("robustness.txt", &out);
    eprintln!("(saved to {})", path.display());
}
