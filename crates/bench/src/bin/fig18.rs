//! Regenerates the paper's fig18 output. See `bench::figs::fig18`.

fn main() {
    let out = bench::figs::fig18::run();
    print!("{out}");
    let path = bench::save_result("fig18.txt", &out);
    eprintln!("(saved to {})", path.display());
}
