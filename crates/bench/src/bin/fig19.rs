//! Regenerates the paper's fig19 output. See `bench::figs::fig19`.

fn main() {
    let out = bench::figs::fig19::run();
    print!("{out}");
    let path = bench::save_result("fig19.txt", &out);
    eprintln!("(saved to {})", path.display());
}
