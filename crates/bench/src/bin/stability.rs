//! Regenerates the paper's stability output. See `bench::figs::stability`.

fn main() {
    let out = bench::figs::stability::run();
    print!("{out}");
    let path = bench::save_result("stability.txt", &out);
    eprintln!("(saved to {})", path.display());
}
