//! Quantifies the paper's §1 motivation. See `bench::figs::motivation`.

fn main() {
    let out = bench::figs::motivation::run();
    print!("{out}");
    let path = bench::save_result("motivation.txt", &out);
    eprintln!("(saved to {})", path.display());
}
