//! Regenerates the paper's fig06 output. See `bench::figs::fig06`.

fn main() {
    let out = bench::figs::fig06::run();
    print!("{out}");
    let path = bench::save_result("fig06.txt", &out);
    eprintln!("(saved to {})", path.display());
}
