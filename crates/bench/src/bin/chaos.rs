//! Chaos resilience suite. See `bench::figs::chaos`.

fn main() {
    let out = bench::figs::chaos::run();
    print!("{out}");
    let path = bench::save_result("chaos.txt", &out);
    eprintln!("(saved to {})", path.display());
}
