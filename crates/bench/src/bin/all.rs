//! Runs every table/figure experiment and saves each report under
//! `results/`. This is the one-command reproduction of the paper's entire
//! evaluation section.
//!
//! Experiments are independent deterministic simulations, so they run in
//! parallel (`--jobs N` or `OLYMPIAN_JOBS=N`, default: all cores) and the
//! reports are printed and saved in registry order — the output is
//! byte-identical to a serial run. Wall-clock diagnostics go to stderr.

use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!("usage: all [--jobs N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut jobs = simpar::max_jobs();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => return usage(),
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    // Propagate the cap to the nested replication/sweep loops, which size
    // themselves via `simpar::max_jobs`.
    std::env::set_var(simpar::JOBS_ENV, jobs.to_string());

    let experiments = bench::figs::registry();
    let t0 = Instant::now();
    let results: Vec<(String, Duration)> = simpar::par_map_jobs(jobs, &experiments, |_, &(_, f)| {
        let t = Instant::now();
        (f(), t.elapsed())
    });
    let mut serial_equivalent = Duration::ZERO;
    for ((name, _), (out, dt)) in experiments.iter().zip(&results) {
        print!("{out}");
        let path = bench::save_result(&format!("{name}.txt"), out);
        eprintln!("({name} done in {dt:.1?}, saved to {})\n", path.display());
        serial_equivalent += *dt;
    }
    let elapsed = t0.elapsed();
    eprintln!(
        "all: {} experiments in {:.1?} with {} jobs (serial-equivalent {:.1?}, speedup {:.2}x)",
        experiments.len(),
        elapsed,
        jobs,
        serial_equivalent,
        serial_equivalent.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
    );
    ExitCode::SUCCESS
}
