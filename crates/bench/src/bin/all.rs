//! Runs every table/figure experiment in sequence and saves each report
//! under `results/`. This is the one-command reproduction of the paper's
//! entire evaluation section.

type Experiment = fn() -> String;

fn main() {
    let experiments: Vec<(&str, Experiment)> = vec![
        ("table2", bench::figs::table2::run),
        ("fig03", bench::figs::fig03::run),
        ("fig04", bench::figs::fig04::run),
        ("fig06", bench::figs::fig06::run),
        ("fig08", bench::figs::fig08::run),
        ("fig11", bench::figs::fig11::run),
        ("fig12", bench::figs::fig12::run),
        ("fig13_14", bench::figs::fig13_14::run),
        ("fig16", bench::figs::fig16::run),
        ("fig17", bench::figs::fig17::run),
        ("fig18", bench::figs::fig18::run),
        ("fig19", bench::figs::fig19::run),
        ("fig20", bench::figs::fig20::run),
        ("fig21", bench::figs::fig21::run),
        ("utilization", bench::figs::utilization::run),
        ("scalability", bench::figs::scalability::run),
        ("stability", bench::figs::stability::run),
        ("multi_gpu", bench::figs::multi_gpu::run),
        ("dynamic_workload", bench::figs::dynamic_workload::run),
        ("ablations", bench::figs::ablations::run),
        ("timeline", bench::figs::timeline::run),
        ("motivation", bench::figs::motivation::run),
        ("robustness", bench::figs::robustness::run),
    ];
    for (name, f) in experiments {
        let t0 = std::time::Instant::now();
        let out = f();
        print!("{out}");
        let path = bench::save_result(&format!("{name}.txt"), &out);
        eprintln!("({name} done in {:.1?}, saved to {})\n", t0.elapsed(), path.display());
    }
}
