//! Regenerates the paper's fig21 output. See `bench::figs::fig21`.

fn main() {
    let out = bench::figs::fig21::run();
    print!("{out}");
    let path = bench::save_result("fig21.txt", &out);
    eprintln!("(saved to {})", path.display());
}
