//! Traced experiments: named configurations `olympctl trace` (and the CI
//! trace-validation job) can run with capture enabled.
//!
//! Each entry takes the requested [`TraceConfig`] and returns the full
//! [`RunReport`] — trace included — so callers can export Chrome-trace JSON
//! via [`RunReport::chrome_trace_json`] or aggregate a
//! [`trace::TraceStats`] snapshot.

use crate::figs::fair;
use crate::{
    build_store_for, choose_q, default_config, homogeneous_clients, DEFAULT_BATCH,
    DEFAULT_NUM_BATCHES, DEFAULT_TOLERANCE,
};
use models::ModelKind;
use serving::{run_experiment, ClientSpec, RunReport, TraceConfig};
use simtime::SimDuration;

/// A traced experiment: a stable name and the function running it with the
/// given capture configuration.
pub type TracedExperiment = (&'static str, fn(TraceConfig) -> RunReport);

/// Every traced experiment, smallest first.
pub fn traced_registry() -> Vec<TracedExperiment> {
    vec![("smoke", smoke), ("timeline", timeline), ("fig11", fig11)]
}

/// Looks up a traced experiment by name.
pub fn traced_experiment(name: &str) -> Option<fn(TraceConfig) -> RunReport> {
    traced_registry().iter().find(|&&(n, _)| n == name).map(|&(_, f)| f)
}

/// CI-sized: three mini-model clients under fair sharing — milliseconds of
/// wall clock, yet every event kind except deadline-cancel appears.
fn smoke(tc: TraceConfig) -> RunReport {
    let cfg = default_config().with_trace(tc);
    let clients = vec![ClientSpec::new(models::mini::small(4), 3); 3];
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, SimDuration::from_micros(200));
    run_experiment(&cfg, clients, &mut sched)
}

/// The timeline figure's run: 5 Inception clients, fair sharing, Q=1.2 ms.
fn timeline(tc: TraceConfig) -> RunReport {
    let cfg = default_config().with_trace(tc);
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 5, DEFAULT_NUM_BATCHES);
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, SimDuration::from_micros(1200));
    run_experiment(&cfg, clients, &mut sched)
}

/// The Figure 11 configuration: 10 Inception clients under fair sharing
/// with the profiler-chosen quantum — the run behind the `overhead` report.
fn fig11(tc: TraceConfig) -> RunReport {
    let cfg = default_config().with_trace(tc);
    let clients =
        homogeneous_clients(ModelKind::InceptionV4, DEFAULT_BATCH, 10, DEFAULT_NUM_BATCHES);
    let store = build_store_for(&cfg, &clients);
    let q = choose_q(&cfg, &clients, DEFAULT_TOLERANCE);
    let mut sched = fair(store, q);
    run_experiment(&cfg, clients, &mut sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_captures_a_trace() {
        let report = traced_experiment("smoke").unwrap()(TraceConfig::sampled());
        assert!(report.all_finished());
        assert!(!report.trace.is_empty());
        assert_eq!(report.trace.dropped, 0);
        // Sampled mode records scheduling events but no kernels.
        assert!(report
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, trace::TraceKind::TokenGrant { .. })));
        assert!(!report.trace.events.iter().any(|e| e.kind.is_kernel()));
        // The export is well-formed JSON.
        let json = report.chrome_trace_json();
        let doc = microjson::Value::parse(&json).expect("valid chrome trace");
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() > 4);
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = traced_registry().iter().map(|&(n, _)| n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(traced_experiment("smoke").is_some());
        assert!(traced_experiment("ghost").is_none());
    }
}
