//! Telemetered experiments: named configurations `olympctl metrics` (and
//! the CI telemetry-validation job) can run with live telemetry enabled.
//!
//! Each entry takes the requested snapshot interval and returns the full
//! [`RunReport`] — telemetry included — so callers can export the
//! JSON-lines time series via [`RunReport::telemetry_jsonl`] or the final
//! registry state via [`RunReport::prometheus_text`]. Every experiment
//! also runs with sampled tracing on, so the alerts the monitors raise
//! land on the Perfetto timeline next to the quanta that caused them.

use crate::figs::fair;
use crate::{build_store_for, default_config};
use serving::{run_experiment, ClientSpec, RunReport, TraceConfig};
use simtime::SimDuration;
use std::sync::Arc;
use telemetry::{BurnWindows, DriftConfig, SloSpec, TelemetryConfig};

/// A telemetered experiment: a stable name and the function running it at
/// the given snapshot cadence.
pub type TelemeteredExperiment = (&'static str, fn(SimDuration) -> RunReport);

/// Every telemetered experiment, smallest first.
pub fn telemetered_registry() -> Vec<TelemeteredExperiment> {
    vec![("smoke", smoke), ("drifted", drifted)]
}

/// Looks up a telemetered experiment by name.
pub fn telemetered_experiment(name: &str) -> Option<fn(SimDuration) -> RunReport> {
    telemetered_registry()
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, f)| f)
}

/// The scheduling quantum both experiments target.
const QUANTUM: SimDuration = SimDuration::from_micros(200);

/// CI-sized healthy run: three mini-model clients under fair sharing with
/// a generous latency objective — every counter and histogram fills, no
/// monitor fires.
fn smoke(interval: SimDuration) -> RunReport {
    let clients = vec![ClientSpec::new(models::mini::small(4), 3); 3];
    let tc = TelemetryConfig::enabled(interval).with_slo(SloSpec::new(
        clients[0].model.name(),
        SimDuration::from_secs(1),
        0.05,
    ));
    let cfg = default_config()
        .with_trace(TraceConfig::sampled())
        .with_telemetry(tc);
    let store = build_store_for(&cfg, &clients);
    let mut sched = fair(store, QUANTUM);
    run_experiment(&cfg, clients, &mut sched)
}

/// A deployment whose device regressed 40% after profiling: the profiles
/// (and the latency objective) are calibrated on the fresh device, then
/// the run executes on the slow one. Quanta overshoot `Q` — the streaming
/// drift detector flags the stale profiles mid-run — and every run
/// breaches its objective, so the SLO burn-rate monitor fires too.
fn drifted(interval: SimDuration) -> RunReport {
    let clients = vec![ClientSpec::new(models::mini::small(4), 10); 3];
    let model_name = clients[0].model.name().to_string();
    let fresh = default_config();
    let store = build_store_for(&fresh, &clients);

    // Calibrate the objective on the fresh device: the median run latency
    // plus a 15% margin, read from a telemetry probe run. A healthy
    // deployment meets it; the 1.4x-slower device cannot.
    let probe_cfg = fresh.with_telemetry(TelemetryConfig::enabled(interval));
    let mut probe_sched = fair(Arc::clone(&store), QUANTUM);
    let probe = run_experiment(&probe_cfg, clients.clone(), &mut probe_sched);
    let fresh_p50_us = probe
        .telemetry
        .hist("run_latency_us")
        .expect("latency histogram")
        .p50;
    let objective = SimDuration::from_micros((fresh_p50_us * 1.15).ceil() as u64);

    let mut cfg = default_config();
    cfg.device = gpusim::DeviceProfile::custom(
        "regressed",
        1.4,
        cfg.device.memory_bytes(),
        cfg.device.sm_count(),
        0.0,
    );
    let tc = TelemetryConfig::enabled(interval)
        .with_slo(SloSpec::new(model_name, objective, 0.05))
        .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
        .with_drift(DriftConfig::new(QUANTUM, 0.25));
    let cfg = cfg.with_trace(TraceConfig::sampled()).with_telemetry(tc);
    let mut sched = fair(store, QUANTUM);
    run_experiment(&cfg, clients, &mut sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn smoke_experiment_fills_the_registry_quietly() {
        let report = telemetered_experiment("smoke").unwrap()(us(100));
        assert!(report.all_finished());
        let t = &report.telemetry;
        assert!(t.enabled);
        assert_eq!(t.snapshots.len() as u64, t.expected_snapshots());
        assert_eq!(t.counter("clients_admitted"), Some(3));
        assert_eq!(t.counter("runs_completed"), Some(9));
        assert!(t.hist("quantum_us").unwrap().count > 0);
        assert!(t.alerts.is_empty(), "healthy run must not alert: {:?}", t.alerts);
        // Telemetered runs also capture a trace for the Perfetto timeline.
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn drifted_experiment_fires_both_alert_kinds() {
        let report = telemetered_experiment("drifted").unwrap()(us(100));
        assert!(report.all_finished());
        let t = &report.telemetry;
        assert_eq!(t.snapshots.len() as u64, t.expected_snapshots());
        assert!(
            t.alerts.iter().any(|a| a.kind() == "drift"),
            "regressed device must trip the streaming drift detector"
        );
        assert!(
            t.alerts.iter().any(|a| a.kind() == "slo-burn"),
            "regressed device must burn the error budget"
        );
        assert!(t.counter("alerts_drift").unwrap() >= 1);
        assert!(t.counter("alerts_slo_burn").unwrap() >= 1);
        assert!(t.counter("slo_breaches").unwrap() >= 1);
        // The same alerts land in the trace ring as typed events.
        let json = report.chrome_trace_json();
        assert!(json.contains("\"drift-alert\""));
        assert!(json.contains("\"slo-burn-alert\""));
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = telemetered_registry().iter().map(|&(n, _)| n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(telemetered_experiment("drifted").is_some());
        assert!(telemetered_experiment("ghost").is_none());
    }
}
