//! Telemetry exporters: Prometheus text exposition and JSON-lines time
//! series.
//!
//! Both render from a finished [`TelemetryReport`] and are byte-
//! deterministic: iteration follows registration order and every number
//! derives from the deterministic simulation.
//!
//! The JSON-lines stream is one self-describing document per line:
//!
//! ```text
//! {"type":"meta", ...}        // names, cadence, counts — always first
//! {"type":"snapshot", ...}    // one per boundary, time order
//! {"type":"alert", ...}       // merged into the stream in time order
//! ```

use crate::{Alert, SnapshotView, TelemetryReport};
use microjson::Value;

fn f(v: f64) -> Value {
    Value::Float(v)
}

fn obj_line(out: &mut String, v: Value) {
    v.write(out);
    out.push('\n');
}

fn alert_value(a: &Alert) -> Value {
    match a {
        Alert::Drift { at, client, observed_us, expected_us, deviation } => {
            Value::Object(vec![
                ("type".into(), Value::str("alert")),
                ("kind".into(), Value::str("drift")),
                ("t_ns".into(), Value::UInt(at.as_nanos())),
                ("client".into(), Value::UInt(u64::from(*client))),
                ("observed_us".into(), f(*observed_us)),
                ("expected_us".into(), f(*expected_us)),
                ("deviation".into(), f(*deviation)),
            ])
        }
        Alert::SloBurn { at, slo, model, short_burn, long_burn } => Value::Object(vec![
            ("type".into(), Value::str("alert")),
            ("kind".into(), Value::str("slo-burn")),
            ("t_ns".into(), Value::UInt(at.as_nanos())),
            ("slo".into(), Value::UInt(u64::from(*slo))),
            ("model".into(), Value::Str(model.clone())),
            ("short_burn".into(), f(*short_burn)),
            ("long_burn".into(), f(*long_burn)),
        ]),
        Alert::FaultRecovery { at, client, action, detail } => Value::Object(vec![
            ("type".into(), Value::str("alert")),
            ("kind".into(), Value::str("fault-recovery")),
            ("t_ns".into(), Value::UInt(at.as_nanos())),
            ("client".into(), Value::UInt(u64::from(*client))),
            ("action".into(), Value::str(*action)),
            ("detail".into(), Value::UInt(*detail)),
        ]),
        Alert::Rollout { at, model, version, action, cand_us, base_us } => Value::Object(vec![
            ("type".into(), Value::str("alert")),
            ("kind".into(), Value::str("rollout")),
            ("t_ns".into(), Value::UInt(at.as_nanos())),
            ("model".into(), Value::Str(model.clone())),
            ("version".into(), Value::UInt(u64::from(*version))),
            ("action".into(), Value::str(*action)),
            ("candidate_us".into(), Value::UInt(*cand_us)),
            ("incumbent_us".into(), Value::UInt(*base_us)),
        ]),
    }
}

fn snapshot_value(r: &TelemetryReport, s: SnapshotView<'_>) -> Value {
    let counters = r
        .counter_names
        .iter()
        .zip(s.counters)
        .map(|(n, v)| (n.to_string(), Value::UInt(*v)))
        .collect();
    let gauges = r
        .gauge_names
        .iter()
        .zip(s.gauges)
        .map(|(n, v)| (n.to_string(), f(*v)))
        .collect();
    let hists = r
        .hist_names
        .iter()
        .zip(s.hists)
        .map(|(n, h)| {
            (
                n.to_string(),
                Value::Object(vec![
                    ("count".into(), Value::UInt(h.count)),
                    ("sum".into(), Value::UInt(h.sum)),
                    ("max".into(), Value::UInt(h.max)),
                    ("p50".into(), f(h.p50)),
                    ("p99".into(), f(h.p99)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("type".into(), Value::str("snapshot")),
        ("t_ns".into(), Value::UInt(s.at.as_nanos())),
        ("counters".into(), Value::Object(counters)),
        ("gauges".into(), Value::Object(gauges)),
        ("histograms".into(), Value::Object(hists)),
        (
            "client_gpu_ns".into(),
            Value::Array(s.client_gpu_ns.iter().map(|v| Value::UInt(*v)).collect()),
        ),
    ])
}

/// Renders the JSON-lines time series: a `meta` header line, then
/// snapshots and alerts merged in time order (alerts precede the snapshot
/// that closes their window).
pub fn json_lines(r: &TelemetryReport) -> String {
    let mut out = String::new();
    let slos = r
        .slos
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("model".into(), Value::Str(s.model.clone())),
                ("objective_us".into(), f(s.objective.as_micros_f64())),
                ("budget".into(), f(s.budget)),
            ])
        })
        .collect();
    let names = |ns: &[&'static str]| Value::Array(ns.iter().map(|n| Value::str(*n)).collect());
    obj_line(
        &mut out,
        Value::Object(vec![
            ("type".into(), Value::str("meta")),
            ("enabled".into(), Value::Bool(r.enabled)),
            ("interval_ns".into(), Value::UInt(r.interval.as_nanos())),
            ("makespan_ns".into(), Value::UInt(r.makespan.as_nanos())),
            ("snapshots".into(), Value::UInt(r.snapshots.len() as u64)),
            ("alerts".into(), Value::UInt(r.alerts.len() as u64)),
            ("counters".into(), names(&r.counter_names)),
            ("gauges".into(), names(&r.gauge_names)),
            ("histograms".into(), names(&r.hist_names)),
            (
                "clients".into(),
                Value::Array(r.client_models.iter().map(|m| Value::Str(m.clone())).collect()),
            ),
            ("slos".into(), Value::Array(slos)),
        ]),
    );
    // Merge: alerts at time <= a snapshot's boundary stream before it.
    let mut ai = 0;
    for s in r.snapshots.iter() {
        while ai < r.alerts.len() && r.alerts[ai].at() <= s.at {
            obj_line(&mut out, alert_value(&r.alerts[ai]));
            ai += 1;
        }
        obj_line(&mut out, snapshot_value(r, s));
    }
    for a in &r.alerts[ai..] {
        obj_line(&mut out, alert_value(a));
    }
    out
}

fn push_prom_number(out: &mut String, v: f64) {
    // Prometheus accepts Go-style floats; plain `{}` formatting is
    // deterministic and round-trips.
    out.push_str(&format!("{v}"));
}

/// Escapes a HELP docstring per the 0.0.4 text format: backslash and
/// line feed only (quotes are legal in HELP text).
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a label value per the 0.0.4 text format: backslash, double
/// quote and line feed.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn push_prom_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP olympian_{name} {}\n", escape_help(help)));
    out.push_str(&format!("# TYPE olympian_{name} {kind}\n"));
}

/// Renders the final registry state as Prometheus text exposition
/// (version 0.0.4): counters, gauges, summary-style histogram quantiles
/// and per-client GPU attribution. Label values and HELP strings are
/// escaped per the format (`\\`, `\"`, `\n`), so adversarial model names
/// cannot break the line structure.
pub fn prometheus_text(r: &TelemetryReport) -> String {
    let mut out = String::new();
    let Some(last) = r.last() else {
        return out;
    };
    for (name, v) in r.counter_names.iter().zip(last.counters) {
        push_prom_header(&mut out, name, "counter", &format!("Telemetry counter {name}."));
        out.push_str(&format!("olympian_{name} {v}\n"));
    }
    for (name, v) in r.gauge_names.iter().zip(last.gauges) {
        push_prom_header(&mut out, name, "gauge", &format!("Telemetry gauge {name}."));
        out.push_str(&format!("olympian_{name} "));
        push_prom_number(&mut out, *v);
        out.push('\n');
    }
    for (name, h) in r.hist_names.iter().zip(last.hists) {
        push_prom_header(&mut out, name, "summary", &format!("Telemetry histogram {name}."));
        out.push_str(&format!("olympian_{name}{{quantile=\"0.5\"}} "));
        push_prom_number(&mut out, h.p50);
        out.push('\n');
        out.push_str(&format!("olympian_{name}{{quantile=\"0.99\"}} "));
        push_prom_number(&mut out, h.p99);
        out.push('\n');
        out.push_str(&format!("olympian_{name}_sum {}\n", h.sum));
        out.push_str(&format!("olympian_{name}_count {}\n", h.count));
    }
    push_prom_header(
        &mut out,
        "client_gpu_ns",
        "gauge",
        "Cumulative GPU time attributed to each client.",
    );
    for (client, gpu) in last.client_gpu_ns.iter().enumerate() {
        let model = r
            .client_models
            .get(client)
            .map(String::as_str)
            .unwrap_or("unknown");
        out.push_str(&format!(
            "olympian_client_gpu_ns{{client=\"{client}\",model=\"{}\"}} {gpu}\n",
            escape_label(model)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BurnWindows, DriftConfig, EngineGauges, SloSpec, TelemetryConfig, TelemetryHub,
    };
    use simtime::{SimDuration, SimTime};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn busy_report() -> TelemetryReport {
        let cfg = TelemetryConfig::enabled(us(100))
            .with_slo(SloSpec::new("m", us(100), 0.1))
            .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
            .with_drift(DriftConfig::new(us(200), 0.1));
        let mut h = TelemetryHub::new(&cfg);
        h.bind_client(0, "m");
        let g = EngineGauges::default();
        for i in 0..6u64 {
            h.on_quantum(0, us(320), SimTime::from_micros(i * 80 + 10));
            h.on_run_complete(0, us(400), t(400));
            h.tick(SimTime::from_micros((i + 1) * 80), &g);
        }
        h.finalize(SimTime::from_micros(480), &g);
        h.into_report(SimTime::from_micros(480))
    }

    #[test]
    fn json_lines_parse_and_order() {
        let r = busy_report();
        let text = json_lines(&r);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2);
        let meta = Value::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(
            meta.get("snapshots").unwrap().as_u64().unwrap(),
            r.snapshots.len() as u64
        );
        let mut snapshots = 0;
        let mut alerts = 0;
        let mut last_t = 0;
        for line in &lines[1..] {
            let v = Value::parse(line).expect("every line parses");
            let t = v.get("t_ns").unwrap().as_u64().unwrap();
            assert!(t >= last_t, "stream regressed in time");
            last_t = t;
            match v.get("type").unwrap().as_str().unwrap() {
                "snapshot" => snapshots += 1,
                "alert" => alerts += 1,
                other => panic!("unexpected line type {other}"),
            }
        }
        assert_eq!(snapshots, r.snapshots.len());
        assert_eq!(alerts, r.alerts.len());
        assert!(alerts >= 2, "expected both alert kinds in a drifting run");
        assert!(text.contains("\"kind\":\"drift\""));
        assert!(text.contains("\"kind\":\"slo-burn\""));
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let r = busy_report();
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE olympian_runs_completed counter\n"));
        assert!(text.contains("olympian_runs_completed 6\n"));
        assert!(text.contains("# TYPE olympian_quantum_us summary\n"));
        assert!(text.contains("olympian_quantum_us_count 6\n"));
        assert!(text.contains("olympian_client_gpu_ns{client=\"0\",model=\"m\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("metric line shape");
            assert!(name.starts_with("olympian_"), "bad metric name {name}");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value {value}"));
        }
    }

    /// Inverse of the 0.0.4 label-value escaping, for the round-trip
    /// check below.
    fn unescape_label(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn adversarial_label_values_roundtrip() {
        const EVIL: &str = "mo\\del \"v2\"\nwith newline";
        let cfg = TelemetryConfig::enabled(us(100));
        let mut h = TelemetryHub::new(&cfg);
        h.bind_client(0, EVIL);
        h.on_quantum(0, us(50), SimTime::from_micros(10));
        h.on_run_complete(0, us(60), t(60));
        h.finalize(SimTime::from_micros(100), &EngineGauges::default());
        let r = h.into_report(SimTime::from_micros(100));
        let text = prometheus_text(&r);

        // The exposition stays line-structured: every line is a comment
        // or `name[{labels}] value` — the raw newline never leaks.
        let gpu_line = text
            .lines()
            .find(|l| l.starts_with("olympian_client_gpu_ns{"))
            .expect("per-client gpu line");
        let (_, rest) = gpu_line.split_once("model=\"").unwrap();
        let (escaped, _) = rest.rsplit_once("\"}").unwrap();
        assert_eq!(escaped, "mo\\\\del \\\"v2\\\"\\nwith newline");
        assert_eq!(unescape_label(escaped), EVIL, "escape/unescape must round-trip");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.rsplit_once(' ').is_some(), "metric line shape broke: {line:?}");
        }
    }

    #[test]
    fn help_lines_escape_and_precede_types() {
        let r = busy_report();
        let text = prometheus_text(&r);
        let help = text.find("# HELP olympian_runs_completed").expect("HELP line");
        let ty = text.find("# TYPE olympian_runs_completed").expect("TYPE line");
        assert!(help < ty, "HELP must precede TYPE");
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
        assert_eq!(escape_label("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
    }

    #[test]
    fn exports_are_byte_stable() {
        let a = busy_report();
        let b = busy_report();
        assert_eq!(json_lines(&a), json_lines(&b));
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
    }

    #[test]
    fn empty_report_renders_empty() {
        let r = TelemetryReport::default();
        assert_eq!(prometheus_text(&r), "");
        let text = json_lines(&r);
        assert_eq!(text.lines().count(), 1, "meta line only");
    }
}
