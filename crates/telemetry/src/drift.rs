//! Streaming profile-drift detection over observed quantum lengths.
//!
//! The paper (§7) assumes offline kernel profiles stay representative; when
//! the deployment drifts (driver regressions, thermal throttling, datatype
//! changes) the realized quantum lengths move away from the target `Q` and
//! the profiles must be re-collected. [`DriftDetector`] watches the stream
//! of per-client quantum observations *during* the run with two classic
//! online statistics:
//!
//! * an **EWMA** of quantum length — the smoothed level, compared against
//!   the expected quantum with the same relative-`tolerance` rule the
//!   offline checker uses;
//! * a two-sided **CUSUM** on the normalized error — catches small
//!   sustained shifts well below the EWMA tolerance.
//!
//! Either statistic crossing its limit (after a warm-up of
//! `min_quanta.max(3)` observations, matching the offline floor) raises a
//! one-shot re-profile signal.
//!
//! The offline helpers [`validate`] and [`assess`] carry the exact
//! semantics `olympian::drift::detect_drift` has always had — strict
//! `deviation > tolerance` (exactly-at-tolerance is *not* stale) and
//! panics on non-positive tolerance or quantum — so the post-hoc checker
//! is now a thin wrapper over this module.

use simtime::SimDuration;

/// Validates drift-check parameters.
///
/// # Panics
///
/// Panics if `tolerance <= 0` ("tolerance must be positive") or
/// `expected` is zero ("quantum must be positive").
pub fn validate(expected: SimDuration, tolerance: f64) {
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(expected > SimDuration::ZERO, "quantum must be positive");
}

/// Compares an observed mean quantum (µs) against the expected quantum:
/// returns `(relative_deviation, stale)` where `stale` uses the strict
/// `deviation > tolerance` rule (exactly at tolerance is fresh).
///
/// # Panics
///
/// Same contract as [`validate`].
pub fn assess(expected: SimDuration, observed_mean_us: f64, tolerance: f64) -> (f64, bool) {
    validate(expected, tolerance);
    let expected_us = expected.as_micros_f64();
    let deviation = (observed_mean_us - expected_us).abs() / expected_us;
    (deviation, deviation > tolerance)
}

/// Streaming detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// The quantum length the scheduler targets (the paper's `Q`).
    pub expected_quantum: SimDuration,
    /// Relative deviation of the EWMA that flags the profile stale.
    pub tolerance: f64,
    /// Warm-up: observations before the detector may fire. Floored at 3,
    /// like the offline checker.
    pub min_quanta: usize,
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub ewma_alpha: f64,
    /// CUSUM slack per observation, in units of relative error. Shifts
    /// smaller than this are treated as noise.
    pub cusum_k: f64,
    /// CUSUM decision limit, in accumulated relative error.
    pub cusum_h: f64,
}

impl DriftConfig {
    /// A detector for the given target quantum and tolerance, with
    /// conventional defaults for the streaming statistics (slack `= tol/2`,
    /// limit `= 4 * tol`).
    ///
    /// # Panics
    ///
    /// Same contract as [`validate`].
    pub fn new(expected_quantum: SimDuration, tolerance: f64) -> DriftConfig {
        validate(expected_quantum, tolerance);
        DriftConfig {
            expected_quantum,
            tolerance,
            min_quanta: 3,
            ewma_alpha: 0.3,
            cusum_k: tolerance / 2.0,
            cusum_h: tolerance * 4.0,
        }
    }

    /// Overrides the warm-up observation count.
    pub fn with_min_quanta(mut self, n: usize) -> DriftConfig {
        self.min_quanta = n;
        self
    }
}

/// A drift crossing reported by [`DriftDetector::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSignal {
    /// Smoothed (EWMA) observed quantum length, µs.
    pub observed_mean_us: f64,
    /// Expected quantum length, µs.
    pub expected_us: f64,
    /// Relative deviation of the EWMA from the expected quantum.
    pub deviation: f64,
}

/// Per-client streaming drift detector.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    count: u64,
    ewma_us: f64,
    cusum_pos: f64,
    cusum_neg: f64,
    fired: bool,
}

impl DriftDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Same contract as [`validate`].
    pub fn new(cfg: DriftConfig) -> DriftDetector {
        validate(cfg.expected_quantum, cfg.tolerance);
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "ewma alpha must be in (0, 1]"
        );
        DriftDetector { cfg, count: 0, ewma_us: 0.0, cusum_pos: 0.0, cusum_neg: 0.0, fired: false }
    }

    /// Feeds one observed quantum. Returns a signal the first time the
    /// detector decides the profile is stale; later observations return
    /// `None` (one re-profile alert per client per run).
    pub fn observe(&mut self, quantum: SimDuration) -> Option<DriftSignal> {
        let v = quantum.as_micros_f64();
        let expected = self.cfg.expected_quantum.as_micros_f64();
        self.count += 1;
        self.ewma_us = if self.count == 1 {
            v
        } else {
            self.cfg.ewma_alpha * v + (1.0 - self.cfg.ewma_alpha) * self.ewma_us
        };
        let err = (v - expected) / expected;
        self.cusum_pos = (self.cusum_pos + err - self.cfg.cusum_k).max(0.0);
        self.cusum_neg = (self.cusum_neg - err - self.cfg.cusum_k).max(0.0);
        if self.fired || self.count < self.cfg.min_quanta.max(3) as u64 {
            return None;
        }
        let deviation = (self.ewma_us - expected).abs() / expected;
        let stale = deviation > self.cfg.tolerance
            || self.cusum_pos > self.cfg.cusum_h
            || self.cusum_neg > self.cfg.cusum_h;
        if !stale {
            return None;
        }
        self.fired = true;
        Some(DriftSignal { observed_mean_us: self.ewma_us, expected_us: expected, deviation })
    }

    /// Observations fed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current EWMA of quantum length, µs (0 before any observation).
    pub fn mean_us(&self) -> f64 {
        self.ewma_us
    }

    /// Whether the detector has already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn assess_matches_offline_semantics() {
        let (dev, stale) = assess(us(200), 260.0, 0.25);
        assert!((dev - 0.30).abs() < 1e-12);
        assert!(stale);
        // Exactly at tolerance is fresh (strict inequality).
        let (dev, stale) = assess(us(1000), 1100.0, 0.1);
        assert_eq!(dev, 0.1);
        assert!(!stale);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn assess_rejects_zero_tolerance() {
        assess(us(200), 200.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn assess_rejects_zero_quantum() {
        assess(SimDuration::ZERO, 200.0, 0.1);
    }

    #[test]
    fn on_target_stream_never_fires() {
        let mut d = DriftDetector::new(DriftConfig::new(us(200), 0.1));
        for i in 0..100u64 {
            // ±2% jitter around the target.
            let v = 196 + (i % 3) * 4;
            assert_eq!(d.observe(us(v)), None, "false positive at obs {i}");
        }
        assert_eq!(d.count(), 100);
        assert!(!d.fired());
    }

    #[test]
    fn large_shift_fires_once_via_ewma() {
        let mut d = DriftDetector::new(DriftConfig::new(us(200), 0.1));
        let mut signals = 0;
        for _ in 0..20 {
            if let Some(s) = d.observe(us(280)) {
                signals += 1;
                assert!(s.deviation > 0.1);
                assert!(s.observed_mean_us > 200.0);
                assert_eq!(s.expected_us, 200.0);
            }
        }
        assert_eq!(signals, 1, "alert must latch");
        assert!(d.fired());
    }

    #[test]
    fn small_sustained_shift_fires_via_cusum() {
        // +8% sustained: inside the 10% EWMA tolerance but the CUSUM
        // accumulates (0.08 - 0.05) per observation and crosses h = 0.4.
        let mut d = DriftDetector::new(DriftConfig::new(us(200), 0.1));
        let mut fired_at = None;
        for i in 0..60u64 {
            if d.observe(us(216)).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("CUSUM must catch a sustained +8% shift");
        assert!(at >= 10, "fired suspiciously early at {at}");
    }

    #[test]
    fn warmup_floor_holds_even_when_asked_for_less() {
        let mut d =
            DriftDetector::new(DriftConfig::new(us(200), 0.1).with_min_quanta(0));
        // Wildly off-target from the start, but the floor of 3 holds.
        assert_eq!(d.observe(us(500)), None);
        assert_eq!(d.observe(us(500)), None);
        assert!(d.observe(us(500)).is_some(), "third observation may fire");
    }
}
