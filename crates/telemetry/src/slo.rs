//! Online SLO monitoring with multi-window burn-rate alerting.
//!
//! Each [`SloSpec`] names a model, a per-run latency objective and an error
//! budget (the tolerated fraction of breaching runs). Run latencies are
//! bucketed into fixed windows aligned to the telemetry snapshot cadence;
//! at every snapshot boundary the monitor computes the *burn rate* — the
//! realized breach fraction divided by the budget — over a short and a long
//! trailing window (the classic multi-window pattern: the short window
//! makes the alert fast, the long window makes it stick only for sustained
//! burns). An alert fires when both windows exceed the threshold, and
//! re-arms only after the short window recovers, so one sustained burn
//! raises one alert.
//!
//! Everything here is virtual-time driven and pre-allocated: windows are
//! fixed rings sized at construction, so the monitor adds nothing to the
//! steady-state allocation profile and is byte-deterministic across
//! harness parallelism.

use simtime::SimDuration;

/// One latency objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Model name the objective applies to (exact match).
    pub model: String,
    /// Per-run latency objective.
    pub objective: SimDuration,
    /// Error budget: tolerated fraction of breaching runs, in `(0, 1)`.
    pub budget: f64,
}

impl SloSpec {
    /// Creates an objective.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is zero or `budget` is outside `(0, 1)`.
    pub fn new(model: impl Into<String>, objective: SimDuration, budget: f64) -> SloSpec {
        assert!(objective > SimDuration::ZERO, "objective must be positive");
        assert!(
            budget > 0.0 && budget < 1.0,
            "budget must be a fraction in (0, 1), got {budget}"
        );
        SloSpec { model: model.into(), objective, budget }
    }
}

/// Burn-rate window configuration, in units of snapshot intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindows {
    /// Short (fast) window length, in snapshot intervals.
    pub short: usize,
    /// Long (sustain) window length, in snapshot intervals.
    pub long: usize,
    /// Burn-rate alerting threshold; 1.0 means "burning budget exactly at
    /// the allowed rate".
    pub threshold: f64,
}

impl Default for BurnWindows {
    fn default() -> BurnWindows {
        BurnWindows { short: 3, long: 12, threshold: 2.0 }
    }
}

impl BurnWindows {
    /// Validates the window shape.
    ///
    /// # Panics
    ///
    /// Panics if either window is zero, the short window is not shorter
    /// than or equal to the long one, or the threshold is not positive.
    pub fn validate(&self) {
        assert!(self.short > 0 && self.long > 0, "burn windows must be non-empty");
        assert!(self.short <= self.long, "short window exceeds long window");
        assert!(
            self.threshold > 0.0 && self.threshold.is_finite(),
            "burn threshold must be positive"
        );
    }
}

/// Per-objective monitor state: a ring of closed `(good, breach)` buckets
/// plus the currently filling one.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    windows: BurnWindows,
    budget: f64,
    /// Closed buckets, newest last (ring of length `windows.long`).
    closed: Vec<(u64, u64)>,
    head: usize,
    filled: usize,
    cur_good: u64,
    cur_breach: u64,
    latched: bool,
}

/// A burn-rate crossing reported by [`SloMonitor::rotate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnSignal {
    /// Burn rate over the short window.
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
}

impl SloMonitor {
    /// Creates a monitor; allocates its rings now.
    pub fn new(windows: BurnWindows, budget: f64) -> SloMonitor {
        windows.validate();
        SloMonitor {
            windows,
            budget,
            closed: vec![(0, 0); windows.long],
            head: 0,
            filled: 0,
            cur_good: 0,
            cur_breach: 0,
            latched: false,
        }
    }

    /// Records one run outcome into the currently open bucket.
    #[inline]
    pub fn observe(&mut self, breach: bool) {
        if breach {
            self.cur_breach += 1;
        } else {
            self.cur_good += 1;
        }
    }

    /// Burn rate over the open bucket plus the `n - 1` newest closed ones.
    fn burn(&self, n: usize) -> f64 {
        let (mut good, mut breach) = (self.cur_good, self.cur_breach);
        let take = (n - 1).min(self.filled);
        for i in 0..take {
            let idx = (self.head + self.closed.len() - 1 - i) % self.closed.len();
            let (g, b) = self.closed[idx];
            good += g;
            breach += b;
        }
        let total = good + breach;
        if total == 0 {
            return 0.0;
        }
        (breach as f64 / total as f64) / self.budget
    }

    /// Closes the current bucket at a snapshot boundary and evaluates the
    /// alert condition. Returns a signal on the rising edge only.
    pub fn rotate(&mut self) -> Option<BurnSignal> {
        let short_burn = self.burn(self.windows.short);
        let long_burn = self.burn(self.windows.long);
        let breaching = self.cur_breach > 0
            || (0..(self.windows.short - 1).min(self.filled)).any(|i| {
                let idx = (self.head + self.closed.len() - 1 - i) % self.closed.len();
                self.closed[idx].1 > 0
            });
        // Close the bucket.
        self.closed[self.head] = (self.cur_good, self.cur_breach);
        self.head = (self.head + 1) % self.closed.len();
        self.filled = (self.filled + 1).min(self.closed.len());
        self.cur_good = 0;
        self.cur_breach = 0;

        let over = short_burn >= self.windows.threshold
            && long_burn >= self.windows.threshold
            && breaching;
        if over && !self.latched {
            self.latched = true;
            return Some(BurnSignal { short_burn, long_burn });
        }
        if short_burn < self.windows.threshold {
            self.latched = false;
        }
        None
    }

    /// Whether the alert latch is currently set (an alert fired and the
    /// short window has not recovered since).
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// Clears the alert latch without waiting for the short window to
    /// recover. The rising-edge latch exists so a passive observer sees one
    /// alert per sustained burn; an *active* consumer (the PR 9 control
    /// plane) acknowledges each alert by resetting the latch, so a burn
    /// that persists through its countermeasure fires again at the next
    /// boundary and the degradation ladder keeps escalating.
    pub fn reset_latch(&mut self) {
        self.latched = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::new("m", SimDuration::from_micros(500), 0.1)
    }

    #[test]
    fn spec_validates() {
        let s = spec();
        assert_eq!(s.model, "m");
        assert_eq!(s.budget, 0.1);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn spec_rejects_whole_budget() {
        SloSpec::new("m", SimDuration::from_micros(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "objective")]
    fn spec_rejects_zero_objective() {
        SloSpec::new("m", SimDuration::ZERO, 0.1);
    }

    #[test]
    #[should_panic(expected = "short window")]
    fn windows_reject_inverted_shape() {
        BurnWindows { short: 5, long: 3, threshold: 1.0 }.validate();
    }

    #[test]
    fn quiet_monitor_never_fires() {
        let mut m = SloMonitor::new(BurnWindows::default(), 0.1);
        for _ in 0..50 {
            m.observe(false);
            assert_eq!(m.rotate(), None);
        }
    }

    #[test]
    fn sustained_burn_fires_once_then_rearms_after_recovery() {
        let w = BurnWindows { short: 2, long: 4, threshold: 2.0 };
        let mut m = SloMonitor::new(w, 0.1);
        // 50% breaches → burn rate 5.0 over every window: fires on the
        // first rotation, stays latched afterwards.
        let mut fired = 0;
        for _ in 0..6 {
            m.observe(true);
            m.observe(false);
            if m.rotate().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "latched alert re-fired");
        // Recovery: enough clean buckets to drop the short window under
        // threshold re-arms the latch...
        for _ in 0..4 {
            for _ in 0..8 {
                m.observe(false);
            }
            assert_eq!(m.rotate(), None);
        }
        // ...so a fresh sustained burn alerts again.
        let mut refired = 0;
        for _ in 0..6 {
            m.observe(true);
            m.observe(false);
            if m.rotate().is_some() {
                refired += 1;
            }
        }
        assert_eq!(refired, 1, "alert did not re-arm after recovery");
    }

    #[test]
    fn reset_latch_lets_a_sustained_burn_fire_repeatedly() {
        // Regression test for the control-plane consumer: without the
        // reset, a sustained burn is a single rising edge and the ladder
        // could never observe repeated episodes.
        let w = BurnWindows { short: 2, long: 4, threshold: 2.0 };
        let mut m = SloMonitor::new(w, 0.1);
        let mut fired = 0;
        for _ in 0..6 {
            m.observe(true);
            m.observe(false);
            if m.rotate().is_some() {
                fired += 1;
                assert!(m.is_latched());
                m.reset_latch();
                assert!(!m.is_latched());
            }
        }
        assert_eq!(fired, 6, "acknowledged alerts must re-fire while burning");
        // The passive behaviour is unchanged when nobody resets.
        let mut passive = SloMonitor::new(w, 0.1);
        let mut passive_fired = 0;
        for _ in 0..6 {
            passive.observe(true);
            passive.observe(false);
            if passive.rotate().is_some() {
                passive_fired += 1;
            }
        }
        assert_eq!(passive_fired, 1);
    }

    #[test]
    fn short_blip_without_long_burn_stays_quiet() {
        let w = BurnWindows { short: 1, long: 8, threshold: 3.0 };
        let mut m = SloMonitor::new(w, 0.2);
        // Long run of good traffic dilutes the long window.
        for _ in 0..8 {
            for _ in 0..10 {
                m.observe(false);
            }
            assert_eq!(m.rotate(), None);
        }
        // One fully-breaching bucket: short burn = 1/0.2 = 5 ≥ 3, but the
        // long window is ~1/9 breaches → burn ≈ 0.56 < 3. No alert.
        m.observe(true);
        assert_eq!(m.rotate(), None);
    }

    #[test]
    fn empty_windows_burn_zero() {
        let mut m = SloMonitor::new(BurnWindows::default(), 0.01);
        for _ in 0..20 {
            assert_eq!(m.rotate(), None, "idle windows must not alert");
        }
    }
}
