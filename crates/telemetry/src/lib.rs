#![deny(missing_docs)]

//! Live telemetry for the serving stack: a deterministic online metrics
//! registry, an SLO burn-rate monitor and streaming drift detection.
//!
//! The PR 2 trace layer records *what happened* for post-hoc timelines;
//! this crate watches the run *while it executes*, the way an operator
//! would: counters, gauges and log-linear histograms
//! ([`registry::MetricsRegistry`]) are updated from engine hook points and
//! snapshotted at a fixed **virtual-time** cadence, so two runs of the same
//! experiment produce byte-identical telemetry however the surrounding
//! harness is parallelized — the same guarantee the trace ring gives.
//!
//! On top of the registry sit two online health monitors:
//!
//! * [`slo::SloMonitor`] — per-model latency objectives with multi-window
//!   burn-rate alerting;
//! * [`drift::DriftDetector`] — EWMA/CUSUM over the stream of observed
//!   quantum lengths, raising re-profile alerts mid-run (§7 of the paper).
//!
//! Alerts surface twice: as [`Alert`] values in the finished
//! [`TelemetryReport`] (and hence the JSON-lines export) and — via the
//! engine — as typed events in the trace ring, so they land on the
//! Perfetto timeline next to the quanta that caused them.
//!
//! Cost discipline matches the tracer: with telemetry off the hub holds no
//! buffers and every hook reduces to one predicted branch; the engine's
//! snapshot check is a single `t >= next_due()` compare against
//! `SimTime::MAX`. A `perfsuite` section holds this to noise.

use simtime::{SimDuration, SimTime};

pub mod drift;
pub mod export;
pub mod registry;
pub mod slo;

pub use drift::{DriftConfig, DriftDetector, DriftSignal};
pub use export::{escape_help, escape_label, json_lines, prometheus_text};
pub use registry::{CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry};
pub use slo::{BurnSignal, BurnWindows, SloMonitor, SloSpec};

/// Telemetry configuration carried by the engine config.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch; everything below is ignored when false.
    pub enabled: bool,
    /// Virtual-time snapshot cadence.
    pub interval: SimDuration,
    /// Latency objectives, matched to clients by model name.
    pub slos: Vec<SloSpec>,
    /// Burn-rate window shape shared by all objectives.
    pub burn: BurnWindows,
    /// Streaming drift detection over observed quanta; one detector per
    /// client is cloned from this template.
    pub drift: Option<DriftConfig>,
    /// Pre-run batching-plan observations `(batch_size, oldest_wait)`
    /// seeded into the registry (see `serving::batching::plan_telemetry`).
    pub batches: Vec<(u64, SimDuration)>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            interval: SimDuration::from_micros(1000),
            slos: Vec::new(),
            burn: BurnWindows::default(),
            drift: None,
            batches: Vec::new(),
        }
    }
}

impl TelemetryConfig {
    /// Telemetry disabled (the default).
    pub fn off() -> TelemetryConfig {
        TelemetryConfig::default()
    }

    /// Telemetry enabled at the given snapshot cadence.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enabled(interval: SimDuration) -> TelemetryConfig {
        assert!(interval > SimDuration::ZERO, "snapshot interval must be positive");
        TelemetryConfig { enabled: true, interval, ..TelemetryConfig::default() }
    }

    /// Adds a latency objective.
    pub fn with_slo(mut self, slo: SloSpec) -> TelemetryConfig {
        self.slos.push(slo);
        self
    }

    /// Overrides the burn-rate window shape.
    pub fn with_burn(mut self, burn: BurnWindows) -> TelemetryConfig {
        self.burn = burn;
        self
    }

    /// Enables streaming drift detection.
    pub fn with_drift(mut self, drift: DriftConfig) -> TelemetryConfig {
        self.drift = Some(drift);
        self
    }

    /// Seeds batching-plan observations.
    pub fn with_batches(mut self, batches: Vec<(u64, SimDuration)>) -> TelemetryConfig {
        self.batches = batches;
        self
    }

    /// Whether anything is recorded.
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if enabled with a zero interval or an invalid window shape.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(self.interval > SimDuration::ZERO, "snapshot interval must be positive");
        self.burn.validate();
        if let Some(d) = &self.drift {
            drift::validate(d.expected_quantum, d.tolerance);
        }
    }
}

/// Gauge values the engine samples at each snapshot boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineGauges {
    /// Clients parked in the admission queue.
    pub queue_depth: u64,
    /// Idle threads in the inter-op pool.
    pub pool_idle: u64,
    /// Jobs in the starvation queue.
    pub starving: u64,
    /// Jobs currently registered with the scheduler.
    pub active_jobs: u64,
    /// Token holder's `(cumulated, threshold)` cost units, for metering
    /// schedulers.
    pub holder_cost: Option<(u64, u64)>,
    /// Weight bytes resident under the lifecycle manager (0 when the
    /// engine runs without one).
    pub resident_model_bytes: u64,
}

/// An alert raised by one of the online monitors.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// A client's offline profile was flagged stale mid-run.
    Drift {
        /// Virtual time of the detection.
        at: SimTime,
        /// The drifting client.
        client: u32,
        /// Smoothed observed quantum length, µs.
        observed_us: f64,
        /// Expected quantum length, µs.
        expected_us: f64,
        /// Relative deviation of the smoothed level.
        deviation: f64,
    },
    /// An SLO burn rate crossed its threshold.
    SloBurn {
        /// Virtual time of the crossing (a snapshot boundary).
        at: SimTime,
        /// Index of the objective in [`TelemetryConfig::slos`].
        slo: u32,
        /// Model the objective applies to.
        model: String,
        /// Burn rate over the short window.
        short_burn: f64,
        /// Burn rate over the long window.
        long_burn: f64,
    },
    /// The fault-recovery layer acted: a circuit breaker opened, a client
    /// was shed, or the token-hold watchdog revoked a stalled holder.
    FaultRecovery {
        /// Virtual time of the action.
        at: SimTime,
        /// The affected client.
        client: u32,
        /// What happened, kebab-case: `breaker-open`, `retries-exhausted`,
        /// `circuit-open` or `watchdog-revoke`.
        action: &'static str,
        /// Action-specific detail: stall µs for watchdog revocations,
        /// attempt count for sheds, 0 otherwise.
        detail: u64,
    },
    /// The lifecycle rollout controller decided a canary: the candidate
    /// version was promoted or rolled back.
    Rollout {
        /// Virtual time of the decision.
        at: SimTime,
        /// The served model name.
        model: String,
        /// The candidate version number (1-based).
        version: u32,
        /// `"promote"` or `"rollback"`.
        action: &'static str,
        /// Candidate mean run latency, µs (0 when superseded undecided).
        cand_us: u64,
        /// Incumbent mean run latency, µs (0 when superseded undecided).
        base_us: u64,
    },
}

impl Alert {
    /// Virtual time of the alert.
    pub fn at(&self) -> SimTime {
        match self {
            Alert::Drift { at, .. }
            | Alert::SloBurn { at, .. }
            | Alert::FaultRecovery { at, .. }
            | Alert::Rollout { at, .. } => *at,
        }
    }

    /// Stable kebab-case label.
    pub fn kind(&self) -> &'static str {
        match self {
            Alert::Drift { .. } => "drift",
            Alert::SloBurn { .. } => "slo-burn",
            Alert::FaultRecovery { .. } => "fault-recovery",
            Alert::Rollout { .. } => "rollout",
        }
    }
}

/// The snapshot time series in struct-of-arrays layout: every boundary
/// appends into five shared vectors, so the steady-state snapshot path is
/// a handful of `memcpy`s with only amortized growth — never five fresh
/// `Vec` allocations per boundary. At the benchmark cadence (one snapshot
/// per 100 µs of virtual time) those allocations were the bulk of the
/// telemetry on-cost.
///
/// Rows are read back through [`SnapshotView`], which borrows the
/// per-snapshot spans in place.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotSeries {
    at: Vec<SimTime>,
    counters: Vec<u64>,
    gauges: Vec<f64>,
    hists: Vec<HistogramSnapshot>,
    gpu_ns: Vec<u64>,
    /// Exclusive end offset into `gpu_ns` per snapshot — the client table
    /// grows during a run, so those rows are ragged.
    gpu_ns_end: Vec<u32>,
    n_counters: u32,
    n_gauges: u32,
    n_hists: u32,
}

/// One registry snapshot, viewed in place; value slices are parallel to
/// the name lists in [`TelemetryReport`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Counter values (cumulative).
    pub counters: &'a [u64],
    /// Gauge values.
    pub gauges: &'a [f64],
    /// Histogram summaries (cumulative).
    pub hists: &'a [HistogramSnapshot],
    /// Cumulative attributed GPU nanoseconds per client.
    pub client_gpu_ns: &'a [u64],
}

impl SnapshotSeries {
    /// Number of snapshots taken.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// Whether no snapshot was taken.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// The `i`-th snapshot, if taken.
    pub fn get(&self, i: usize) -> Option<SnapshotView<'_>> {
        if i >= self.at.len() {
            return None;
        }
        let (nc, ng, nh) =
            (self.n_counters as usize, self.n_gauges as usize, self.n_hists as usize);
        let g0 = if i == 0 { 0 } else { self.gpu_ns_end[i - 1] as usize };
        Some(SnapshotView {
            at: self.at[i],
            counters: &self.counters[i * nc..(i + 1) * nc],
            gauges: &self.gauges[i * ng..(i + 1) * ng],
            hists: &self.hists[i * nh..(i + 1) * nh],
            client_gpu_ns: &self.gpu_ns[g0..self.gpu_ns_end[i] as usize],
        })
    }

    /// The final snapshot (totals at end of run), if any was taken.
    pub fn last(&self) -> Option<SnapshotView<'_>> {
        self.get(self.len().checked_sub(1)?)
    }

    /// Snapshots in time order.
    pub fn iter(&self) -> impl Iterator<Item = SnapshotView<'_>> + '_ {
        (0..self.len()).map(|i| self.get(i).expect("index in range"))
    }
}

/// The exact per-run completion log in struct-of-arrays layout: one row
/// per completed run, in completion order. The registry's log-linear
/// latency histogram is cheap but lossy (bucket-midpoint quantiles); this
/// log is the loss-free stream the `tsdb` layer ingests so stored runs
/// reproduce nearest-rank quantiles — and blame deltas — exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunLog {
    /// Completion time per run.
    pub at: Vec<SimTime>,
    /// Completing client per run.
    pub client: Vec<u32>,
    /// Registration-to-completion latency per run.
    pub latency: Vec<SimDuration>,
}

impl RunLog {
    /// Number of logged runs.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// Whether no run was logged.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Rows as `(at, client, latency)`, completion order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u32, SimDuration)> + '_ {
        (0..self.len()).map(|i| (self.at[i], self.client[i], self.latency[i]))
    }
}

/// The finished telemetry of one run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Whether telemetry was enabled (everything below is empty if not).
    pub enabled: bool,
    /// Snapshot cadence.
    pub interval: SimDuration,
    /// Run makespan (time of the final, possibly partial, snapshot).
    pub makespan: SimTime,
    /// Counter names, in registration order.
    pub counter_names: Vec<&'static str>,
    /// Gauge names.
    pub gauge_names: Vec<&'static str>,
    /// Histogram names.
    pub hist_names: Vec<&'static str>,
    /// Model name per client, indexed by client id.
    pub client_models: Vec<String>,
    /// The configured latency objectives.
    pub slos: Vec<SloSpec>,
    /// Snapshots in time order; the last one holds the final totals.
    pub snapshots: SnapshotSeries,
    /// Alerts in time order.
    pub alerts: Vec<Alert>,
    /// Exact per-run completion log, completion order.
    pub run_log: RunLog,
}

impl TelemetryReport {
    /// The expected snapshot count for a makespan: one per full interval
    /// plus a final partial one — `max(1, ceil(makespan / interval))`.
    pub fn expected_snapshots(&self) -> u64 {
        let m = self.makespan.as_nanos();
        let i = self.interval.as_nanos();
        m.div_ceil(i).max(1)
    }

    /// The final snapshot (totals at end of run), if telemetry ran.
    pub fn last(&self) -> Option<SnapshotView<'_>> {
        self.snapshots.last()
    }

    /// Final value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let i = self.counter_names.iter().position(|n| *n == name)?;
        Some(self.last()?.counters[i])
    }

    /// Final summary of a histogram by name.
    pub fn hist(&self, name: &str) -> Option<HistogramSnapshot> {
        let i = self.hist_names.iter().position(|n| *n == name)?;
        Some(self.last()?.hists[i])
    }
}

/// Metric handles, registered once at hub construction.
#[derive(Debug, Clone, Copy)]
struct Ids {
    c_admitted: CounterId,
    c_oom: CounterId,
    c_runs_started: CounterId,
    c_runs_completed: CounterId,
    c_deadline: CounterId,
    c_switches: CounterId,
    c_slo_breaches: CounterId,
    c_alerts_drift: CounterId,
    c_alerts_slo: CounterId,
    c_batches: CounterId,
    c_faults_kernel: CounterId,
    c_faults_alloc: CounterId,
    c_retries: CounterId,
    c_breaker_open: CounterId,
    c_shed: CounterId,
    c_watchdog: CounterId,
    c_versions_loaded: CounterId,
    c_versions_unloaded: CounterId,
    c_versions_evicted: CounterId,
    c_warmup_runs: CounterId,
    c_promotions: CounterId,
    c_rollbacks: CounterId,
    c_drains: CounterId,
    c_trace_dropped: CounterId,
    c_control_transitions: CounterId,
    c_admission_shed: CounterId,
    c_batch_shrinks: CounterId,
    c_profile_rebinds: CounterId,
    c_laxity_cancels: CounterId,
    c_cluster_routes: CounterId,
    c_cluster_migrations: CounterId,
    c_cluster_reconfigs: CounterId,
    g_queue: GaugeId,
    g_pool_idle: GaugeId,
    g_starving: GaugeId,
    g_active_jobs: GaugeId,
    g_holder_ratio: GaugeId,
    g_fairness: GaugeId,
    g_resident: GaugeId,
    h_quantum: HistogramId,
    h_handoff: HistogramId,
    h_latency: HistogramId,
    h_batch_size: HistogramId,
    h_batch_wait: HistogramId,
}

#[derive(Debug, Clone)]
struct ClientState {
    model: String,
    slo: Option<u32>,
    drift: Option<DriftDetector>,
    gpu_ns: u64,
}

/// The engine-side telemetry recorder.
///
/// All hooks are no-ops behind a single predicted branch when telemetry is
/// off; the snapshot cadence is driven by the engine comparing event times
/// against [`next_due`](TelemetryHub::next_due), which is `SimTime::MAX`
/// when off so the hot loop pays exactly one compare.
#[derive(Debug)]
pub struct TelemetryHub {
    on: bool,
    interval: SimDuration,
    next_due: SimTime,
    registry: MetricsRegistry,
    ids: Option<Ids>,
    drift_template: Option<DriftConfig>,
    slo_specs: Vec<SloSpec>,
    monitors: Vec<SloMonitor>,
    clients: Vec<ClientState>,
    snapshots: SnapshotSeries,
    /// Scratch for the per-snapshot fairness computation, reused across
    /// boundaries so the snapshot path stays allocation-free.
    shares_scratch: Vec<f64>,
    alerts: Vec<Alert>,
    run_log: RunLog,
}

impl TelemetryHub {
    /// Creates a hub. Allocates nothing when telemetry is off.
    ///
    /// # Panics
    ///
    /// Panics on an invalid enabled configuration (see
    /// [`TelemetryConfig::validate`]).
    pub fn new(cfg: &TelemetryConfig) -> TelemetryHub {
        cfg.validate();
        if !cfg.enabled {
            return TelemetryHub {
                on: false,
                interval: cfg.interval,
                next_due: SimTime::MAX,
                registry: MetricsRegistry::new(),
                ids: None,
                drift_template: None,
                slo_specs: Vec::new(),
                monitors: Vec::new(),
                clients: Vec::new(),
                snapshots: SnapshotSeries::default(),
                shares_scratch: Vec::new(),
                alerts: Vec::new(),
                run_log: RunLog::default(),
            };
        }
        let mut registry = MetricsRegistry::new();
        let ids = Ids {
            c_admitted: registry.counter("clients_admitted"),
            c_oom: registry.counter("clients_rejected_oom"),
            c_runs_started: registry.counter("runs_started"),
            c_runs_completed: registry.counter("runs_completed"),
            c_deadline: registry.counter("runs_deadline_cancelled"),
            c_switches: registry.counter("token_switches"),
            c_slo_breaches: registry.counter("slo_breaches"),
            c_alerts_drift: registry.counter("alerts_drift"),
            c_alerts_slo: registry.counter("alerts_slo_burn"),
            c_batches: registry.counter("batches_planned"),
            c_faults_kernel: registry.counter("faults_kernel"),
            c_faults_alloc: registry.counter("faults_alloc"),
            c_retries: registry.counter("kernel_retries"),
            c_breaker_open: registry.counter("breaker_open_events"),
            c_shed: registry.counter("clients_shed"),
            c_watchdog: registry.counter("watchdog_revocations"),
            c_versions_loaded: registry.counter("versions_loaded"),
            c_versions_unloaded: registry.counter("versions_unloaded"),
            c_versions_evicted: registry.counter("versions_evicted"),
            c_warmup_runs: registry.counter("warmup_runs"),
            c_promotions: registry.counter("canary_promotions"),
            c_rollbacks: registry.counter("canary_rollbacks"),
            c_drains: registry.counter("drains_started"),
            c_trace_dropped: registry.counter("trace_dropped_events"),
            c_control_transitions: registry.counter("control_transitions"),
            c_admission_shed: registry.counter("clients_admission_shed"),
            c_batch_shrinks: registry.counter("control_batch_shrinks"),
            c_profile_rebinds: registry.counter("control_profile_rebinds"),
            c_laxity_cancels: registry.counter("control_laxity_cancels"),
            c_cluster_routes: registry.counter("cluster_routes"),
            c_cluster_migrations: registry.counter("cluster_migrations"),
            c_cluster_reconfigs: registry.counter("cluster_reconfigs"),
            g_queue: registry.gauge("admission_queue_depth"),
            g_pool_idle: registry.gauge("pool_idle_threads"),
            g_starving: registry.gauge("starving_jobs"),
            g_active_jobs: registry.gauge("scheduler_active_jobs"),
            g_holder_ratio: registry.gauge("holder_cost_ratio"),
            g_fairness: registry.gauge("gpu_share_fairness"),
            g_resident: registry.gauge("resident_model_bytes"),
            h_quantum: registry.histogram("quantum_us"),
            h_handoff: registry.histogram("handoff_us"),
            h_latency: registry.histogram("run_latency_us"),
            h_batch_size: registry.histogram("batch_size"),
            h_batch_wait: registry.histogram("batch_wait_us"),
        };
        for &(size, wait) in &cfg.batches {
            registry.inc(ids.c_batches, 1);
            registry.observe(ids.h_batch_size, size);
            registry.observe(ids.h_batch_wait, wait.as_nanos() / 1_000);
        }
        let monitors = cfg
            .slos
            .iter()
            .map(|s| SloMonitor::new(cfg.burn, s.budget))
            .collect();
        TelemetryHub {
            on: true,
            interval: cfg.interval,
            next_due: SimTime::ZERO + cfg.interval,
            registry,
            ids: Some(ids),
            drift_template: cfg.drift.clone(),
            slo_specs: cfg.slos.clone(),
            monitors,
            clients: Vec::new(),
            snapshots: SnapshotSeries::default(),
            shares_scratch: Vec::new(),
            alerts: Vec::new(),
            run_log: RunLog::default(),
        }
    }

    /// Whether anything is recorded. Call sites use this to skip building
    /// hook payloads entirely.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Next snapshot boundary (`SimTime::MAX` when off) — the engine's
    /// one-branch hot-loop check.
    #[inline]
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    fn ids(&self) -> Ids {
        self.ids.expect("telemetry hooks called while off")
    }

    /// Registers a client (called at admission). Grows the per-client
    /// table — the only allocation after construction, and only at
    /// client-arrival granularity.
    pub fn bind_client(&mut self, client: u32, model: &str) {
        if !self.on {
            return;
        }
        let idx = client as usize;
        if self.clients.len() <= idx {
            self.clients.resize(
                idx + 1,
                ClientState { model: String::new(), slo: None, drift: None, gpu_ns: 0 },
            );
        }
        self.clients[idx] = ClientState {
            model: model.to_string(),
            slo: self
                .slo_specs
                .iter()
                .position(|s| s.model == model)
                .map(|i| i as u32),
            drift: self.drift_template.clone().map(DriftDetector::new),
            gpu_ns: 0,
        };
        let ids = self.ids();
        self.registry.inc(ids.c_admitted, 1);
    }

    /// A client's admission failed on GPU memory.
    #[inline]
    pub fn on_oom_reject(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_oom, 1);
    }

    /// A `Session::Run` registered.
    #[inline]
    pub fn on_run_start(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_runs_started, 1);
    }

    /// A run was cancelled by its deadline.
    #[inline]
    pub fn on_deadline_cancel(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_deadline, 1);
    }

    /// The token moved.
    #[inline]
    pub fn on_token_switch(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_switches, 1);
    }

    /// Token hand-off latency: grant to the holder's first kernel
    /// submission.
    #[inline]
    pub fn on_handoff(&mut self, latency: SimDuration) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.observe(ids.h_handoff, latency.as_nanos() / 1_000);
    }

    /// A kernel launch transiently failed (injected fault).
    #[inline]
    pub fn on_kernel_fault(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_faults_kernel, 1);
    }

    /// A memory reservation transiently failed (injected fault).
    #[inline]
    pub fn on_alloc_fault(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_faults_alloc, 1);
    }

    /// A retry was scheduled after backoff.
    #[inline]
    pub fn on_retry(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_retries, 1);
    }

    /// A client's circuit breaker tripped open; lands on the
    /// `fault-recovery` alert stream.
    pub fn on_breaker_open(&mut self, at: SimTime, client: u32) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_breaker_open, 1);
        self.alerts.push(Alert::FaultRecovery {
            at,
            client,
            action: "breaker-open",
            detail: 0,
        });
    }

    /// A client was shed by the recovery layer (`action` is
    /// `retries-exhausted` or `circuit-open`, `detail` the attempt count).
    pub fn on_client_shed(&mut self, at: SimTime, client: u32, action: &'static str, detail: u64) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_shed, 1);
        self.alerts.push(Alert::FaultRecovery { at, client, action, detail });
    }

    /// The token-hold watchdog revoked a stalled holder's token.
    pub fn on_watchdog_revoke(&mut self, at: SimTime, client: u32, stalled_us: u64) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_watchdog, 1);
        self.alerts.push(Alert::FaultRecovery {
            at,
            client,
            action: "watchdog-revoke",
            detail: stalled_us,
        });
    }

    /// A model version's weights started loading (lifecycle layer).
    #[inline]
    pub fn on_version_load(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_versions_loaded, 1);
    }

    /// A drained version was unloaded (lifecycle layer).
    #[inline]
    pub fn on_version_unload(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_versions_unloaded, 1);
    }

    /// An idle version was evicted for memory (lifecycle layer).
    #[inline]
    pub fn on_version_evict(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_versions_evicted, 1);
    }

    /// A freshly loaded version completed one warm-up run (lifecycle
    /// layer).
    #[inline]
    pub fn on_warmup_run(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_warmup_runs, 1);
    }

    /// The trace ring overwrote `n` events over the whole run (reported
    /// once at finalization, before the final snapshot). A non-zero value
    /// flags every trace-derived attribution as computed from a truncated
    /// stream.
    #[inline]
    pub fn on_trace_dropped(&mut self, n: u64) {
        if !self.on || n == 0 {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_trace_dropped, n);
    }

    /// The control plane's degradation ladder changed rungs (control
    /// layer).
    #[inline]
    pub fn on_control_transition(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_control_transitions, 1);
    }

    /// A new admission was rejected by the Shedding rung (control layer).
    #[inline]
    pub fn on_admission_shed(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_admission_shed, 1);
    }

    /// A run's batch hint was shrunk by the Degraded rung (control layer).
    #[inline]
    pub fn on_batch_shrink(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_batch_shrinks, 1);
    }

    /// A drift alert triggered an in-run profile rebind (control layer).
    #[inline]
    pub fn on_profile_rebind(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_profile_rebinds, 1);
    }

    /// A laxity-negative run was cancelled early (control layer).
    #[inline]
    pub fn on_laxity_cancel(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_laxity_cancels, 1);
    }

    /// The cluster router stamped an arriving run and picked a device
    /// (cluster layer).
    #[inline]
    pub fn on_cluster_route(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_cluster_routes, 1);
    }

    /// The reconfiguration plan moved a model between devices (cluster
    /// layer).
    #[inline]
    pub fn on_cluster_migrate(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_cluster_migrations, 1);
    }

    /// One `ClusterTick` solved and executed a reconfiguration plan
    /// (cluster layer).
    #[inline]
    pub fn on_cluster_reconfig(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_cluster_reconfigs, 1);
    }

    /// Acknowledges a burn alert on objective `slo`, resetting that
    /// monitor's rising-edge latch so a burn that persists through the
    /// control plane's countermeasure fires again at the next boundary.
    #[inline]
    pub fn reset_burn_latch(&mut self, slo: u32) {
        if !self.on {
            return;
        }
        if let Some(m) = self.monitors.get_mut(slo as usize) {
            m.reset_latch();
        }
    }

    /// A version started draining (lifecycle layer).
    #[inline]
    pub fn on_drain_start(&mut self) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_drains, 1);
    }

    /// The rollout controller decided a canary (`action` is `"promote"`
    /// or `"rollback"`); lands on the `rollout` alert stream.
    pub fn on_rollout(
        &mut self,
        at: SimTime,
        model: &str,
        version: u32,
        action: &'static str,
        cand_us: u64,
        base_us: u64,
    ) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        if action == "promote" {
            self.registry.inc(ids.c_promotions, 1);
        } else {
            self.registry.inc(ids.c_rollbacks, 1);
        }
        self.alerts.push(Alert::Rollout {
            at,
            model: model.to_string(),
            version,
            action,
            cand_us,
            base_us,
        });
    }

    /// A quantum was flushed for `client`: feeds the quantum histogram,
    /// the per-client GPU share and the streaming drift detector. Returns
    /// a drift alert the first time that client's detector fires.
    pub fn on_quantum(&mut self, client: u32, gpu: SimDuration, at: SimTime) -> Option<Alert> {
        if !self.on {
            return None;
        }
        let ids = self.ids();
        self.registry.observe(ids.h_quantum, gpu.as_nanos() / 1_000);
        let state = self.clients.get_mut(client as usize)?;
        state.gpu_ns += gpu.as_nanos();
        let signal = state.drift.as_mut()?.observe(gpu)?;
        self.registry.inc(ids.c_alerts_drift, 1);
        let alert = Alert::Drift {
            at,
            client,
            observed_us: signal.observed_mean_us,
            expected_us: signal.expected_us,
            deviation: signal.deviation,
        };
        self.alerts.push(alert.clone());
        Some(alert)
    }

    /// A run completed with the given latency at virtual time `at`: feeds
    /// the latency histogram, the exact run log and the owning model's
    /// SLO window.
    pub fn on_run_complete(&mut self, client: u32, latency: SimDuration, at: SimTime) {
        if !self.on {
            return;
        }
        let ids = self.ids();
        self.registry.inc(ids.c_runs_completed, 1);
        self.registry.observe(ids.h_latency, latency.as_nanos() / 1_000);
        self.run_log.at.push(at);
        self.run_log.client.push(client);
        self.run_log.latency.push(latency);
        let Some(state) = self.clients.get(client as usize) else { return };
        if let Some(slo) = state.slo {
            let breach = latency > self.slo_specs[slo as usize].objective;
            if breach {
                self.registry.inc(ids.c_slo_breaches, 1);
            }
            self.monitors[slo as usize].observe(breach);
        }
    }

    fn snapshot_at(&mut self, at: SimTime, gauges: &EngineGauges, fired: &mut Vec<Alert>) {
        // Buffered histogram observations become visible at snapshot
        // boundaries — flush before anything below reads the registry.
        self.registry.flush();
        let ids = self.ids();
        self.registry.set_gauge(ids.g_queue, gauges.queue_depth as f64);
        self.registry.set_gauge(ids.g_pool_idle, gauges.pool_idle as f64);
        self.registry.set_gauge(ids.g_starving, gauges.starving as f64);
        self.registry.set_gauge(ids.g_active_jobs, gauges.active_jobs as f64);
        let ratio = match gauges.holder_cost {
            Some((c, t)) if t > 0 => c as f64 / t as f64,
            _ => 0.0,
        };
        self.registry.set_gauge(ids.g_holder_ratio, ratio);
        self.registry.set_gauge(ids.g_resident, gauges.resident_model_bytes as f64);
        self.shares_scratch.clear();
        self.shares_scratch.extend(self.clients.iter().map(|c| c.gpu_ns as f64));
        // An idle window (no clients yet) must not panic: try_* + neutral 1.0.
        let fairness = metrics::try_jain_fairness(&self.shares_scratch).unwrap_or(1.0);
        self.registry.set_gauge(ids.g_fairness, fairness);

        // Rotate the SLO windows; burn alerts are stamped at the boundary
        // and counted inside this snapshot.
        for (i, m) in self.monitors.iter_mut().enumerate() {
            if let Some(sig) = m.rotate() {
                self.registry.inc(ids.c_alerts_slo, 1);
                let alert = Alert::SloBurn {
                    at,
                    slo: i as u32,
                    model: self.slo_specs[i].model.clone(),
                    short_burn: sig.short_burn,
                    long_burn: sig.long_burn,
                };
                self.alerts.push(alert.clone());
                fired.push(alert);
            }
        }

        // Append the row into the struct-of-arrays series: plain extends,
        // no per-snapshot allocation.
        let s = &mut self.snapshots;
        s.at.push(at);
        s.counters.extend_from_slice(self.registry.counter_values());
        s.gauges.extend_from_slice(self.registry.gauge_values());
        self.registry.snap_hists_into(&mut s.hists);
        s.gpu_ns.extend(self.clients.iter().map(|c| c.gpu_ns));
        s.gpu_ns_end.push(s.gpu_ns.len() as u32);
        s.n_counters = self.registry.counter_values().len() as u32;
        s.n_gauges = self.registry.gauge_values().len() as u32;
        s.n_hists = self.registry.hist_names().len() as u32;
    }

    /// Emits every snapshot boundary due at or before `now`. The engine
    /// calls this from the event loop when `t >= next_due()`; any alerts
    /// fired at the boundaries are returned for recording into the trace.
    pub fn tick(&mut self, now: SimTime, gauges: &EngineGauges) -> Vec<Alert> {
        let mut fired = Vec::new();
        while self.next_due <= now {
            let at = self.next_due;
            self.snapshot_at(at, gauges, &mut fired);
            self.next_due = at + self.interval;
        }
        fired
    }

    /// Flushes the tail at end of run: remaining full boundaries, then one
    /// final (possibly partial) snapshot at `makespan` so the last window
    /// is never lost. Total snapshots = `max(1, ceil(makespan/interval))`.
    pub fn finalize(&mut self, makespan: SimTime, gauges: &EngineGauges) -> Vec<Alert> {
        if !self.on {
            return Vec::new();
        }
        let mut fired = self.tick(makespan, gauges);
        let partial = match self.snapshots.last() {
            Some(s) => s.at < makespan,
            None => true,
        };
        if partial {
            self.snapshot_at(makespan, gauges, &mut fired);
        }
        fired
    }

    /// Consumes the hub into its report.
    pub fn into_report(self, makespan: SimTime) -> TelemetryReport {
        TelemetryReport {
            enabled: self.on,
            interval: self.interval,
            makespan,
            counter_names: self.registry.counter_names().to_vec(),
            gauge_names: self.registry.gauge_names().to_vec(),
            hist_names: self.registry.hist_names().to_vec(),
            client_models: self.clients.iter().map(|c| c.model.clone()).collect(),
            slos: self.slo_specs,
            snapshots: self.snapshots,
            alerts: self.alerts,
            run_log: self.run_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn off_hub_is_inert() {
        let mut h = TelemetryHub::new(&TelemetryConfig::off());
        assert!(!h.is_on());
        assert_eq!(h.next_due(), SimTime::MAX);
        h.bind_client(0, "m");
        assert_eq!(h.on_quantum(0, us(100), t(10)), None);
        h.on_run_complete(0, us(50), t(50));
        assert!(h.tick(t(1_000_000), &EngineGauges::default()).is_empty());
        assert!(h.finalize(t(1_000_000), &EngineGauges::default()).is_empty());
        let r = h.into_report(t(1_000_000));
        assert!(!r.enabled);
        assert!(r.snapshots.is_empty());
    }

    #[test]
    fn snapshot_count_matches_interval_arithmetic() {
        let mut h = TelemetryHub::new(&TelemetryConfig::enabled(us(100)));
        h.bind_client(0, "m");
        let g = EngineGauges::default();
        // Events at 250µs: boundaries 100 and 200 fire.
        assert!(h.tick(t(250), &g).is_empty());
        assert_eq!(h.snapshots.len(), 2);
        // Makespan 530µs: boundaries 300,400,500 plus the partial at 530.
        h.finalize(t(530), &g);
        let r = h.into_report(t(530));
        assert_eq!(r.snapshots.len(), 6);
        assert_eq!(r.expected_snapshots(), 6);
        assert_eq!(r.snapshots.last().unwrap().at, t(530));
        // Timestamps strictly increase.
        assert!(r
            .snapshots
            .iter()
            .zip(r.snapshots.iter().skip(1))
            .all(|(a, b)| a.at < b.at));
    }

    #[test]
    fn exact_multiple_makespan_has_no_partial_snapshot() {
        let mut h = TelemetryHub::new(&TelemetryConfig::enabled(us(100)));
        let g = EngineGauges::default();
        h.tick(t(300), &g);
        h.finalize(t(300), &g);
        let r = h.into_report(t(300));
        assert_eq!(r.snapshots.len(), 3);
        assert_eq!(r.expected_snapshots(), 3);
    }

    #[test]
    fn zero_makespan_still_emits_one_snapshot() {
        let mut h = TelemetryHub::new(&TelemetryConfig::enabled(us(100)));
        h.finalize(SimTime::ZERO, &EngineGauges::default());
        let r = h.into_report(SimTime::ZERO);
        assert_eq!(r.snapshots.len(), 1);
        assert_eq!(r.expected_snapshots(), 1);
    }

    #[test]
    fn counters_histograms_and_shares_accumulate() {
        let cfg = TelemetryConfig::enabled(us(100))
            .with_slo(SloSpec::new("m", us(500), 0.1));
        let mut h = TelemetryHub::new(&cfg);
        h.bind_client(0, "m");
        h.bind_client(1, "other");
        h.on_run_start();
        h.on_token_switch();
        h.on_handoff(us(80));
        assert!(h.on_quantum(0, us(200), t(50)).is_none(), "no drift config");
        h.on_quantum(1, us(100), t(60));
        h.on_run_complete(0, us(700), t(700)); // breach of the 500µs objective
        h.on_run_complete(1, us(100), t(800)); // no SLO bound to "other"
        h.finalize(t(90), &EngineGauges { queue_depth: 2, ..Default::default() });
        let r = h.into_report(t(90));
        assert_eq!(r.counter("clients_admitted"), Some(2));
        assert_eq!(r.counter("runs_completed"), Some(2));
        assert_eq!(r.counter("slo_breaches"), Some(1));
        assert_eq!(r.counter("token_switches"), Some(1));
        let q = r.hist("quantum_us").unwrap();
        assert_eq!(q.count, 2);
        assert_eq!(q.sum, 300);
        let last = r.last().unwrap();
        assert_eq!(last.client_gpu_ns, vec![200_000, 100_000]);
        let qd = r.gauge_names.iter().position(|n| *n == "admission_queue_depth").unwrap();
        assert_eq!(last.gauges[qd], 2.0);
        assert_eq!(r.client_models, vec!["m".to_string(), "other".to_string()]);
    }

    #[test]
    fn drift_and_slo_alerts_flow_into_the_report() {
        let cfg = TelemetryConfig::enabled(us(100))
            .with_slo(SloSpec::new("m", us(100), 0.1))
            .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
            .with_drift(DriftConfig::new(us(200), 0.1));
        let mut h = TelemetryHub::new(&cfg);
        h.bind_client(0, "m");
        let g = EngineGauges::default();
        let mut drift_alerts = 0;
        for i in 0..10u64 {
            // Quanta 50% over target: drift fires once warm.
            if h.on_quantum(0, us(300), t(i * 50 + 10)).is_some() {
                drift_alerts += 1;
            }
            // Every run breaches the 100µs objective.
            h.on_run_complete(0, us(400), t(400));
            h.tick(t((i + 1) * 50), &g);
        }
        h.finalize(t(500), &g);
        assert_eq!(drift_alerts, 1);
        let r = h.into_report(t(500));
        assert_eq!(r.counter("alerts_drift"), Some(1));
        assert!(r.counter("alerts_slo_burn").unwrap() >= 1);
        assert!(r.alerts.iter().any(|a| a.kind() == "drift"));
        assert!(r.alerts.iter().any(|a| a.kind() == "slo-burn"));
        // Alerts are stamped in non-decreasing time order.
        assert!(r.alerts.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn trace_drop_count_lands_in_the_registry() {
        let mut h = TelemetryHub::new(&TelemetryConfig::enabled(us(100)));
        h.on_trace_dropped(0);
        h.on_trace_dropped(7);
        h.finalize(t(50), &EngineGauges::default());
        let r = h.into_report(t(50));
        assert_eq!(r.counter("trace_dropped_events"), Some(7));
    }

    #[test]
    fn batch_plan_seeds_the_registry() {
        let cfg = TelemetryConfig::enabled(us(100))
            .with_batches(vec![(4, us(120)), (2, us(30))]);
        let mut h = TelemetryHub::new(&cfg);
        h.finalize(t(50), &EngineGauges::default());
        let r = h.into_report(t(50));
        assert_eq!(r.counter("batches_planned"), Some(2));
        let s = r.hist("batch_size").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 6);
        assert_eq!(r.hist("batch_wait_us").unwrap().sum, 150);
    }
}
