//! The online metrics registry: counters, gauges and log-linear histograms.
//!
//! Every metric is registered up front (at hub construction), which is the
//! only time the registry allocates; the hot-path mutators — [`inc`],
//! [`set_gauge`], [`observe`] — are index arithmetic on pre-sized vectors,
//! so steady state allocates nothing and stays deterministic.
//!
//! [`inc`]: MetricsRegistry::inc
//! [`set_gauge`]: MetricsRegistry::set_gauge
//! [`observe`]: MetricsRegistry::observe

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets (≈6% relative error per bucket).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below `SUBS` get one exact bucket each; above, one group of
/// `SUBS` buckets per octave up to `u64::MAX` (msb 4..=63 → 60 groups).
const BUCKETS: usize = SUBS + 60 * SUBS;

/// Maps a value to its log-linear bucket index.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (msb - SUB_BITS + 1) as usize * SUBS + sub
    }
}

/// Midpoint of a bucket, used when reporting quantiles. Integer-derived,
/// so quantile estimates are bit-exact across runs.
fn bucket_mid(i: usize) -> f64 {
    if i < SUBS {
        i as f64
    } else {
        let group = (i / SUBS) as u32; // 1-based beyond the exact range
        let sub = (i % SUBS) as u64;
        let msb = group + SUB_BITS - 1;
        let width = 1u64 << (msb - SUB_BITS);
        let lower = (SUBS as u64 + sub) * width;
        lower as f64 + width as f64 / 2.0
    }
}

/// A fixed-size log-linear histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u32>,
    count: u64,
    sum: u64,
    max: u64,
    /// Occupied bucket range (`lo..=hi`), so quantile scans touch only the
    /// populated span instead of all [`BUCKETS`] cells. `lo > hi` ⇔ empty.
    lo: usize,
    hi: usize,
    /// Snapshot as of the last [`snap`](Self::snap), valid while `!dirty`.
    /// Histograms are cumulative, so a boundary with no new observations
    /// reuses the cached row instead of re-running the quantile scans —
    /// at snapshot cadences far above the observation rate that is almost
    /// every boundary.
    cache: HistogramSnapshot,
    dirty: bool,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            lo: BUCKETS,
            hi: 0,
            cache: HistogramSnapshot::default(),
            dirty: false,
        }
    }

    #[inline]
    fn observe(&mut self, v: u64) {
        let b = bucket_of(v);
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.lo = self.lo.min(b);
        self.hi = self.hi.max(b);
        self.dirty = true;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimated quantile (`0.0..=1.0`) as the midpoint of the bucket
    /// holding the `ceil(q * count)`-th observation; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in self.lo..=self.hi {
            seen += u64::from(self.counts[i]);
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        Some(bucket_mid(self.hi))
    }

    /// Compact copy for a snapshot: the cached row when nothing changed
    /// since the last [`snap_mut`](Self::snap_mut), else one fused scan.
    pub fn snap(&self) -> HistogramSnapshot {
        if self.dirty { self.compute_snap() } else { self.cache }
    }

    /// Like [`snap`](Self::snap), but refreshes the cache so later calls
    /// on an unchanged histogram are a struct copy.
    fn snap_mut(&mut self) -> HistogramSnapshot {
        if self.dirty {
            self.cache = self.compute_snap();
            self.dirty = false;
        }
        self.cache
    }

    /// Builds the snapshot row with p50 and p99 resolved in a single pass
    /// over the occupied bucket span. Produces exactly what
    /// [`quantile`](Self::quantile)`(0.50)` / `(0.99)` produce.
    fn compute_snap(&self) -> HistogramSnapshot {
        if self.count == 0 {
            return HistogramSnapshot::default();
        }
        let r50 = ((0.50 * self.count as f64).ceil() as u64).max(1);
        let r99 = ((0.99 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut p50 = None;
        let mut p99 = None;
        for i in self.lo..=self.hi {
            seen += u64::from(self.counts[i]);
            if p50.is_none() && seen >= r50 {
                p50 = Some(bucket_mid(i));
            }
            if seen >= r99 {
                p99 = Some(bucket_mid(i));
                break;
            }
        }
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: p50.unwrap_or_else(|| bucket_mid(self.hi)),
            p99: p99.unwrap_or_else(|| bucket_mid(self.hi)),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations so far.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Estimated median (bucket midpoint), 0 when empty.
    pub p50: f64,
    /// Estimated 99th percentile (bucket midpoint), 0 when empty.
    pub p99: f64,
}

/// The registry: named counters, gauges and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<f64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
    /// Histogram observations buffered since the last [`flush`]: recording
    /// is a contiguous push, and the bucket math runs batched at snapshot
    /// boundaries where its cache footprint is paid once.
    ///
    /// [`flush`]: MetricsRegistry::flush
    pending: Vec<(u32, u64)>,
}

/// Pending-observation high-water mark: [`MetricsRegistry::observe`]
/// self-flushes past this, bounding buffer memory between snapshots.
const FLUSH_AT: usize = 4096;

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a counter (allocation happens here, not on increment).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId(self.counters.len() as u32 - 1)
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauge_names.push(name);
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() as u32 - 1)
    }

    /// Registers a histogram; its full bucket array is allocated now.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        self.hist_names.push(name);
        self.hists.push(Histogram::new());
        HistogramId(self.hists.len() as u32 - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize] += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Records one histogram observation. Buffered: the observation counts
    /// toward the histogram only after [`flush`](Self::flush), which every
    /// snapshot path runs first — readers of [`hist`](Self::hist) and
    /// [`hist_snaps`](Self::hist_snaps) must do the same.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.pending.push((id.0, v));
        if self.pending.len() >= FLUSH_AT {
            self.flush();
        }
    }

    /// Applies all buffered observations to their histograms, in recording
    /// order.
    pub fn flush(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        for &(id, v) in &pending {
            self.hists[id as usize].observe(v);
        }
        pending.clear();
        self.pending = pending;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// Read access to a histogram. Call [`flush`](Self::flush) first if
    /// observations were recorded since the last snapshot.
    pub fn hist(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0 as usize]
    }

    /// Registered counter names, in registration order.
    pub fn counter_names(&self) -> &[&'static str] {
        &self.counter_names
    }

    /// Registered gauge names, in registration order.
    pub fn gauge_names(&self) -> &[&'static str] {
        &self.gauge_names
    }

    /// Registered histogram names, in registration order.
    pub fn hist_names(&self) -> &[&'static str] {
        &self.hist_names
    }

    /// All counter values, parallel to [`counter_names`](Self::counter_names).
    pub fn counter_values(&self) -> &[u64] {
        &self.counters
    }

    /// All gauge values, parallel to [`gauge_names`](Self::gauge_names).
    pub fn gauge_values(&self) -> &[f64] {
        &self.gauges
    }

    /// Snapshots of all histograms, parallel to
    /// [`hist_names`](Self::hist_names).
    pub fn hist_snaps(&self) -> Vec<HistogramSnapshot> {
        self.hists.iter().map(Histogram::snap).collect()
    }

    /// Appends a snapshot of every histogram to `out`, in registration
    /// order — the allocation-free form of [`hist_snaps`](Self::hist_snaps)
    /// for callers that batch rows into shared storage. Takes `&mut self`
    /// so unchanged histograms serve their cached rows.
    pub fn snap_hists_into(&mut self, out: &mut Vec<HistogramSnapshot>) {
        out.extend(self.hists.iter_mut().map(Histogram::snap_mut));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_exhaustive() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket regressed at {v}");
            assert!(b < BUCKETS, "bucket {b} out of range at {v}");
            last = b;
        }
        // Small values are exact.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v as f64);
        }
    }

    #[test]
    fn bucket_mid_falls_inside_bucket() {
        for v in [16u64, 100, 999, 4096, 1 << 30] {
            let b = bucket_of(v);
            let mid = bucket_mid(b);
            // The midpoint maps back to the same bucket.
            assert_eq!(bucket_of(mid as u64), b, "midpoint escaped bucket for {v}");
        }
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log-linear buckets: ≤ ~6% relative error.
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 {p99}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).unwrap() >= p99);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.snap();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn registry_round_trips_all_metric_kinds() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("runs");
        let g = r.gauge("depth");
        let h = r.histogram("latency_us");
        r.inc(c, 2);
        r.inc(c, 3);
        r.set_gauge(g, 7.5);
        r.observe(h, 100);
        r.flush();
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_value(g), 7.5);
        assert_eq!(r.hist(h).count(), 1);
        assert_eq!(r.counter_names(), &["runs"]);
        assert_eq!(r.gauge_names(), &["depth"]);
        assert_eq!(r.hist_names(), &["latency_us"]);
    }
}
