//! Run-diff blame: align two attributed runs and explain where a latency
//! delta came from.
//!
//! For each client present in both runs, the nearest-rank p99 run is picked
//! on each side and its *blamed* phase vector compared. Blaming goes one
//! step past raw decomposition:
//!
//! 1. **Token-wait redistribution** — time a run spent waiting for the
//!    token is moved onto the phase the concurrent holder was in (via the
//!    per-device holder timelines). Waiting on a neighbour's longer compute
//!    is the neighbour's compute, not an independent phase.
//! 2. **Hand-off roll-up** — the per-switch hand-off cost is fixed by the
//!    engine config, so when the per-switch rate is unchanged between the
//!    two runs, growth in total hand-off time is growth in *switch count*,
//!    which quantum scheduling ties to compute volume. That portion of the
//!    hand-off delta is rolled into the execute cause; only a change in the
//!    per-switch rate itself stays blamed on hand-off.
//!
//! The headline number is [`DiffReport::execute_share`]: the fraction of
//! the total p99 delta the report pins on compute.

use crate::{Attribution, Phase, RunPhases, PHASE_COUNT};
use std::collections::HashMap;

/// One client's p99 latency delta, decomposed by cause.
#[derive(Debug, Clone)]
pub struct ClientDiff {
    /// The client (same id on both sides).
    pub client: u32,
    /// Baseline p99 run latency, ns.
    pub base_p99_ns: u64,
    /// Target p99 run latency, ns.
    pub target_p99_ns: u64,
    /// `target - base`, ns.
    pub delta_ns: i64,
    /// Signed per-phase delta of the blamed vectors, ns.
    pub phase_delta_ns: [i64; PHASE_COUNT],
    /// Signed per-cause delta after the hand-off roll-up, ns. Sums to
    /// [`delta_ns`](Self::delta_ns).
    pub cause_ns: [i64; PHASE_COUNT],
}

/// The full diff between a target and a baseline attribution.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Per-client deltas, client-id order, clients present on both sides.
    pub per_client: Vec<ClientDiff>,
    /// Sum of per-client cause deltas, ns.
    pub cause_totals_ns: [i64; PHASE_COUNT],
    /// Sum of per-client p99 deltas, ns.
    pub delta_total_ns: i64,
    /// Fraction of the total delta attributed to the execute cause
    /// (0 when the total delta is not positive).
    pub execute_share: f64,
    /// Terminal runs on the baseline side.
    pub base_runs: usize,
    /// Terminal runs on the target side.
    pub target_runs: usize,
}

/// Diffs `target` against `base`.
pub fn diff(target: &Attribution, base: &Attribution) -> DiffReport {
    let clients = target.client_count.min(base.client_count);
    let mut per_client = Vec::new();
    for c in 0..clients {
        let (Some(ti), Some(bi)) = (target.p99_run(c), base.p99_run(c)) else {
            continue;
        };
        let t_run = &target.runs[ti];
        let b_run = &base.runs[bi];
        let t_blamed = blamed_vector(target, t_run);
        let b_blamed = blamed_vector(base, b_run);
        let mut phase_delta_ns = [0i64; PHASE_COUNT];
        for i in 0..PHASE_COUNT {
            phase_delta_ns[i] = t_blamed[i] as i64 - b_blamed[i] as i64;
        }
        let cause_ns = roll_up(phase_delta_ns, t_run, b_run, t_blamed, b_blamed);
        per_client.push(ClientDiff {
            client: c,
            base_p99_ns: b_run.span_ns(),
            target_p99_ns: t_run.span_ns(),
            delta_ns: t_run.span_ns() as i64 - b_run.span_ns() as i64,
            phase_delta_ns,
            cause_ns,
        });
    }

    let mut cause_totals_ns = [0i64; PHASE_COUNT];
    let mut delta_total_ns = 0i64;
    for cd in &per_client {
        delta_total_ns += cd.delta_ns;
        for (total, cause) in cause_totals_ns.iter_mut().zip(cd.cause_ns) {
            *total += cause;
        }
    }
    let execute_share = if delta_total_ns > 0 {
        (cause_totals_ns[Phase::Execute.index()] as f64 / delta_total_ns as f64).max(0.0)
    } else {
        0.0
    };
    DiffReport {
        per_client,
        cause_totals_ns,
        delta_total_ns,
        execute_share,
        base_runs: base.runs.len(),
        target_runs: target.runs.len(),
    }
}

/// A run's phase vector with token-wait redistributed onto the concurrent
/// holder's active phase. The vector still sums to the run span exactly:
/// redistribution only moves nanoseconds between slots.
pub fn blamed_vector(attr: &Attribution, run: &RunPhases) -> [u64; PHASE_COUNT] {
    let run_of_job: HashMap<u64, usize> =
        attr.runs.iter().enumerate().map(|(i, r)| (r.job, i)).collect();
    let mut v = run.phase_ns;
    let Some(holder_segs) = attr.holders.get(run.device as usize) else {
        return v;
    };
    for iv in &run.intervals {
        if iv.phase != Phase::TokenWait {
            continue;
        }
        for h in holder_segs {
            let lo = h.start_ns.max(iv.start_ns);
            let hi = h.end_ns.min(iv.end_ns);
            if lo >= hi || h.client == run.client {
                continue;
            }
            let Some(&hidx) = run_of_job.get(&h.job) else { continue };
            // Move the overlap onto whatever the holder was doing then.
            for hiv in &attr.runs[hidx].intervals {
                let a = hiv.start_ns.max(lo);
                let b = hiv.end_ns.min(hi);
                if a >= b {
                    continue;
                }
                let d = b - a;
                v[Phase::TokenWait.index()] -= d;
                v[hiv.phase.index()] += d;
            }
        }
    }
    v
}

/// Rolls switch-count-driven hand-off growth into the execute cause.
fn roll_up(
    mut delta: [i64; PHASE_COUNT],
    t_run: &RunPhases,
    b_run: &RunPhases,
    t_blamed: [u64; PHASE_COUNT],
    b_blamed: [u64; PHASE_COUNT],
) -> [i64; PHASE_COUNT] {
    let h = Phase::Handoff.index();
    let d_handoff = delta[h];
    // Per-switch hand-off rate on each side. The blamed vector folds the
    // neighbours' hand-offs into the waiter, so normalize by the grants
    // observed on the whole device during the runs; the run's own grant
    // count is the deterministic proxy available per run.
    let t_rate = t_blamed[h] / u64::from(t_run.grants.max(1));
    let b_rate = b_blamed[h] / u64::from(b_run.grants.max(1));
    let rate = t_rate.min(b_rate) as i64;
    let d_switches = i64::from(t_run.grants) - i64::from(b_run.grants);
    let induced = (d_switches * rate).clamp(d_handoff.min(0), d_handoff.max(0));
    // When the per-switch rate is unchanged (the common case: same engine
    // config on both sides), `induced == d_handoff` and the whole hand-off
    // delta rolls into execute; a genuine rate change stays on hand-off.
    let induced = if rates_close(t_rate, b_rate) { d_handoff } else { induced };
    delta[h] -= induced;
    delta[Phase::Execute.index()] += induced;
    delta
}

/// Whether two per-switch hand-off rates agree within 10%.
fn rates_close(a: u64, b: u64) -> bool {
    let (lo, hi) = (a.min(b), a.max(b));
    hi == 0 || (hi - lo) * 10 <= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribution;
    use simtime::SimTime;
    use trace::{SwitchReason, TraceBuffer, TraceConfig, TraceKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// One client, `n` runs, each `exec_us` of granted execution preceded
    /// by `wait_us` of token wait while a phantom neighbour held.
    fn attr_with(exec_us: u64) -> Attribution {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        let mut rec = |at, kind| buf.record(at, kind);
        rec(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        for j in 0..4u64 {
            let s = j * 1_000;
            rec(t(s), TraceKind::RunRegistered { job: j, client: 0 });
            rec(
                t(s),
                TraceKind::TokenGrant {
                    job: j,
                    client: Some(0),
                    reason: SwitchReason::Register,
                },
            );
            rec(t(s + exec_us), TraceKind::RunCompleted { job: j, client: 0 });
        }
        Attribution::from_trace(&buf.finish(), 5_000)
    }

    #[test]
    fn pure_compute_regression_lands_on_execute() {
        let base = attr_with(100);
        let target = attr_with(140);
        let report = diff(&target, &base);
        assert_eq!(report.per_client.len(), 1);
        let cd = &report.per_client[0];
        assert_eq!(cd.delta_ns, 40_000);
        // One grant per run on both sides: the hand-off rate is unchanged,
        // so the entire delta must be pinned on execute.
        assert_eq!(cd.cause_ns[Phase::Execute.index()], 40_000);
        assert!((report.execute_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cause_vector_sums_to_the_delta() {
        let base = attr_with(100);
        let target = attr_with(163);
        let report = diff(&target, &base);
        for cd in &report.per_client {
            let sum: i64 = cd.cause_ns.iter().sum();
            assert_eq!(sum, cd.delta_ns);
            let psum: i64 = cd.phase_delta_ns.iter().sum();
            assert_eq!(psum, cd.delta_ns);
        }
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = attr_with(100);
        let report = diff(&a, &a);
        assert_eq!(report.delta_total_ns, 0);
        assert_eq!(report.execute_share, 0.0);
        assert!(report.cause_totals_ns.iter().all(|&v| v == 0));
    }
}
