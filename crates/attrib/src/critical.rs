//! Cross-request critical path of the makespan.
//!
//! Starting from the run that finishes last, walk its span backwards. Any
//! slice where that run was merely waiting for the token is re-attributed
//! to whoever *held* the token on the same device at that moment (via the
//! per-device holder timelines), recursing into the holder's own phase
//! decomposition. Gaps between a client's consecutive runs — think/decode
//! time outside any registered run — are labelled `client-gap`, and the
//! chain continues through the client's previous run back to time zero.
//!
//! Shrinking any segment on the resulting path shrinks the makespan, which
//! is exactly the property that makes per-phase blame on it actionable.

use crate::{Attribution, Phase, RunPhases};
use std::collections::HashMap;

/// Pseudo-phase for time between a client's consecutive runs.
pub const CLIENT_GAP: &str = "client-gap";

/// One slice of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalSegment {
    /// The client whose activity (or absence) this slice blames.
    pub client: u32,
    /// The blamed job, or `u64::MAX` for a `client-gap` slice.
    pub job: u64,
    /// Phase name ([`Phase::name`] or [`CLIENT_GAP`]).
    pub phase: &'static str,
    /// Slice start, ns.
    pub start_ns: u64,
    /// Slice end, ns.
    pub end_ns: u64,
}

/// The critical path and its blame totals.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Path slices sorted by start, tiling `[0, makespan]` when the trace
    /// contains at least one terminal run.
    pub segments: Vec<CriticalSegment>,
    /// Blame per phase name, ns: the nine phases in order, then
    /// [`CLIENT_GAP`]. Sums to the path span.
    pub blame_ns: Vec<(&'static str, u64)>,
    /// Blame per client, ns, indexed by client id.
    pub client_blame_ns: Vec<u64>,
    /// Path span, ns (equals the makespan when a terminal run exists).
    pub span_ns: u64,
}

/// Computes the critical path of `attr`'s makespan. Empty when no run
/// terminated.
pub fn critical_path(attr: &Attribution) -> CriticalPath {
    let mut segments = Vec::new();
    // Latest-ending run; ties break on the smaller job id.
    let last = attr
        .runs
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| (r.end_ns, std::cmp::Reverse(r.job)))
        .map(|(i, _)| i);
    let run_of_job: HashMap<u64, usize> =
        attr.runs.iter().enumerate().map(|(i, r)| (r.job, i)).collect();

    if let Some(mut cur) = last {
        // The walk is bounded: each step moves to the same client's
        // previous run, and blame recursion is depth-limited.
        let mut guard = attr.runs.len() + 1;
        loop {
            let run = &attr.runs[cur];
            blame_range(attr, &run_of_job, run, run.start_ns, run.end_ns, 0, &mut segments);
            let prev = attr.client_runs[run.client as usize]
                .iter()
                .copied()
                .filter(|&i| attr.runs[i].end_ns <= run.start_ns)
                .max_by_key(|&i| (attr.runs[i].end_ns, std::cmp::Reverse(attr.runs[i].job)));
            let gap_end = run.start_ns;
            match prev {
                Some(p) if guard > 0 => {
                    push(&mut segments, run.client, u64::MAX, CLIENT_GAP, attr.runs[p].end_ns, gap_end);
                    cur = p;
                    guard -= 1;
                }
                _ => {
                    push(&mut segments, run.client, u64::MAX, CLIENT_GAP, 0, gap_end);
                    break;
                }
            }
        }
    }

    segments.sort_by_key(|s| (s.start_ns, s.end_ns));
    let span_ns = segments.iter().map(|s| s.end_ns - s.start_ns).sum();
    let mut by_phase: Vec<(&'static str, u64)> = Phase::ALL
        .iter()
        .map(|p| (p.name(), 0u64))
        .chain(std::iter::once((CLIENT_GAP, 0u64)))
        .collect();
    let mut client_blame_ns = vec![0u64; attr.client_count as usize];
    for s in &segments {
        let d = s.end_ns - s.start_ns;
        if let Some(slot) = by_phase.iter_mut().find(|(n, _)| *n == s.phase) {
            slot.1 += d;
        }
        if let Some(c) = client_blame_ns.get_mut(s.client as usize) {
            *c += d;
        }
    }
    CriticalPath { segments, blame_ns: by_phase, client_blame_ns, span_ns }
}

fn push(
    out: &mut Vec<CriticalSegment>,
    client: u32,
    job: u64,
    phase: &'static str,
    start_ns: u64,
    end_ns: u64,
) {
    if end_ns > start_ns {
        out.push(CriticalSegment { client, job, phase, start_ns, end_ns });
    }
}

/// Emits `run`'s intervals clipped to `[t0, t1]`, re-attributing token-wait
/// slices to the concurrent token holder's own phases where the holder
/// timeline identifies one.
fn blame_range(
    attr: &Attribution,
    run_of_job: &HashMap<u64, usize>,
    run: &RunPhases,
    t0: u64,
    t1: u64,
    depth: u32,
    out: &mut Vec<CriticalSegment>,
) {
    for iv in &run.intervals {
        let lo = iv.start_ns.max(t0);
        let hi = iv.end_ns.min(t1);
        if lo >= hi {
            continue;
        }
        if iv.phase != Phase::TokenWait || depth >= 2 {
            push(out, run.client, run.job, iv.phase.name(), lo, hi);
            continue;
        }
        // Waiting on the token: hand the slice to whoever held it. A
        // holder never token-waits while holding, so recursion terminates.
        let mut cursor = lo;
        if let Some(segs) = attr.holders.get(run.device as usize) {
            for h in segs {
                let ho = h.start_ns.max(cursor);
                let hh = h.end_ns.min(hi);
                if ho >= hh || h.client == run.client {
                    continue;
                }
                push(out, run.client, run.job, Phase::TokenWait.name(), cursor, ho);
                match run_of_job.get(&h.job) {
                    Some(&hi_idx) => blame_range(
                        attr,
                        run_of_job,
                        &attr.runs[hi_idx],
                        ho,
                        hh,
                        depth + 1,
                        out,
                    ),
                    None => push(out, h.client, h.job, Phase::TokenWait.name(), ho, hh),
                }
                cursor = hh;
                if cursor >= hi {
                    break;
                }
            }
        }
        push(out, run.client, run.job, Phase::TokenWait.name(), cursor, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribution;
    use simtime::SimTime;
    use trace::{SwitchReason, TraceBuffer, TraceConfig, TraceKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Two clients on one device: client 1 waits [45,100] while client 0
    /// holds the token, so that wait must be blamed on client 0's phases.
    fn two_client_attr() -> Attribution {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        let mut rec = |at, kind| buf.record(at, kind);
        rec(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        rec(t(0), TraceKind::ClientAdmitted { client: 1, device: 0 });
        rec(t(5), TraceKind::RunRegistered { job: 0, client: 0 });
        rec(
            t(5),
            TraceKind::TokenGrant { job: 0, client: Some(0), reason: SwitchReason::Register },
        );
        rec(t(45), TraceKind::RunRegistered { job: 1, client: 1 });
        rec(
            t(100),
            TraceKind::TokenRevoke {
                job: 0,
                client: Some(0),
                reason: SwitchReason::QuantumExpired,
            },
        );
        rec(
            t(100),
            TraceKind::TokenGrant {
                job: 1,
                client: Some(1),
                reason: SwitchReason::QuantumExpired,
            },
        );
        rec(t(120), TraceKind::RunCompleted { job: 0, client: 0 });
        rec(t(180), TraceKind::RunCompleted { job: 1, client: 1 });
        Attribution::from_trace(&buf.finish(), 2_000)
    }

    #[test]
    fn path_tiles_zero_to_makespan() {
        let attr = two_client_attr();
        let cp = critical_path(&attr);
        assert_eq!(cp.span_ns, attr.makespan_ns);
        let mut cursor = 0;
        for s in &cp.segments {
            assert_eq!(s.start_ns, cursor, "path has a hole before {s:?}");
            cursor = s.end_ns;
        }
        assert_eq!(cursor, attr.makespan_ns);
        let total: u64 = cp.blame_ns.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, cp.span_ns);
    }

    #[test]
    fn token_wait_is_blamed_on_the_holder() {
        let attr = two_client_attr();
        let cp = critical_path(&attr);
        // While client 1 waited [45,100], client 0 held the token: those
        // 55 µs must appear on the path as client 0 activity, not as
        // client 1 token-wait.
        let holder_blame: u64 = cp
            .segments
            .iter()
            .filter(|s| s.client == 0 && s.start_ns >= 45_000 && s.end_ns <= 100_000)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        assert_eq!(holder_blame, 55_000);
        assert!(cp.client_blame_ns[0] >= 55_000);
    }
}
