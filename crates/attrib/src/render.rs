//! Report rendering: the human-readable blame text, the `blame/v1` JSON
//! document, and the Perfetto phase/critical-path rows.
//!
//! Everything here is byte-deterministic: integer nanosecond inputs, fixed
//! iteration orders, and fixed-precision float formatting only.

use crate::critical::CriticalPath;
use crate::diff::DiffReport;
use crate::{Attribution, Phase};
use microjson::Value;
use std::fmt::Write as _;

/// The process id phase slices live on in the Chrome trace export
/// (processes 1 and 2 are the engine's client and GPU tracks).
pub const PHASES_PID: u64 = 3;

fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

fn us_f(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn meta_event(tid: Option<u64>, key: &str, name: &str) -> Value {
    let mut fields = vec![
        ("ph".into(), Value::str("M")),
        ("pid".into(), Value::UInt(PHASES_PID)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Value::UInt(tid)));
    }
    fields.push(("name".into(), Value::str(key)));
    fields.push((
        "args".into(),
        Value::Object(vec![("name".into(), Value::str(name))]),
    ));
    Value::Object(fields)
}

fn slice(tid: u64, name: &str, cat: &'static str, start_ns: u64, end_ns: u64, args: Vec<(String, Value)>) -> Value {
    Value::Object(vec![
        ("name".into(), Value::str(name)),
        ("cat".into(), Value::str(cat)),
        ("ph".into(), Value::str("X")),
        ("ts".into(), us(start_ns)),
        ("dur".into(), us(end_ns - start_ns)),
        ("pid".into(), Value::UInt(PHASES_PID)),
        ("tid".into(), Value::UInt(tid)),
        ("args".into(), Value::Object(args)),
    ])
}

/// Chrome trace-event rows for the phase decomposition and the critical
/// path, on their own process (pid 3) so they sit next to — never inside —
/// the engine's client and GPU tracks. One thread per client plus a
/// highlighted "critical path" thread; per-track timestamps are monotonic
/// by construction (phase intervals tile each run, path segments tile the
/// makespan).
pub fn phase_trace_rows(attr: &Attribution, cp: &CriticalPath) -> Vec<Value> {
    let path_tid = u64::from(attr.client_count);
    let mut rows = Vec::new();
    rows.push(meta_event(None, "process_name", "phases"));
    for c in 0..attr.client_count {
        rows.push(meta_event(
            Some(u64::from(c)),
            "thread_name",
            &format!("client{c} phases"),
        ));
    }
    rows.push(meta_event(Some(path_tid), "thread_name", "critical path"));
    for c in 0..attr.client_count {
        for &ri in &attr.client_runs[c as usize] {
            let r = &attr.runs[ri];
            for iv in &r.intervals {
                rows.push(slice(
                    u64::from(c),
                    iv.phase.name(),
                    "phase",
                    iv.start_ns,
                    iv.end_ns,
                    vec![("job".into(), Value::UInt(r.job))],
                ));
            }
        }
    }
    for s in &cp.segments {
        let mut args = vec![("client".into(), Value::UInt(u64::from(s.client)))];
        if s.job != u64::MAX {
            args.push(("job".into(), Value::UInt(s.job)));
        }
        rows.push(slice(path_tid, s.phase, "critical-path", s.start_ns, s.end_ns, args));
    }
    rows
}

fn warning_line(attr: &Attribution, out: &mut String) {
    if attr.dropped_events > 0 {
        let _ = writeln!(
            out,
            "warning: {} events were dropped by the flight-recorder ring; \
             this attribution is truncated",
            attr.dropped_events
        );
    }
}

/// Renders the blame report as stable, diffable text. `label` names the
/// attributed experiment; `baseline` adds the run-diff section.
pub fn render_text(
    label: &str,
    attr: &Attribution,
    cp: &CriticalPath,
    baseline: Option<(&str, &DiffReport)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== latency attribution: {label} ==");
    let _ = writeln!(
        out,
        "runs: {} terminal ({} unfinished)  clients: {}  scheduler: {}  makespan: {:.1} us",
        attr.runs.len(),
        attr.unfinished,
        attr.client_count,
        if attr.token_based { "token-based" } else { "baseline" },
        us_f(attr.makespan_ns),
    );
    warning_line(attr, &mut out);

    let totals = attr.phase_totals_ns();
    let span = attr.total_span_ns().max(1);
    let hists = attr.phase_histograms();
    let _ = writeln!(out, "\nphase decomposition (tiles every run span exactly):");
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>8} {:>10} {:>10}",
        "phase", "total_us", "share", "p50_us", "p99_us"
    );
    for (p, (name, snap)) in Phase::ALL.iter().zip(hists.iter()) {
        let t = totals[p.index()];
        let _ = writeln!(
            out,
            "  {:<16} {:>12.1} {:>7.1}% {:>10.1} {:>10.1}",
            name,
            us_f(t),
            t as f64 * 100.0 / span as f64,
            snap.p50,
            snap.p99,
        );
    }
    let _ = writeln!(out, "  total run time: {:.1} us", us_f(span));

    let _ = writeln!(
        out,
        "\ncritical path (0 -> makespan, {} segments, {:.1} us):",
        cp.segments.len(),
        us_f(cp.span_ns)
    );
    let path = cp.span_ns.max(1);
    for &(name, v) in &cp.blame_ns {
        if v > 0 {
            let _ = writeln!(
                out,
                "  {:<16} {:>12.1} {:>7.1}%",
                name,
                us_f(v),
                v as f64 * 100.0 / path as f64
            );
        }
    }
    let _ = write!(out, "  blame by client:");
    for (c, &v) in cp.client_blame_ns.iter().enumerate() {
        let _ = write!(out, " client{c}={:.1}us", us_f(v));
    }
    let _ = writeln!(out);

    if let Some((base_label, d)) = baseline {
        let _ = writeln!(out, "\n== p99 blame vs baseline: {base_label} ==");
        let _ = writeln!(
            out,
            "runs: {} target vs {} baseline",
            d.target_runs, d.base_runs
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>12} {:>14} {:>10}  top cause",
            "client", "base_p99_us", "target_p99_us", "delta_us"
        );
        for cd in &d.per_client {
            let top = Phase::ALL
                .iter()
                .max_by_key(|p| (cd.cause_ns[p.index()], std::cmp::Reverse(p.index())))
                .unwrap();
            let _ = writeln!(
                out,
                "  client{:<2} {:>12.1} {:>14.1} {:>+10.1}  {} ({:+.1} us)",
                cd.client,
                us_f(cd.base_p99_ns),
                us_f(cd.target_p99_ns),
                cd.delta_ns as f64 / 1000.0,
                top.name(),
                cd.cause_ns[top.index()] as f64 / 1000.0,
            );
        }
        let _ = write!(out, "cause totals:");
        for p in Phase::ALL {
            let v = d.cause_totals_ns[p.index()];
            if v != 0 {
                let _ = write!(out, " {}={:+.1}us", p.name(), v as f64 / 1000.0);
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "total p99 delta: {:+.1} us  execute share: {:.1}%",
            d.delta_total_ns as f64 / 1000.0,
            d.execute_share * 100.0
        );
    }
    out
}

/// The `blame/v1` JSON document (the `--out` payload CI validates).
pub fn to_json(
    label: &str,
    attr: &Attribution,
    cp: &CriticalPath,
    baseline: Option<(&str, &DiffReport)>,
) -> Value {
    let totals = attr.phase_totals_ns();
    let phase_obj = |vals: &dyn Fn(usize) -> Value| {
        Value::Object(
            Phase::ALL
                .iter()
                .map(|p| (p.name().to_string(), vals(p.index())))
                .collect(),
        )
    };
    let mut doc = vec![
        ("schema".into(), Value::str("blame/v1")),
        ("experiment".into(), Value::str(label)),
        ("runs".into(), Value::UInt(attr.runs.len() as u64)),
        ("unfinished".into(), Value::UInt(u64::from(attr.unfinished))),
        ("clients".into(), Value::UInt(u64::from(attr.client_count))),
        ("token_based".into(), Value::Bool(attr.token_based)),
        ("makespan_us".into(), us(attr.makespan_ns)),
        ("dropped_events".into(), Value::UInt(attr.dropped_events)),
        ("tiling_ok".into(), Value::Bool(true)),
        ("phase_totals_us".into(), phase_obj(&|i| us(totals[i]))),
        (
            "critical_path".into(),
            Value::Object(vec![
                ("span_us".into(), us(cp.span_ns)),
                ("segments".into(), Value::UInt(cp.segments.len() as u64)),
                (
                    "blame_us".into(),
                    Value::Object(
                        cp.blame_ns
                            .iter()
                            .map(|&(n, v)| (n.to_string(), us(v)))
                            .collect(),
                    ),
                ),
                (
                    "client_blame_us".into(),
                    Value::Array(cp.client_blame_ns.iter().map(|&v| us(v)).collect()),
                ),
            ]),
        ),
    ];
    if let Some((base_label, d)) = baseline {
        let per_client = d
            .per_client
            .iter()
            .map(|cd| {
                Value::Object(vec![
                    ("client".into(), Value::UInt(u64::from(cd.client))),
                    ("base_p99_us".into(), us(cd.base_p99_ns)),
                    ("target_p99_us".into(), us(cd.target_p99_ns)),
                    ("delta_us".into(), Value::Float(cd.delta_ns as f64 / 1000.0)),
                    (
                        "cause_us".into(),
                        Value::Object(
                            Phase::ALL
                                .iter()
                                .map(|p| {
                                    (
                                        p.name().to_string(),
                                        Value::Float(cd.cause_ns[p.index()] as f64 / 1000.0),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        doc.push((
            "diff".into(),
            Value::Object(vec![
                ("baseline".into(), Value::str(base_label)),
                ("base_runs".into(), Value::UInt(d.base_runs as u64)),
                ("target_runs".into(), Value::UInt(d.target_runs as u64)),
                ("per_client".into(), Value::Array(per_client)),
                (
                    "cause_totals_us".into(),
                    phase_obj(&|i| Value::Float(d.cause_totals_ns[i] as f64 / 1000.0)),
                ),
                (
                    "delta_total_us".into(),
                    Value::Float(d.delta_total_ns as f64 / 1000.0),
                ),
                ("execute_share".into(), Value::Float(d.execute_share)),
            ]),
        ));
    }
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::critical_path;
    use crate::diff::diff;
    use simtime::SimTime;
    use trace::{SwitchReason, TraceBuffer, TraceConfig, TraceKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn attr(exec_us: u64) -> Attribution {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        buf.record(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        for j in 0..3u64 {
            let s = j * 500;
            buf.record(t(s), TraceKind::RunRegistered { job: j, client: 0 });
            buf.record(
                t(s),
                TraceKind::TokenGrant {
                    job: j,
                    client: Some(0),
                    reason: SwitchReason::Register,
                },
            );
            buf.record(t(s + exec_us), TraceKind::RunCompleted { job: j, client: 0 });
        }
        Attribution::from_trace(&buf.finish(), 2_000)
    }

    #[test]
    fn text_report_is_deterministic_and_complete() {
        let a = attr(100);
        let cp = critical_path(&a);
        let base = attr(80);
        let d = diff(&a, &base);
        let one = render_text("target", &a, &cp, Some(("base", &d)));
        let two = render_text("target", &a, &cp, Some(("base", &d)));
        assert_eq!(one, two);
        assert!(one.contains("latency attribution: target"));
        assert!(one.contains("execute"));
        assert!(one.contains("blame vs baseline: base"));
        assert!(one.contains("execute share"));
        assert!(!one.contains("warning:"));
    }

    #[test]
    fn json_document_carries_the_schema_and_diff() {
        let a = attr(100);
        let cp = critical_path(&a);
        let base = attr(80);
        let d = diff(&a, &base);
        let doc = to_json("target", &a, &cp, Some(("base", &d)));
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("blame/v1"));
        assert_eq!(doc.get("tiling_ok").unwrap().as_bool(), Some(true));
        let diff_doc = doc.get("diff").unwrap();
        assert_eq!(diff_doc.get("baseline").unwrap().as_str(), Some("base"));
        assert!(diff_doc.get("execute_share").unwrap().as_f64().unwrap() > 0.9);
        // The document round-trips through the parser.
        let mut text = String::new();
        doc.write(&mut text);
        let back = Value::parse(&text).unwrap();
        assert!(back.get("phase_totals_us").unwrap().get("execute").is_some());
    }

    #[test]
    fn phase_rows_live_on_their_own_process_and_stay_monotonic() {
        let a = attr(100);
        let cp = critical_path(&a);
        let rows = phase_trace_rows(&a, &cp);
        let mut last_ts: std::collections::HashMap<u64, f64> = Default::default();
        let mut slices = 0;
        for r in &rows {
            assert_eq!(r.get("pid").unwrap().as_u64(), Some(PHASES_PID));
            if r.get("ph").unwrap().as_str() == Some("X") {
                slices += 1;
                let tid = r.get("tid").unwrap().as_u64().unwrap();
                let ts = r.get("ts").unwrap().as_f64().unwrap();
                if let Some(&prev) = last_ts.get(&tid) {
                    assert!(ts >= prev, "track {tid} went backwards");
                }
                last_ts.insert(tid, ts);
            }
        }
        assert!(slices > 0);
    }
}
