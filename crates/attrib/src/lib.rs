//! Latency attribution over the typed trace ring.
//!
//! The serving engine answers *what happened* (the trace) and *how much*
//! (telemetry). This crate answers *why a request took as long as it did*:
//! it decomposes every traced run's end-to-end span into disjoint phases
//! that tile the span exactly, walks the cross-request critical path of the
//! makespan, and diffs two runs to blame a latency regression on the phase
//! (and client) that grew.
//!
//! Everything here is pure post-processing over an immutable [`Trace`]: the
//! hot path pays nothing beyond the event capture it already does, and all
//! arithmetic is integer nanoseconds, so reports are byte-identical across
//! worker counts and shard counts.
//!
//! # Phase model
//!
//! Each terminal run's span `[t0, t1]` is carved by a priority sweep: phases
//! claim candidate intervals in a fixed order, each claim only takes time no
//! earlier phase claimed, and whatever remains is execution. The result
//! tiles the span *exactly* — `sum(phases) == t1 - t0` is asserted at
//! construction, never approximated.

mod critical;
mod diff;
mod render;

pub use critical::{critical_path, CriticalPath, CriticalSegment};
pub use diff::{diff, ClientDiff, DiffReport};
pub use render::{phase_trace_rows, render_text, to_json};

use std::collections::HashMap;
use telemetry::{HistogramSnapshot, MetricsRegistry};
use trace::{Trace, TraceKind};

/// One disjoint slice of a run's span, in claim-priority order.
///
/// The order doubles as the sweep priority: earlier variants claim their
/// intervals first, later variants only get what is left, and
/// [`Phase::Execute`] is the catch-all that absorbs the remainder — which is
/// what makes the decomposition tile the span exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Parked in the bounded admission wait queue before the first run.
    AdmissionWait,
    /// Waiting for the lifecycle manager to load/warm the target version.
    LoadWait,
    /// Tail of a shed session: from the circuit breaker opening to the shed.
    Shed,
    /// Deterministic exponential backoff between fault retries.
    Backoff,
    /// A planned device stall window on the run's device.
    Stall,
    /// Registered but not holding the scheduling token (another client's
    /// quantum, or the scheduler had not granted yet).
    TokenWait,
    /// The hand-off window right after a token grant: context switch plus
    /// first launch overhead before kernels make progress.
    Handoff,
    /// Driver-queue transfer: kernel submitted but not yet executing
    /// (observable in [`trace::TraceMode::Full`] captures only).
    Transfer,
    /// Everything else: decode and kernel execution while runnable.
    Execute,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase, in claim-priority (and reporting) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::AdmissionWait,
        Phase::LoadWait,
        Phase::Shed,
        Phase::Backoff,
        Phase::Stall,
        Phase::TokenWait,
        Phase::Handoff,
        Phase::Transfer,
        Phase::Execute,
    ];

    /// Stable kebab-case name used in every report and JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::AdmissionWait => "admission-wait",
            Phase::LoadWait => "load-wait",
            Phase::Shed => "shed",
            Phase::Backoff => "backoff",
            Phase::Stall => "stall",
            Phase::TokenWait => "token-wait",
            Phase::Handoff => "handoff",
            Phase::Transfer => "transfer",
            Phase::Execute => "execute",
        }
    }

    /// Dense index into per-phase arrays (position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A claimed slice of one run's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Slice start, ns.
    pub start_ns: u64,
    /// Slice end, ns (exclusive; always `> start_ns`).
    pub end_ns: u64,
    /// The phase that claimed it.
    pub phase: Phase,
}

/// How a decomposed run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// `RunCompleted`.
    Completed,
    /// `DeadlineCancelled`.
    Cancelled,
    /// The client's circuit breaker shed the session mid-run.
    Shed,
}

/// One run's exact phase decomposition.
#[derive(Debug, Clone)]
pub struct RunPhases {
    /// The job id (stable across worker and shard counts).
    pub job: u64,
    /// Owning client.
    pub client: u32,
    /// Device the client's activations live on.
    pub device: u32,
    /// Span start: admission/lifecycle wait start when one directly
    /// preceded registration, else the registration instant. ns.
    pub start_ns: u64,
    /// Span end: the terminal event's instant. ns.
    pub end_ns: u64,
    /// How the run ended.
    pub terminal: Terminal,
    /// Token grants received (switch count contribution of this run).
    pub grants: u32,
    /// Per-phase totals, indexed by [`Phase::index`]. Sums to
    /// `end_ns - start_ns` exactly.
    pub phase_ns: [u64; PHASE_COUNT],
    /// The claimed slices, disjoint, sorted by start, tiling the span.
    pub intervals: Vec<Interval>,
}

impl RunPhases {
    /// End-to-end latency of the run span, ns.
    pub fn span_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One closed token-holding segment on a device.
#[derive(Debug, Clone, Copy)]
pub struct HolderSeg {
    /// Hold start (the grant), ns.
    pub start_ns: u64,
    /// Hold end (the revoke, or the run's terminal event), ns.
    pub end_ns: u64,
    /// Holding client.
    pub client: u32,
    /// Holding job.
    pub job: u64,
}

/// The full attribution of one traced run: every terminal run decomposed,
/// plus the per-device token-holder timelines the critical path and the
/// run-diff walk to find who a waiter was waiting *on*.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Decomposed terminal runs, in registration (event) order.
    pub runs: Vec<RunPhases>,
    /// Number of clients observed.
    pub client_count: u32,
    /// Device of each client (index = client id; 0 when never admitted).
    pub client_device: Vec<u32>,
    /// Indices into [`runs`](Self::runs) per client, chronological.
    pub client_runs: Vec<Vec<usize>>,
    /// Token-holder segments per device, chronological.
    pub holders: Vec<Vec<HolderSeg>>,
    /// Latest run end observed, ns (0 when no run finished).
    pub makespan_ns: u64,
    /// Whether the trace contains token events (an Olympian-family
    /// scheduler); without them no time is ever classified as token wait.
    pub token_based: bool,
    /// Runs registered but never terminated in the trace (excluded).
    pub unfinished: u32,
    /// Events the flight-recorder ring dropped; a non-zero value means the
    /// decomposition is truncated and reports carry a warning.
    pub dropped_events: u64,
}

/// Raw per-run state accumulated during the single chronological pass.
struct RawRun {
    job: u64,
    client: u32,
    reg_ns: u64,
    wait: Option<(u64, Phase)>,
    end: Option<(u64, Terminal)>,
    grants: Vec<u64>,
    holds: Vec<(u64, u64)>,
    open_hold: Option<u64>,
    backoffs: Vec<(u64, u64)>,
    transfers: Vec<(u64, u64)>,
    overflows: Vec<(u64, u64)>,
    shed_open_ns: u64,
}

fn grow<T: Clone>(v: &mut Vec<T>, idx: usize, fill: T) {
    if v.len() <= idx {
        v.resize(idx + 1, fill);
    }
}

impl Attribution {
    /// Decomposes every terminal run in `trace`. `horizon_ns` is the
    /// hand-off window charged after each token grant — context-switch
    /// latency plus first-launch overhead, from the engine config that
    /// produced the trace.
    ///
    /// # Panics
    ///
    /// Panics if any run's phases fail to tile its span exactly — that is a
    /// bug in this crate, never a property of the trace.
    pub fn from_trace(trace: &Trace, horizon_ns: u64) -> Attribution {
        let mut client_device: Vec<u32> = Vec::new();
        let seen_client = |v: &mut Vec<u32>, c: u32| grow(v, c as usize, 0);
        // Earliest un-consumed wait marker per client, if any.
        let mut pending_wait: Vec<Option<(u64, Phase)>> = Vec::new();
        // Last time each client's breaker entered "open".
        let mut breaker_open: Vec<Option<u64>> = Vec::new();
        // The client's currently registered (unterminated) run, if any.
        let mut active_run: Vec<Option<usize>> = Vec::new();
        let mut raws: Vec<RawRun> = Vec::new();
        let mut run_of_job: HashMap<u64, usize> = HashMap::new();
        let mut pending_enqueue: HashMap<(u64, u32), u64> = HashMap::new();
        let mut device_stalls: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut holders: Vec<Vec<HolderSeg>> = Vec::new();
        let mut token_based = false;

        let close_hold = |raws: &mut Vec<RawRun>,
                              holders: &mut Vec<Vec<HolderSeg>>,
                              client_device: &Vec<u32>,
                              idx: usize,
                              at: u64| {
            let r = &mut raws[idx];
            if let Some(start) = r.open_hold.take() {
                if at > start {
                    r.holds.push((start, at));
                    let dev = client_device.get(r.client as usize).copied().unwrap_or(0);
                    grow(holders, dev as usize, Vec::new());
                    holders[dev as usize].push(HolderSeg {
                        start_ns: start,
                        end_ns: at,
                        client: r.client,
                        job: r.job,
                    });
                }
            }
        };

        for ev in &trace.events {
            let at = ev.at.as_nanos();
            match ev.kind {
                TraceKind::ClientAdmitted { client, device } => {
                    seen_client(&mut client_device, client);
                    client_device[client as usize] = device;
                    grow(&mut device_stalls, device as usize, Vec::new());
                    grow(&mut holders, device as usize, Vec::new());
                }
                TraceKind::AdmissionQueued { client } => {
                    seen_client(&mut client_device, client);
                    grow(&mut pending_wait, client as usize, None);
                    pending_wait[client as usize]
                        .get_or_insert((at, Phase::AdmissionWait));
                }
                TraceKind::LifecycleWait { client } => {
                    seen_client(&mut client_device, client);
                    grow(&mut pending_wait, client as usize, None);
                    pending_wait[client as usize].get_or_insert((at, Phase::LoadWait));
                }
                TraceKind::RunRegistered { job, client } => {
                    seen_client(&mut client_device, client);
                    grow(&mut pending_wait, client as usize, None);
                    let wait = pending_wait[client as usize].take();
                    let idx = raws.len();
                    raws.push(RawRun {
                        job,
                        client,
                        reg_ns: at,
                        wait,
                        end: None,
                        grants: Vec::new(),
                        holds: Vec::new(),
                        open_hold: None,
                        backoffs: Vec::new(),
                        transfers: Vec::new(),
                        overflows: Vec::new(),
                        shed_open_ns: 0,
                    });
                    run_of_job.insert(job, idx);
                    grow(&mut active_run, client as usize, None);
                    active_run[client as usize] = Some(idx);
                }
                TraceKind::RunCompleted { job, client }
                | TraceKind::DeadlineCancelled { job, client } => {
                    if let Some(&idx) = run_of_job.get(&job) {
                        close_hold(&mut raws, &mut holders, &client_device, idx, at);
                        let terminal = if matches!(ev.kind, TraceKind::RunCompleted { .. })
                        {
                            Terminal::Completed
                        } else {
                            Terminal::Cancelled
                        };
                        raws[idx].end = Some((at, terminal));
                        grow(&mut active_run, client as usize, None);
                        active_run[client as usize] = None;
                    }
                }
                TraceKind::TokenGrant { job, .. } => {
                    token_based = true;
                    if let Some(&idx) = run_of_job.get(&job) {
                        raws[idx].grants.push(at);
                        raws[idx].open_hold.get_or_insert(at);
                    }
                }
                TraceKind::TokenRevoke { job, .. } => {
                    token_based = true;
                    if let Some(&idx) = run_of_job.get(&job) {
                        close_hold(&mut raws, &mut holders, &client_device, idx, at);
                    }
                }
                TraceKind::OverflowCharge { job, gpu, .. } => {
                    if let Some(&idx) = run_of_job.get(&job) {
                        let g = gpu.as_nanos();
                        raws[idx].overflows.push((at.saturating_sub(g), at));
                    }
                }
                TraceKind::RetryScheduled { job, delay, .. } if job != u64::MAX => {
                    if let Some(&idx) = run_of_job.get(&job) {
                        raws[idx].backoffs.push((at, at + delay.as_nanos()));
                    }
                }
                TraceKind::KernelEnqueue { job, node, .. } => {
                    pending_enqueue.insert((job, node), at);
                }
                TraceKind::KernelLaunch { job, node, start, .. } => {
                    if let Some(enq) = pending_enqueue.remove(&(job, node)) {
                        if let Some(&idx) = run_of_job.get(&job) {
                            raws[idx].transfers.push((enq, start.as_nanos()));
                        }
                    }
                }
                TraceKind::DeviceStall { device, until_us } => {
                    grow(&mut device_stalls, device as usize, Vec::new());
                    device_stalls[device as usize].push((at, until_us * 1_000));
                }
                TraceKind::BreakerTransition { client, state } => {
                    seen_client(&mut client_device, client);
                    grow(&mut breaker_open, client as usize, None);
                    match state {
                        "open" => breaker_open[client as usize] = Some(at),
                        "shed" => {
                            grow(&mut active_run, client as usize, None);
                            if let Some(idx) = active_run[client as usize].take() {
                                close_hold(
                                    &mut raws,
                                    &mut holders,
                                    &client_device,
                                    idx,
                                    at,
                                );
                                let r = &mut raws[idx];
                                r.end = Some((at, Terminal::Shed));
                                r.shed_open_ns =
                                    breaker_open[client as usize].unwrap_or(r.reg_ns);
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }

        let client_count = client_device.len() as u32;
        grow(&mut holders, client_device.iter().copied().max().unwrap_or(0) as usize, Vec::new());

        // Second pass: assemble each terminal run's tiling.
        let mut runs = Vec::new();
        let mut unfinished = 0u32;
        let mut makespan_ns = 0u64;
        for raw in &raws {
            let (end_ns, terminal) = match raw.end {
                Some(e) => e,
                None => {
                    unfinished += 1;
                    continue;
                }
            };
            makespan_ns = makespan_ns.max(end_ns);
            let device = client_device.get(raw.client as usize).copied().unwrap_or(0);
            let start_ns = raw.wait.map_or(raw.reg_ns, |(w, _)| w.min(raw.reg_ns));
            let mut sweep = Sweep::new(start_ns, end_ns);
            if let Some((w, phase)) = raw.wait {
                sweep.claim(w, raw.reg_ns, phase);
            }
            if terminal == Terminal::Shed {
                sweep.claim(raw.shed_open_ns, end_ns, Phase::Shed);
            }
            for &(a, b) in &raw.backoffs {
                sweep.claim(a, b, Phase::Backoff);
            }
            if let Some(stalls) = device_stalls.get(device as usize) {
                for &(a, b) in stalls {
                    sweep.claim(a, b, Phase::Stall);
                }
            }
            // Overflow kernels execute after a revoke: claim them as
            // execution before the complement below calls them token wait.
            for &(a, b) in &raw.overflows {
                sweep.claim(a, b, Phase::Execute);
            }
            if token_based {
                // Token wait = the complement of the job's holding segments
                // over its span. Holds are closed in chronological order.
                let mut cursor = start_ns;
                for &(a, b) in &raw.holds {
                    sweep.claim(cursor, a, Phase::TokenWait);
                    cursor = cursor.max(b);
                }
                sweep.claim(cursor, end_ns, Phase::TokenWait);
            }
            for &g in &raw.grants {
                sweep.claim(g, g + horizon_ns, Phase::Handoff);
            }
            for &(a, b) in &raw.transfers {
                sweep.claim(a, b, Phase::Transfer);
            }
            sweep.claim(start_ns, end_ns, Phase::Execute);

            let (intervals, phase_ns) = sweep.finish();
            let claimed: u64 = phase_ns.iter().sum();
            assert!(
                claimed == end_ns - start_ns,
                "phase decomposition must tile job {} exactly: {} claimed of {} ns",
                raw.job,
                claimed,
                end_ns - start_ns,
            );
            runs.push(RunPhases {
                job: raw.job,
                client: raw.client,
                device,
                start_ns,
                end_ns,
                terminal,
                grants: raw.grants.len() as u32,
                phase_ns,
                intervals,
            });
        }

        let mut client_runs = vec![Vec::new(); client_count as usize];
        for (i, r) in runs.iter().enumerate() {
            client_runs[r.client as usize].push(i);
        }

        Attribution {
            runs,
            client_count,
            client_device,
            client_runs,
            holders,
            makespan_ns,
            token_based,
            unfinished,
            dropped_events: trace.dropped,
        }
    }

    /// Per-phase totals across all runs, ns, indexed by [`Phase::index`].
    pub fn phase_totals_ns(&self) -> [u64; PHASE_COUNT] {
        let mut totals = [0u64; PHASE_COUNT];
        for r in &self.runs {
            for (t, v) in totals.iter_mut().zip(r.phase_ns.iter()) {
                *t += v;
            }
        }
        totals
    }

    /// Per-client per-phase totals, ns.
    pub fn client_phase_totals_ns(&self) -> Vec<[u64; PHASE_COUNT]> {
        let mut totals = vec![[0u64; PHASE_COUNT]; self.client_count as usize];
        for r in &self.runs {
            for (t, v) in totals[r.client as usize].iter_mut().zip(r.phase_ns.iter()) {
                *t += v;
            }
        }
        totals
    }

    /// Sum of all run spans, ns (the denominator of phase fractions).
    pub fn total_span_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.span_ns()).sum()
    }

    /// Per-phase latency distributions over runs, as registry histograms in
    /// microseconds: one observation per run per phase (zeros included, so
    /// `count` is the run count everywhere).
    pub fn phase_histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut reg = MetricsRegistry::new();
        let ids: Vec<_> = Phase::ALL
            .iter()
            .map(|p| reg.histogram(phase_hist_name(*p)))
            .collect();
        for r in &self.runs {
            for (id, v) in ids.iter().zip(r.phase_ns.iter()) {
                reg.observe(*id, v / 1_000);
            }
        }
        reg.flush();
        Phase::ALL
            .iter()
            .zip(ids.iter())
            .map(|(p, id)| (p.name(), reg.hist(*id).snap()))
            .collect()
    }

    /// Nearest-rank p99 run index for a client, by span latency, or `None`
    /// when the client has no terminal run. Ties break on the earlier run,
    /// so the pick is deterministic.
    pub fn p99_run(&self, client: u32) -> Option<usize> {
        let idxs = self.client_runs.get(client as usize)?;
        if idxs.is_empty() {
            return None;
        }
        let mut by_latency: Vec<usize> = idxs.clone();
        by_latency.sort_by_key(|&i| (self.runs[i].span_ns(), self.runs[i].job));
        let rank = ((by_latency.len() as f64) * 0.99).ceil() as usize;
        Some(by_latency[rank.max(1) - 1])
    }
}

/// Registry histogram name for a phase's per-run latency distribution.
pub fn phase_hist_name(p: Phase) -> &'static str {
    match p {
        Phase::AdmissionWait => "phase_admission_wait_us",
        Phase::LoadWait => "phase_load_wait_us",
        Phase::Shed => "phase_shed_us",
        Phase::Backoff => "phase_backoff_us",
        Phase::Stall => "phase_stall_us",
        Phase::TokenWait => "phase_token_wait_us",
        Phase::Handoff => "phase_handoff_us",
        Phase::Transfer => "phase_transfer_us",
        Phase::Execute => "phase_execute_us",
    }
}

/// The priority-claiming sweep over one run's span: a set of unclaimed gaps
/// that candidate intervals carve up in arrival (priority) order.
struct Sweep {
    gaps: Vec<(u64, u64)>,
    claimed: Vec<Interval>,
}

impl Sweep {
    fn new(start: u64, end: u64) -> Sweep {
        let gaps = if end > start { vec![(start, end)] } else { Vec::new() };
        Sweep { gaps, claimed: Vec::new() }
    }

    /// Claims `[a, b) ∩ gaps` for `phase`, splitting the gaps around it.
    fn claim(&mut self, a: u64, b: u64, phase: Phase) {
        if b <= a || self.gaps.is_empty() {
            return;
        }
        let mut next = Vec::with_capacity(self.gaps.len() + 1);
        for &(ga, gb) in &self.gaps {
            let lo = ga.max(a);
            let hi = gb.min(b);
            if lo >= hi {
                next.push((ga, gb));
                continue;
            }
            if ga < lo {
                next.push((ga, lo));
            }
            if hi < gb {
                next.push((hi, gb));
            }
            self.claimed.push(Interval { start_ns: lo, end_ns: hi, phase });
        }
        self.gaps = next;
    }

    fn finish(mut self) -> (Vec<Interval>, [u64; PHASE_COUNT]) {
        self.claimed.sort_by_key(|iv| (iv.start_ns, iv.end_ns));
        let mut phase_ns = [0u64; PHASE_COUNT];
        for iv in &self.claimed {
            phase_ns[iv.phase.index()] += iv.end_ns - iv.start_ns;
        }
        (self.claimed, phase_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{SimDuration, SimTime};
    use trace::{SwitchReason, TraceBuffer, TraceConfig};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn synthetic_trace() -> Trace {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        let mut rec = |at: SimTime, kind: TraceKind| buf.record(at, kind);
        rec(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        rec(t(0), TraceKind::AdmissionQueued { client: 1 });
        rec(t(5), TraceKind::RunRegistered { job: 0, client: 0 });
        rec(
            t(5),
            TraceKind::TokenGrant {
                job: 0,
                client: Some(0),
                reason: SwitchReason::Register,
            },
        );
        rec(t(40), TraceKind::ClientAdmitted { client: 1, device: 0 });
        rec(t(45), TraceKind::RunRegistered { job: 1, client: 1 });
        rec(
            t(100),
            TraceKind::TokenRevoke {
                job: 0,
                client: Some(0),
                reason: SwitchReason::QuantumExpired,
            },
        );
        rec(
            t(100),
            TraceKind::TokenGrant {
                job: 1,
                client: Some(1),
                reason: SwitchReason::QuantumExpired,
            },
        );
        rec(t(150), TraceKind::RunCompleted { job: 1, client: 1 });
        rec(
            t(150),
            TraceKind::TokenGrant {
                job: 0,
                client: Some(0),
                reason: SwitchReason::Deregister,
            },
        );
        rec(t(200), TraceKind::RunCompleted { job: 0, client: 0 });
        buf.finish()
    }

    #[test]
    fn phases_tile_each_span_exactly() {
        let attr = Attribution::from_trace(&synthetic_trace(), 10_000);
        assert_eq!(attr.runs.len(), 2);
        assert!(attr.token_based);
        for r in &attr.runs {
            let sum: u64 = r.phase_ns.iter().sum();
            assert_eq!(sum, r.span_ns());
            // Intervals are disjoint, sorted, and cover the span.
            let mut cursor = r.start_ns;
            for iv in &r.intervals {
                assert_eq!(iv.start_ns, cursor);
                assert!(iv.end_ns > iv.start_ns);
                cursor = iv.end_ns;
            }
            assert_eq!(cursor, r.end_ns);
        }
    }

    #[test]
    fn admission_wait_and_token_wait_land_where_expected() {
        let attr = Attribution::from_trace(&synthetic_trace(), 10_000);
        let r1 = &attr.runs[1];
        assert_eq!(r1.client, 1);
        // Queued at 0, registered at 45: admission wait is 45 µs.
        assert_eq!(r1.start_ns, 0);
        assert_eq!(r1.phase_ns[Phase::AdmissionWait.index()], 45_000);
        // Registered at 45, granted at 100: token wait is 55 µs.
        assert_eq!(r1.phase_ns[Phase::TokenWait.index()], 55_000);
        // Granted at 100 with a 10 µs horizon: hand-off then execute.
        assert_eq!(r1.phase_ns[Phase::Handoff.index()], 10_000);
        assert_eq!(r1.phase_ns[Phase::Execute.index()], 40_000);
        // The holder timeline knows job 0 held [5, 100] on device 0.
        assert_eq!(attr.holders[0][0].job, 0);
        assert_eq!(attr.holders[0][0].end_ns, 100_000);
    }

    #[test]
    fn fifo_traces_have_no_token_wait() {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        buf.record(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        buf.record(t(1), TraceKind::RunRegistered { job: 0, client: 0 });
        buf.record(t(90), TraceKind::RunCompleted { job: 0, client: 0 });
        let attr = Attribution::from_trace(&buf.finish(), 10_000);
        assert!(!attr.token_based);
        let r = &attr.runs[0];
        assert_eq!(r.phase_ns[Phase::TokenWait.index()], 0);
        assert_eq!(r.phase_ns[Phase::Execute.index()], r.span_ns());
    }

    #[test]
    fn backoff_and_stall_claim_ahead_of_execute() {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        buf.record(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        buf.record(t(0), TraceKind::RunRegistered { job: 0, client: 0 });
        buf.record(t(10), TraceKind::DeviceStall { device: 0, until_us: 20 });
        buf.record(
            t(30),
            TraceKind::RetryScheduled {
                job: 0,
                client: 0,
                node: 2,
                attempt: 1,
                delay: SimDuration::from_micros(15),
            },
        );
        buf.record(t(100), TraceKind::RunCompleted { job: 0, client: 0 });
        let attr = Attribution::from_trace(&buf.finish(), 0);
        let r = &attr.runs[0];
        assert_eq!(r.phase_ns[Phase::Stall.index()], 10_000);
        assert_eq!(r.phase_ns[Phase::Backoff.index()], 15_000);
        assert_eq!(r.phase_ns[Phase::Execute.index()], 75_000);
    }

    #[test]
    fn p99_pick_is_nearest_rank_and_deterministic() {
        let mut buf = TraceBuffer::new(&TraceConfig::sampled());
        buf.record(t(0), TraceKind::ClientAdmitted { client: 0, device: 0 });
        for j in 0..4u64 {
            let start = j * 100;
            buf.record(t(start), TraceKind::RunRegistered { job: j, client: 0 });
            buf.record(
                t(start + 10 + j),
                TraceKind::RunCompleted { job: j, client: 0 },
            );
        }
        let attr = Attribution::from_trace(&buf.finish(), 0);
        // Latencies 10,11,12,13 µs: p99 of 4 runs is the slowest.
        let idx = attr.p99_run(0).unwrap();
        assert_eq!(attr.runs[idx].job, 3);
        assert!(attr.p99_run(7).is_none());
    }
}
