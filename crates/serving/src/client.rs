//! Client workload specification.

use models::LoadedModel;
use simtime::{SimDuration, SimTime};

/// One client: a stream of sequential `Session::Run` requests against a
/// single model, mirroring the paper's workload ("each client submits 10
/// batches sequentially", §4).
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The model (with batch size baked in) this client queries.
    pub model: LoadedModel,
    /// Number of sequential batches (one `Session::Run` each).
    pub num_batches: u32,
    /// Weight for weighted-fair scheduling (≥ 1; plain fair sharing treats
    /// everyone as weight 1).
    pub weight: u32,
    /// Priority for priority scheduling (higher runs first; ignored by
    /// other policies).
    pub priority: u32,
    /// When the client connects.
    pub start_at: SimTime,
    /// Idle time between consecutive batches — the "intermittent and bursty
    /// GPU usage" of real applications (paper §1): a camera frame interval,
    /// user think time, an upstream pipeline stage. Zero (the default)
    /// reproduces the paper's back-to-back evaluation workload.
    pub think_time: SimDuration,
    /// Per-`Session::Run` deadline: if a run has not completed this long
    /// after it was issued, it is cancelled, its queued kernels dropped and
    /// the whole session ends with
    /// [`ClientOutcome::DeadlineExceeded`](crate::ClientOutcome::DeadlineExceeded).
    /// `None` (the default) disables deadlines.
    pub run_deadline: Option<SimDuration>,
}

impl ClientSpec {
    /// A default client: unit weight, zero priority, starts at time zero.
    pub fn new(model: LoadedModel, num_batches: u32) -> Self {
        ClientSpec {
            model,
            num_batches,
            weight: 1,
            priority: 0,
            start_at: SimTime::ZERO,
            think_time: SimDuration::ZERO,
            run_deadline: None,
        }
    }

    /// Sets the scheduling weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the connection time.
    pub fn with_start(mut self, at: SimTime) -> Self {
        self.start_at = at;
        self
    }

    /// Sets the idle gap between consecutive batches.
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think_time = think;
        self
    }

    /// Sets the per-run deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn with_run_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(deadline > SimDuration::ZERO, "deadline must be positive");
        self.run_deadline = Some(deadline);
        self
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if `num_batches` or `weight` is zero.
    pub fn validate(&self) {
        assert!(self.num_batches > 0, "client must send at least one batch");
        assert!(self.weight > 0, "weight must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let spec = ClientSpec::new(models::mini::tiny(1), 3)
            .with_weight(2)
            .with_priority(7)
            .with_start(SimTime::from_millis(5))
            .with_think_time(SimDuration::from_millis(2));
        assert_eq!(spec.num_batches, 3);
        assert_eq!(spec.weight, 2);
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.start_at, SimTime::from_millis(5));
        assert_eq!(spec.think_time, SimDuration::from_millis(2));
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_rejected() {
        ClientSpec::new(models::mini::tiny(1), 0).validate();
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        let mut s = ClientSpec::new(models::mini::tiny(1), 1);
        s.weight = 0;
        s.validate();
    }
}
