//! Structured execution traces.
//!
//! With [`EngineConfig::record_trace`](crate::EngineConfig::record_trace)
//! set, the engine records every lifecycle and scheduling event with its
//! virtual timestamp. Traces make scheduler behaviour auditable — which job
//! held the token when, where a stall began — and feed external timeline
//! tooling.

use crate::scheduler::{ClientId, JobId};
use simtime::SimTime;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of events the engine traces.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A client connected and was admitted (memory reserved).
    ClientAdmitted(ClientId),
    /// A client could not be admitted.
    ClientRejected(ClientId),
    /// A `Session::Run` registered with the scheduler.
    RunRegistered {
        /// The new job.
        job: JobId,
        /// Its owner.
        client: ClientId,
    },
    /// The scheduling token moved.
    TokenMoved {
        /// Previous holder.
        from: Option<JobId>,
        /// New holder.
        to: Option<JobId>,
    },
    /// A `Session::Run` completed.
    RunCompleted {
        /// The finished job.
        job: JobId,
        /// Its owner.
        client: ClientId,
    },
    /// A run was cancelled by its deadline.
    RunCancelled {
        /// The cancelled job.
        job: JobId,
        /// Its owner.
        client: ClientId,
    },
    /// A client finished its whole session.
    ClientFinished(ClientId),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.kind {
            TraceKind::ClientAdmitted(c) => write!(f, "{c} admitted"),
            TraceKind::ClientRejected(c) => write!(f, "{c} rejected"),
            TraceKind::RunRegistered { job, client } => {
                write!(f, "{job} registered ({client})")
            }
            TraceKind::TokenMoved { from, to } => {
                let fmt_opt = |j: &Option<JobId>| {
                    j.map_or("-".to_string(), |j| j.to_string())
                };
                write!(f, "token {} -> {}", fmt_opt(from), fmt_opt(to))
            }
            TraceKind::RunCompleted { job, client } => {
                write!(f, "{job} completed ({client})")
            }
            TraceKind::RunCancelled { job, client } => {
                write!(f, "{job} cancelled by deadline ({client})")
            }
            TraceKind::ClientFinished(c) => write!(f, "{c} finished"),
        }
    }
}

/// Renders a trace as one line per event; `limit` caps the output
/// (`usize::MAX` for everything).
pub fn render_trace(trace: &[TraceEvent], limit: usize) -> String {
    let mut out = String::new();
    for event in trace.iter().take(limit) {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    if trace.len() > limit {
        out.push_str(&format!("... ({} more events)\n", trace.len() - limit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let e = TraceEvent {
            at: SimTime::from_micros(1500),
            kind: TraceKind::TokenMoved {
                from: Some(JobId(1)),
                to: None,
            },
        };
        assert_eq!(e.to_string(), "[0.001500s] token job1 -> -");
    }

    #[test]
    fn render_caps_output() {
        let trace: Vec<TraceEvent> = (0..10)
            .map(|i| TraceEvent {
                at: SimTime::from_nanos(i),
                kind: TraceKind::ClientFinished(ClientId(i as u32)),
            })
            .collect();
        let out = render_trace(&trace, 3);
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("7 more events"));
        let full = render_trace(&trace, usize::MAX);
        assert_eq!(full.lines().count(), 10);
    }
}
