//! Structured execution traces — a façade over the workspace [`trace`]
//! crate (re-exported here so downstream code keeps one import path).
//!
//! With [`EngineConfig::trace`](crate::EngineConfig::trace) set to a
//! capturing mode, the engine records every lifecycle and scheduling event
//! (plus per-kernel events in [`TraceMode::Full`]) with its virtual
//! timestamp and a dense sequence number. Traces make scheduler behaviour
//! auditable — which job held the token when, where a hand-off bubble
//! began — and export to Chrome trace-event JSON via
//! [`RunReport::chrome_trace_json`](crate::RunReport::chrome_trace_json)
//! or aggregate into a [`TraceStats`] snapshot.

pub use trace::{
    chrome_trace, chrome_trace_json, render_trace, SwitchReason, Trace, TraceBuffer, TraceConfig,
    TraceEvent, TraceKind, TraceMeta, TraceMode, TraceStats,
};
