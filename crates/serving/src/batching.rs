//! Request batching — the serving-system function the paper's §2 describes:
//! individual inference requests are grouped into batches before execution
//! because GPUs are far more efficient on large batches.
//!
//! TF-Serving's batcher is time/size driven: a batch closes when it reaches
//! `max_batch` requests or when `timeout` elapses since its first request —
//! independent of GPU state. That independence lets the batching *plan* be
//! computed directly from the arrival trace; each planned batch then enters
//! the engine as one `Session::Run`.
//!
//! ```
//! use serving::batching::{plan_batches, poisson_arrivals, BatchingConfig};
//! use simtime::SimDuration;
//!
//! let arrivals = poisson_arrivals(100.0, SimDuration::from_secs(1), 7);
//! let cfg = BatchingConfig::new(32, SimDuration::from_millis(50));
//! let plan = plan_batches(&arrivals, &cfg);
//! assert!(plan.iter().all(|b| b.size() <= 32));
//! let total: u64 = plan.iter().map(|b| b.size()).sum();
//! assert_eq!(total as usize, arrivals.len());
//! ```

use simtime::{SimDuration, SimTime};

// Arrival generation moved to `crate::workload`; re-exported here so the
// established `serving::batching::poisson_arrivals` path keeps working.
pub use crate::workload::poisson_arrivals;

/// Batcher parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchingConfig {
    max_batch: u64,
    timeout: SimDuration,
}

impl BatchingConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: u64, timeout: SimDuration) -> Self {
        assert!(max_batch > 0, "batches must hold at least one request");
        BatchingConfig { max_batch, timeout }
    }

    /// Maximum requests per batch.
    pub fn max_batch(&self) -> u64 {
        self.max_batch
    }

    /// Time a batch may wait for more requests after its first one.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

/// One batch the batcher formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBatch {
    formed_at: SimTime,
    request_arrivals: Vec<SimTime>,
}

impl PlannedBatch {
    /// When the batch closed (size reached or timeout expired) — the instant
    /// its `Session::Run` can be issued.
    pub fn formed_at(&self) -> SimTime {
        self.formed_at
    }

    /// Number of requests in the batch.
    pub fn size(&self) -> u64 {
        self.request_arrivals.len() as u64
    }

    /// Arrival times of the requests inside the batch (for per-request
    /// latency accounting: `completion - arrival`).
    pub fn request_arrivals(&self) -> &[SimTime] {
        &self.request_arrivals
    }

    /// Queueing delay of the oldest request in the batch at formation time.
    pub fn oldest_wait(&self) -> SimDuration {
        self.request_arrivals
            .first()
            .map_or(SimDuration::ZERO, |&first| self.formed_at - first)
    }
}

/// Runs the batching policy over a sorted arrival trace.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted in non-decreasing order.
pub fn plan_batches(arrivals: &[SimTime], cfg: &BatchingConfig) -> Vec<PlannedBatch> {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival trace must be sorted"
    );
    let mut batches = Vec::new();
    let mut current: Vec<SimTime> = Vec::new();
    let mut deadline = SimTime::MAX;
    for &t in arrivals {
        // Close the open batch first if its timeout passed before `t`.
        if !current.is_empty() && t > deadline {
            batches.push(PlannedBatch {
                formed_at: deadline,
                request_arrivals: std::mem::take(&mut current),
            });
            deadline = SimTime::MAX;
        }
        if current.is_empty() {
            deadline = t + cfg.timeout;
        }
        current.push(t);
        if current.len() as u64 == cfg.max_batch {
            batches.push(PlannedBatch {
                formed_at: t,
                request_arrivals: std::mem::take(&mut current),
            });
            deadline = SimTime::MAX;
        }
    }
    if !current.is_empty() {
        batches.push(PlannedBatch {
            formed_at: deadline,
            request_arrivals: current,
        });
    }
    batches
}

/// Projects a batching plan into the `(batch size, oldest wait)`
/// observations the telemetry registry seeds its `batch_size` and
/// `batch_wait_us` histograms with — see
/// [`TelemetryConfig::with_batches`](telemetry::TelemetryConfig::with_batches).
pub fn plan_telemetry(plan: &[PlannedBatch]) -> Vec<(u64, SimDuration)> {
    plan.iter().map(|b| (b.size(), b.oldest_wait())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(ms: &[u64]) -> Vec<SimTime> {
        ms.iter().map(|&m| SimTime::from_millis(m)).collect()
    }

    #[test]
    fn size_cap_closes_batches() {
        let cfg = BatchingConfig::new(2, SimDuration::from_secs(100));
        let plan = plan_batches(&times(&[1, 2, 3, 4, 5]), &cfg);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].size(), 2);
        assert_eq!(plan[0].formed_at(), SimTime::from_millis(2));
        assert_eq!(plan[1].size(), 2);
        assert_eq!(plan[2].size(), 1, "tail batch flushes at timeout");
    }

    #[test]
    fn timeout_closes_sparse_batches() {
        let cfg = BatchingConfig::new(100, SimDuration::from_millis(10));
        let plan = plan_batches(&times(&[0, 5, 50, 53]), &cfg);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].size(), 2);
        // First batch opened at 0, closed at its 10ms deadline.
        assert_eq!(plan[0].formed_at(), SimTime::from_millis(10));
        assert_eq!(plan[1].size(), 2);
        assert_eq!(plan[1].formed_at(), SimTime::from_millis(60));
    }

    #[test]
    fn oldest_wait_measures_queueing() {
        let cfg = BatchingConfig::new(100, SimDuration::from_millis(10));
        let plan = plan_batches(&times(&[0, 9]), &cfg);
        assert_eq!(plan[0].oldest_wait(), SimDuration::from_millis(10));
    }

    #[test]
    fn all_requests_are_batched_exactly_once() {
        let arrivals = poisson_arrivals(500.0, SimDuration::from_secs(2), 3);
        let cfg = BatchingConfig::new(16, SimDuration::from_millis(20));
        let plan = plan_batches(&arrivals, &cfg);
        let total: usize = plan.iter().map(|b| b.size() as usize).sum();
        assert_eq!(total, arrivals.len());
        // Batches close in order.
        assert!(plan.windows(2).all(|w| w[0].formed_at() <= w[1].formed_at()));
        // No batch exceeds the cap.
        assert!(plan.iter().all(|b| b.size() <= 16));
    }

    #[test]
    fn plan_telemetry_projects_sizes_and_waits() {
        let cfg = BatchingConfig::new(2, SimDuration::from_millis(10));
        let plan = plan_batches(&times(&[0, 1, 5]), &cfg);
        let obs = plan_telemetry(&plan);
        assert_eq!(obs.len(), plan.len());
        assert_eq!(obs[0], (2, SimDuration::from_millis(1)));
        // The tail batch flushed at its 10ms timeout.
        assert_eq!(obs[1], (1, SimDuration::from_millis(10)));
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        let arrivals = poisson_arrivals(1_000.0, SimDuration::from_secs(4), 9);
        let rate = arrivals.len() as f64 / 4.0;
        assert!((rate - 1_000.0).abs() < 60.0, "rate {rate}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let cfg = BatchingConfig::new(4, SimDuration::from_millis(1));
        plan_batches(&times(&[5, 1]), &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_batch_config_panics() {
        BatchingConfig::new(0, SimDuration::ZERO);
    }
}
