//! Deterministic device-group sharding: one engine per GPU, windowed
//! conservative-lookahead synchronization, and a byte-stable merge.
//!
//! # Topology
//!
//! A sharded run always decomposes into **one group per device** — the
//! partition is fixed by the hardware topology, never by the worker-thread
//! count. [`EngineConfig::shards`] only says how many OS threads execute
//! the groups concurrently, so the simulated result is byte-identical for
//! every `shards` value (including 1) by construction: threads race over
//! *which group advances first in wall-clock*, never over anything a group
//! can observe.
//!
//! Clients are placed onto groups up front by a deterministic greedy rule:
//! in spec order, each client joins the group with the lowest projected
//! memory-load fraction (weights + activations over device capacity, exact
//! integer compare, ties to the lowest group index) — the static analogue
//! of the classic engine's most-free-memory admission placement.
//!
//! # Conservative lookahead
//!
//! Groups interact through exactly one channel: the shared CPU worker
//! pool, rebalanced only at window barriers. The window length is the
//! token hand-off latency `switch_latency` — the minimum time it takes a
//! freed worker to matter to anyone (a parked gang must win a hand-off
//! before it can use one), so deferring pool movement to the next barrier
//! never changes what a group could have computed inside its window. At a
//! barrier, groups whose event queues have drained donate their idle
//! workers; the pooled donation is granted to the first still-running
//! group with a starving job, in group order, as a `PoolGrant` event
//! stamped at the barrier instant — so the wake-up replays identically no
//! matter which thread ran which group.
//!
//! # Merge
//!
//! Group-local ids are lifted into the global namespace (clients via the
//! placement table, device `0` of group `g` to device `g`, job `j` to
//! `j * G + g`), trace events are stably sorted by `(time, group)` and
//! re-stamped with dense sequence numbers, and scalar tallies sum in group
//! order. Per-device utilizations are all computed against the global
//! makespan, matching the classic engine's formula.

use crate::client::ClientSpec;
use crate::config::EngineConfig;
use crate::engine::{build_engine, run_experiment, Engine};
use crate::report::RunReport;
use crate::scheduler::{ClientId, Scheduler};
use simtime::{SimDuration, SimTime};
use trace::Trace;

/// Runs one experiment sharded by device group; see the module docs for
/// the topology, synchronization and merge rules. `make_scheduler` is
/// called once per group (with the group index) — every group arbitrates
/// its own device, so per-device schedulers compose naturally.
///
/// Single-device configurations have exactly one group and take the
/// classic [`run_experiment`] path unchanged, whatever
/// [`EngineConfig::shards`] says — existing experiments are byte-identical
/// under this entry point.
///
/// # Panics
///
/// Panics on invalid configurations or client specs, if telemetry is
/// enabled with more than one group (per-group hubs cannot merge into one
/// coherent snapshot series yet), or if the worker pool is smaller than
/// the group count.
pub fn run_sharded_experiment(
    cfg: &EngineConfig,
    clients: Vec<ClientSpec>,
    make_scheduler: &(dyn Fn(usize) -> Box<dyn Scheduler> + Sync),
) -> RunReport {
    cfg.validate();
    let groups = 1 + cfg.extra_devices.len();
    // Cluster mode routes runs *between* devices, so the fleet must live
    // inside one engine: per-device groups cannot see each other's queues.
    // The classic path is already byte-identical for every shard count.
    if groups == 1 || cfg.cluster.is_some() {
        let mut scheduler = make_scheduler(0);
        return run_experiment(cfg, clients, scheduler.as_mut());
    }
    assert!(
        !cfg.telemetry.enabled,
        "telemetry requires a single device group (got {groups})"
    );
    assert!(
        cfg.pool_size >= groups as u32,
        "worker pool ({}) smaller than the device-group count ({groups})",
        cfg.pool_size
    );

    let membership = place_clients(cfg, &clients);

    // Partition specs into group-local vectors, preserving spec order.
    let mut group_specs: Vec<Vec<ClientSpec>> = (0..groups).map(|_| Vec::new()).collect();
    {
        let mut specs = clients.into_iter();
        let mut owner = vec![0usize; membership.iter().map(Vec::len).sum()];
        for (g, members) in membership.iter().enumerate() {
            for &global in members {
                owner[global as usize] = g;
            }
        }
        for (global, spec) in specs.by_ref().enumerate() {
            group_specs[owner[global]].push(spec);
        }
    }

    // Static worker-pool split: near-equal shares, remainder to the lowest
    // groups. Drained groups donate their share back at barriers.
    let base = cfg.pool_size / groups as u32;
    let rem = (cfg.pool_size % groups as u32) as usize;
    let share = |g: usize| base + u32::from(g < rem);

    let mut profiles = vec![cfg.device.clone()];
    profiles.extend(cfg.extra_devices.iter().cloned());
    let sub_cfgs: Vec<EngineConfig> = (0..groups)
        .map(|g| {
            let mut sub = cfg.clone();
            sub.device = profiles[g].clone();
            sub.extra_devices = Vec::new();
            sub.pool_size = share(g);
            // Decorrelate the per-group RNG streams; any deterministic
            // function of (seed, group) keeps shard-count invariance.
            sub.seed = cfg.seed ^ (g as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            sub.shards = 1;
            sub
        })
        .collect();

    let mut schedulers: Vec<Box<dyn Scheduler>> =
        (0..groups).map(make_scheduler).collect();
    let mut engines: Vec<Engine<'_>> = schedulers
        .iter_mut()
        .zip(sub_cfgs.iter().zip(group_specs))
        .map(|(s, (sub, specs))| build_engine(sub, specs, s.as_mut()))
        .collect();

    // The window loop, on a persistent worker pool — windows are
    // sub-millisecond, so per-window thread spawns would dominate them.
    // `bank` carries donated workers that found no taker at earlier
    // barriers.
    let lookahead = cfg.switch_latency.max(SimDuration::from_nanos(1));
    let threads = cfg.shards as usize;
    simpar::with_pool(threads, move |pool| {
        let mut donated = vec![false; groups];
        let mut bank = 0u32;
        while let Some(earliest) = engines.iter().filter_map(Engine::next_event_time).min() {
            let bound = earliest + lookahead;
            pool.for_each_mut(&mut engines, |_, e| e.run_window(bound));
            // Barrier rebalance, in group order.
            for (g, e) in engines.iter_mut().enumerate() {
                if !donated[g] && !e.has_pending() {
                    donated[g] = true;
                    bank += e.take_idle_workers();
                }
            }
            if bank > 0 {
                if let Some(e) = engines.iter_mut().find(|e| e.has_pending() && e.is_starved()) {
                    e.grant_workers(bound, bank);
                    bank = 0;
                }
            }
        }

        let makespan = engines.iter().map(Engine::clock).max().unwrap_or(SimTime::ZERO);
        let subs: Vec<RunReport> = engines.into_iter().map(|e| e.finalize_at(makespan)).collect();
        merge_reports(makespan, subs, &membership)
    })
}

/// Greedy deterministic placement: client order, lowest projected load
/// fraction, exact integer cross-multiplied compares, ties to the lowest
/// group. Returns the ascending global client ids of each group.
fn place_clients(cfg: &EngineConfig, clients: &[ClientSpec]) -> Vec<Vec<u32>> {
    let mut caps = vec![cfg.device.memory_bytes()];
    caps.extend(cfg.extra_devices.iter().map(|p| p.memory_bytes()));
    let groups = caps.len();
    let mut load = vec![0u64; groups];
    let mut membership: Vec<Vec<u32>> = (0..groups).map(|_| Vec::new()).collect();
    for (i, spec) in clients.iter().enumerate() {
        let bytes = spec.model.weights_bytes() + spec.model.activation_bytes();
        let mut best = 0usize;
        for g in 1..groups {
            // (load[g]+bytes)/caps[g] < (load[best]+bytes)/caps[best]
            let lhs = u128::from(load[g] + bytes) * u128::from(caps[best]);
            let rhs = u128::from(load[best] + bytes) * u128::from(caps[g]);
            if lhs < rhs {
                best = g;
            }
        }
        load[best] += bytes;
        membership[best].push(i as u32);
    }
    membership
}

/// Merges per-group reports into one global [`RunReport`]; see the module
/// docs for the id-lifting and ordering rules.
fn merge_reports(
    makespan: SimTime,
    mut subs: Vec<RunReport>,
    membership: &[Vec<u32>],
) -> RunReport {
    let groups = subs.len();
    let n_clients: usize = membership.iter().map(Vec::len).sum();

    let mut clients = Vec::with_capacity(n_clients);
    for (g, sub) in subs.iter_mut().enumerate() {
        for mut cr in sub.clients.drain(..) {
            cr.client = ClientId(membership[g][cr.client.0 as usize]);
            clients.push(cr);
        }
    }
    clients.sort_by_key(|c| c.client.0);

    // Trace merge: lift ids, stable-sort by (time, group) — within a group
    // events are already in seq order — then restamp dense sequence numbers.
    let mut events = Vec::with_capacity(subs.iter().map(|s| s.trace.events.len()).sum());
    let mut dropped = 0;
    for (g, sub) in subs.iter_mut().enumerate() {
        dropped += sub.trace.dropped;
        let client_of = |c: u32| membership[g][c as usize];
        let device_of = |_d: u32| g as u32;
        let job_of = |j: u64| j * groups as u64 + g as u64;
        for mut ev in sub.trace.events.drain(..) {
            ev.kind.remap_ids(&client_of, &device_of, &job_of);
            events.push((g, ev));
        }
    }
    events.sort_by_key(|&(g, ref ev)| (ev.at, g));
    let events = events
        .into_iter()
        .enumerate()
        .map(|(seq, (_, mut ev))| {
            ev.seq = seq as u64;
            ev
        })
        .collect();

    let device_utilizations: Vec<f64> =
        subs.iter().flat_map(|s| s.device_utilizations.iter().copied()).collect();
    let utilization =
        device_utilizations.iter().sum::<f64>() / device_utilizations.len().max(1) as f64;
    let scheduling_intervals =
        subs.iter_mut().flat_map(|s| s.scheduling_intervals.drain(..)).collect();

    let telemetry = std::mem::take(&mut subs[0].telemetry);
    RunReport {
        clients,
        makespan,
        utilization,
        device_utilizations,
        scheduling_intervals,
        switch_count: subs.iter().map(|s| s.switch_count).sum(),
        kernel_count: subs.iter().map(|s| s.kernel_count).sum(),
        event_count: subs.iter().map(|s| s.event_count).sum(),
        scheduler_name: std::mem::take(&mut subs[0].scheduler_name),
        peak_memory: subs.iter().map(|s| s.peak_memory).sum(),
        trace: Trace { events, dropped },
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FifoScheduler;

    fn factory() -> impl Fn(usize) -> Box<dyn Scheduler> + Sync {
        |_g| Box::new(FifoScheduler::new()) as Box<dyn Scheduler>
    }

    fn specs(n: usize, batches: u32) -> Vec<ClientSpec> {
        (0..n).map(|_| ClientSpec::new(models::mini::tiny(4), batches)).collect()
    }

    #[test]
    fn single_group_matches_classic() {
        let cfg = EngineConfig { seed: 7, ..EngineConfig::default() };
        let sharded = run_sharded_experiment(&cfg, specs(3, 2), &factory());
        let classic = run_experiment(&cfg, specs(3, 2), &mut FifoScheduler::new());
        assert_eq!(format!("{sharded:?}"), format!("{classic:?}"));
    }

    #[test]
    fn shard_count_invariance() {
        let mk = |shards| {
            let cfg = EngineConfig {
                seed: 11,
                extra_devices: vec![EngineConfig::default().device.clone()],
                shards,
                ..EngineConfig::default()
            };
            run_sharded_experiment(&cfg, specs(4, 2), &factory())
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(format!("{one:?}"), format!("{four:?}"));
        assert!(one.all_finished());
    }

    #[test]
    fn cluster_runs_single_group_and_is_shard_count_invariant() {
        let managed = |name: &str| {
            let m = models::mini::tiny(4);
            models::LoadedModel::from_parts(
                name,
                None,
                m.batch(),
                std::sync::Arc::clone(m.graph()),
                m.weights_bytes(),
                m.activation_bytes(),
            )
        };
        let mk = |shards| {
            let plan = lifecycle::DeploymentPlan::new()
                .with_model(lifecycle::ModelDeployment::new("a", managed("a")))
                .with_model(lifecycle::ModelDeployment::new("b", managed("b")));
            let cc = cluster::ClusterConfig::new(
                vec![gpusim::DeviceProfile::gtx_1080_ti(), gpusim::DeviceProfile::titan_x()],
                lifecycle::LifecycleConfig::new(plan),
            )
            .with_tick(SimDuration::from_millis(1));
            let cfg = EngineConfig { seed: 13, shards, ..EngineConfig::default() }
                .with_cluster(cc);
            let clients = vec![
                ClientSpec::new(managed("a"), 2),
                ClientSpec::new(managed("b"), 2),
            ];
            run_sharded_experiment(&cfg, clients, &factory())
        };
        let one = mk(1);
        let eight = mk(8);
        assert_eq!(format!("{one:?}"), format!("{eight:?}"));
        assert!(one.all_finished());
    }

    #[test]
    fn placement_is_balanced_and_total() {
        let cfg = EngineConfig {
            extra_devices: vec![EngineConfig::default().device.clone()],
            ..EngineConfig::default()
        };
        let clients = specs(6, 1);
        let membership = place_clients(&cfg, &clients);
        let total: usize = membership.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert!(membership.iter().all(|m| !m.is_empty()), "greedy left a device empty");
    }
}
