//! Open-loop workload generation: deterministic arrival traces shared by
//! the batcher, the lifecycle churn experiments and the harness at large.
//!
//! Open-loop arrivals (clients fire on a schedule regardless of system
//! state) are the standard way to stress a serving stack without the
//! coordinated-omission bias of closed loops. Every generator here is a
//! pure function of its arguments — same inputs, same trace, regardless
//! of the surrounding harness parallelism.

use simtime::{DetRng, SimDuration, SimTime};

/// Generates a Poisson arrival trace at `rate_per_sec` over `horizon`
/// (deterministic per seed).
///
/// # Panics
///
/// Panics if `rate_per_sec` is not positive.
pub fn poisson_arrivals(rate_per_sec: f64, horizon: SimDuration, seed: u64) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let mut rng = DetRng::new(seed ^ 0xA221_7A15);
    let mut t = 0.0_f64;
    let horizon_s = horizon.as_secs_f64();
    let mut arrivals = Vec::new();
    loop {
        // Exponential inter-arrival times.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        t += -u.ln() / rate_per_sec;
        if t >= horizon_s {
            return arrivals;
        }
        arrivals.push(SimTime::from_nanos((t * 1e9) as u64));
    }
}

/// Generates `n` evenly spaced arrivals starting at `start`: the constant-
/// rate open-loop trace (arrival `i` at `start + i * spacing`).
pub fn uniform_arrivals(n: usize, spacing: SimDuration, start: SimTime) -> Vec<SimTime> {
    (0..n as u64).map(|i| start + spacing.mul_f64(i as f64)).collect()
}

/// Thins a trace to every `stride`-th arrival beginning at `offset` — the
/// standard way to split one arrival process across a pool of clients
/// without re-drawing randomness per client.
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn split_arrivals(arrivals: &[SimTime], stride: usize, offset: usize) -> Vec<SimTime> {
    assert!(stride > 0, "stride must be positive");
    arrivals.iter().skip(offset).step_by(stride).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let xs = uniform_arrivals(4, SimDuration::from_millis(5), SimTime::from_millis(2));
        assert_eq!(
            xs,
            vec![
                SimTime::from_millis(2),
                SimTime::from_millis(7),
                SimTime::from_millis(12),
                SimTime::from_millis(17),
            ]
        );
        assert!(uniform_arrivals(0, SimDuration::ZERO, SimTime::ZERO).is_empty());
    }

    #[test]
    fn split_partitions_without_loss() {
        let xs = poisson_arrivals(200.0, SimDuration::from_secs(1), 11);
        let a = split_arrivals(&xs, 3, 0);
        let b = split_arrivals(&xs, 3, 1);
        let c = split_arrivals(&xs, 3, 2);
        assert_eq!(a.len() + b.len() + c.len(), xs.len());
        let mut merged: Vec<SimTime> = a.into_iter().chain(b).chain(c).collect();
        merged.sort();
        assert_eq!(merged, xs);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson_arrivals(300.0, SimDuration::from_secs(1), 5);
        let b = poisson_arrivals(300.0, SimDuration::from_secs(1), 5);
        let c = poisson_arrivals(300.0, SimDuration::from_secs(1), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
