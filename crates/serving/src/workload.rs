//! Open-loop workload generation: deterministic arrival traces shared by
//! the batcher, the lifecycle churn experiments and the harness at large.
//!
//! Open-loop arrivals (clients fire on a schedule regardless of system
//! state) are the standard way to stress a serving stack without the
//! coordinated-omission bias of closed loops. Every generator here is a
//! pure function of its arguments — same inputs, same trace, regardless
//! of the surrounding harness parallelism.

use simtime::{DetRng, SimDuration, SimTime};

/// Generates a Poisson arrival trace at `rate_per_sec` over `horizon`
/// (deterministic per seed).
///
/// # Panics
///
/// Panics if `rate_per_sec` is not positive.
pub fn poisson_arrivals(rate_per_sec: f64, horizon: SimDuration, seed: u64) -> Vec<SimTime> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let mut rng = DetRng::new(seed ^ 0xA221_7A15);
    let mut t = 0.0_f64;
    let horizon_s = horizon.as_secs_f64();
    let mut arrivals = Vec::new();
    loop {
        // Exponential inter-arrival times.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        t += -u.ln() / rate_per_sec;
        if t >= horizon_s {
            return arrivals;
        }
        arrivals.push(SimTime::from_nanos((t * 1e9) as u64));
    }
}

/// Generates `n` evenly spaced arrivals starting at `start`: the constant-
/// rate open-loop trace (arrival `i` at `start + i * spacing`).
pub fn uniform_arrivals(n: usize, spacing: SimDuration, start: SimTime) -> Vec<SimTime> {
    (0..n as u64).map(|i| start + spacing.mul_f64(i as f64)).collect()
}

/// Thins a trace to every `stride`-th arrival beginning at `offset` — the
/// standard way to split one arrival process across a pool of clients
/// without re-drawing randomness per client.
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn split_arrivals(arrivals: &[SimTime], stride: usize, offset: usize) -> Vec<SimTime> {
    assert!(stride > 0, "stride must be positive");
    arrivals.iter().skip(offset).step_by(stride).copied().collect()
}

/// Assigns a model index to each arrival by sampling a Zipf(s) popularity
/// law over `n_models`, with a mid-run **phase shift**: from arrival
/// `shift_at` onward the hot set rotates by `rotate` positions (model `m`
/// takes the popularity rank previously held by `(m + rotate) % n_models`).
/// This is the skewed, phase-shifting demand the fleet reconfiguration
/// loop is built for: a static placement tuned to the first phase starves
/// after the shift, while min-cost-flow replication follows the new hot
/// set. Deterministic per seed; a pure function of its arguments.
///
/// # Panics
///
/// Panics if `n_models` is zero or `exponent` is negative.
pub fn zipf_models(
    n_arrivals: usize,
    n_models: usize,
    exponent: f64,
    shift_at: usize,
    rotate: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(n_models > 0, "need at least one model");
    assert!(exponent >= 0.0, "negative zipf exponent");
    // Cumulative weights of rank r (0-based): w_r = 1 / (r + 1)^s.
    let mut cum = Vec::with_capacity(n_models);
    let mut total = 0.0_f64;
    for r in 0..n_models {
        total += 1.0 / ((r + 1) as f64).powf(exponent);
        cum.push(total);
    }
    let mut rng = DetRng::new(seed ^ 0x21_F0_5E_ED);
    let mut out = Vec::with_capacity(n_arrivals);
    for i in 0..n_arrivals {
        let u = rng.next_f64() * total;
        // Linear scan: n_models is dozens, and the hot ranks come first.
        let rank = cum.iter().position(|&c| u < c).unwrap_or(n_models - 1);
        let model = if i < shift_at {
            rank
        } else {
            // After the shift, rank r belongs to the model `rotate` ahead.
            (rank + rotate) % n_models
        };
        out.push(model);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let xs = uniform_arrivals(4, SimDuration::from_millis(5), SimTime::from_millis(2));
        assert_eq!(
            xs,
            vec![
                SimTime::from_millis(2),
                SimTime::from_millis(7),
                SimTime::from_millis(12),
                SimTime::from_millis(17),
            ]
        );
        assert!(uniform_arrivals(0, SimDuration::ZERO, SimTime::ZERO).is_empty());
    }

    #[test]
    fn split_partitions_without_loss() {
        let xs = poisson_arrivals(200.0, SimDuration::from_secs(1), 11);
        let a = split_arrivals(&xs, 3, 0);
        let b = split_arrivals(&xs, 3, 1);
        let c = split_arrivals(&xs, 3, 2);
        assert_eq!(a.len() + b.len() + c.len(), xs.len());
        let mut merged: Vec<SimTime> = a.into_iter().chain(b).chain(c).collect();
        merged.sort();
        assert_eq!(merged, xs);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = poisson_arrivals(300.0, SimDuration::from_secs(1), 5);
        let b = poisson_arrivals(300.0, SimDuration::from_secs(1), 5);
        let c = poisson_arrivals(300.0, SimDuration::from_secs(1), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let a = zipf_models(500, 12, 1.1, 250, 4, 7);
        let b = zipf_models(500, 12, 1.1, 250, 4, 7);
        let c = zipf_models(500, 12, 1.1, 250, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&m| m < 12));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let picks = zipf_models(4000, 10, 1.2, usize::MAX, 0, 3);
        let mut counts = [0usize; 10];
        for m in picks {
            counts[m] += 1;
        }
        // Rank 0 must dominate the tail ranks under s = 1.2.
        assert!(counts[0] > counts[9] * 4, "head {} vs tail {}", counts[0], counts[9]);
        assert!(counts[0] > counts[5]);
    }

    #[test]
    fn phase_shift_rotates_the_hot_set() {
        // Strong skew so the top rank dominates each phase.
        let n = 6000;
        let picks = zipf_models(n, 8, 2.0, n / 2, 3, 42);
        let top_of = |slice: &[usize]| {
            let mut counts = [0usize; 8];
            for &m in slice {
                counts[m] += 1;
            }
            (0..8).max_by_key(|&m| counts[m]).unwrap()
        };
        let before = top_of(&picks[..n / 2]);
        let after = top_of(&picks[n / 2..]);
        assert_eq!(before, 0, "rank 0 is the pre-shift hot model");
        assert_eq!(after, 3, "the hot rank moves to model (0 + rotate) after the shift");
    }
}
