//! Live telemetry — a façade over the workspace [`telemetry`] crate
//! (re-exported here so downstream code keeps one import path).
//!
//! With [`EngineConfig::telemetry`](crate::EngineConfig::telemetry) set to
//! an enabled configuration, the engine updates an online metrics registry
//! from its hook points (admissions, runs, quanta, token hand-offs) and
//! snapshots it at a fixed virtual-time cadence. SLO burn-rate and quantum
//! drift alerts fire *during* the run and are mirrored into the trace
//! ring, so they appear on the Perfetto timeline. The finished series is
//! available as [`RunReport::telemetry`](crate::RunReport::telemetry) and
//! exports via [`RunReport::telemetry_jsonl`](crate::RunReport::telemetry_jsonl)
//! and [`RunReport::prometheus_text`](crate::RunReport::prometheus_text).

pub use telemetry::{
    json_lines, prometheus_text, Alert, BurnSignal, BurnWindows, DriftConfig, DriftDetector,
    DriftSignal, EngineGauges, HistogramSnapshot, MetricsRegistry, SloMonitor, SloSpec, SnapshotSeries, SnapshotView,
    TelemetryConfig, TelemetryHub, TelemetryReport,
};
