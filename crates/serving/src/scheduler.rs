//! The scheduler hook surface — the extension points Olympian adds to
//! TF-Serving's processing loop (Algorithm 2 of the paper).

use dataflow::NodeId;
use simtime::SimTime;
use std::fmt;
use trace::SwitchReason;

/// Identifier of one `Session::Run` invocation (the paper's `srInfo`).
/// Unique across the whole experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Identifier of a client (one request stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Context the engine provides when registering a job.
#[derive(Debug, Clone)]
pub struct JobCtx<'a> {
    /// The owning client.
    pub client: ClientId,
    /// Model name, the profile lookup key.
    pub model_name: &'a str,
    /// Batch size, the other half of the profile key.
    pub batch: u64,
    /// Weight for weighted-fair policies (≥ 1).
    pub weight: u32,
    /// Priority for priority policies (higher runs first).
    pub priority: u32,
    /// Which GPU the job's client is placed on (0 for single-GPU servers).
    /// Token schedulers keep one token per device.
    pub device: u32,
    /// Registration time.
    pub now: SimTime,
    /// Absolute completion deadline, when the client declared one.
    /// Deadline-aware policies order token grants by it; everyone else
    /// ignores it.
    pub deadline: Option<SimTime>,
}

/// Token movement reported by a scheduler call.
///
/// The engine uses this to account scheduling intervals and to apply the
/// gang wake-up latency to the newly granted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The token did not move.
    Unchanged,
    /// The token moved.
    Moved {
        /// Previous holder, if any.
        from: Option<JobId>,
        /// New holder, if any (none when the last job deregistered).
        to: Option<JobId>,
        /// Why the scheduler rotated the token — recorded in traces.
        reason: SwitchReason,
    },
}

/// A point-in-time sample of scheduler state, taken by the engine at each
/// telemetry snapshot boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerProbe {
    /// Jobs currently registered with the scheduler.
    pub active_jobs: u32,
    /// The token holder's `(cumulated, threshold)` cost units, for metering
    /// schedulers; `None` when nothing holds the token or the scheduler
    /// does not meter.
    pub holder_cost: Option<(u64, u64)>,
}

/// Registration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The scheduler has no offline profile for this `(model, batch)` pair.
    /// Olympian refuses to run unprofiled models rather than falling back to
    /// unmetered execution.
    MissingProfile {
        /// Model name.
        model: String,
        /// Batch size.
        batch: u64,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::MissingProfile { model, batch } => {
                write!(f, "no offline profile for model {model:?} at batch {batch}")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// A GPU-usage scheduler plugged into the serving engine.
///
/// The engine calls these hooks from the exact points Algorithm 2 modifies
/// in TF-Serving's loop:
///
/// * [`register`](Scheduler::register) / [`deregister`](Scheduler::deregister)
///   around each `Session::Run`,
/// * [`may_run`](Scheduler::may_run) before executing *every* node — the
///   cooperative `yield()`; a `false` return parks the calling gang thread,
/// * [`on_gpu_node_done`](Scheduler::on_gpu_node_done) after each GPU node
///   completes — where cost accumulates and quanta expire,
/// * [`next_timer`](Scheduler::next_timer) / [`on_timer`](Scheduler::on_timer)
///   for wall-clock-quantum schedulers (the paper's Figure 19 ablation).
pub trait Scheduler: fmt::Debug + Send {
    /// Admits a job. May immediately grant it the token.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] if the scheduler cannot meter this job
    /// (e.g. no offline profile).
    fn register(&mut self, job: JobId, ctx: &JobCtx<'_>) -> Result<Verdict, RegisterError>;

    /// Removes a finished job. If it held the token, the scheduler must
    /// pass the token on.
    fn deregister(&mut self, job: JobId, now: SimTime) -> Verdict;

    /// The cooperative yield check: may this job's gang threads proceed?
    fn may_run(&self, job: JobId) -> bool;

    /// A GPU node of `job` finished; the scheduler accumulates its profiled
    /// cost and may rotate the token when the quantum threshold is crossed.
    fn on_gpu_node_done(&mut self, job: JobId, node: NodeId, now: SimTime) -> Verdict;

    /// Next instant at which [`on_timer`](Scheduler::on_timer) should fire,
    /// if this scheduler is timer-driven.
    fn next_timer(&self, now: SimTime) -> Option<SimTime> {
        let _ = now;
        None
    }

    /// Timer callback for timer-driven schedulers.
    fn on_timer(&mut self, now: SimTime) -> Verdict {
        let _ = now;
        Verdict::Unchanged
    }

    /// Metering state of a registered job, as `(cumulated, threshold)` cost
    /// units — the paper's `C_j` against `T_j`. Cost-metering schedulers
    /// override this so the engine can trace threshold crossings; the
    /// default (`None`) means the scheduler does not meter.
    fn cost_state(&self, job: JobId) -> Option<(u64, u64)> {
        let _ = job;
        None
    }

    /// Scheduler state sampled at telemetry snapshot boundaries. The
    /// default reports an empty probe; stateful schedulers override it so
    /// telemetry can publish active-job and holder-progress gauges.
    fn telemetry_probe(&self) -> SchedulerProbe {
        SchedulerProbe::default()
    }

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

/// The baseline scheduler: stock TF-Serving.
///
/// Every hook is a no-op — all jobs may always run, kernels from different
/// jobs interleave at the GPU driver's whim. This is the paper's baseline
/// in every experiment.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    registered: u64,
}

impl FifoScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs registered over the scheduler's lifetime.
    pub fn jobs_seen(&self) -> u64 {
        self.registered
    }
}

impl Scheduler for FifoScheduler {
    fn register(&mut self, _job: JobId, _ctx: &JobCtx<'_>) -> Result<Verdict, RegisterError> {
        self.registered += 1;
        Ok(Verdict::Unchanged)
    }

    fn deregister(&mut self, _job: JobId, _now: SimTime) -> Verdict {
        Verdict::Unchanged
    }

    fn may_run(&self, _job: JobId) -> bool {
        true
    }

    fn on_gpu_node_done(&mut self, _job: JobId, _node: NodeId, _now: SimTime) -> Verdict {
        Verdict::Unchanged
    }

    fn name(&self) -> &str {
        "tf-serving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_scheduler_never_blocks() {
        let mut s = FifoScheduler::new();
        let ctx = JobCtx {
            client: ClientId(0),
            model_name: "m",
            batch: 1,
            weight: 1,
            priority: 0,
            device: 0,
            now: SimTime::ZERO,
            deadline: None,
        };
        assert_eq!(s.register(JobId(1), &ctx).unwrap(), Verdict::Unchanged);
        assert!(s.may_run(JobId(1)));
        assert!(s.may_run(JobId(99)));
        assert_eq!(
            s.on_gpu_node_done(JobId(1), dataflow::NodeId::from_index(0), SimTime::ZERO),
            Verdict::Unchanged
        );
        assert_eq!(s.deregister(JobId(1), SimTime::ZERO), Verdict::Unchanged);
        assert_eq!(s.jobs_seen(), 1);
        assert_eq!(s.name(), "tf-serving");
    }

    #[test]
    fn register_error_displays() {
        let e = RegisterError::MissingProfile {
            model: "vgg".into(),
            batch: 32,
        };
        assert_eq!(
            e.to_string(),
            "no offline profile for model \"vgg\" at batch 32"
        );
    }

    #[test]
    fn register_error_round_trips_through_dyn_error() {
        let e = RegisterError::MissingProfile {
            model: "svc@v2".into(),
            batch: 4,
        };
        let display = e.to_string();
        let boxed: Box<dyn std::error::Error> = Box::new(e.clone());
        // A leaf error: displays identically through the trait object and
        // wraps no source.
        assert_eq!(boxed.to_string(), display);
        assert!(boxed.source().is_none());
        let back = boxed
            .downcast::<RegisterError>()
            .expect("downcasts to the concrete error");
        assert_eq!(*back, e);
    }
}
