//! Engine configuration.

use gpusim::DeviceProfile;
use simtime::SimDuration;

/// Configuration of one serving-engine run.
///
/// Defaults model the paper's primary platform (GTX 1080 Ti host with an
/// i7-8700) and TF-Serving 1.2's threading behaviour.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The (first) GPU to simulate.
    pub device: DeviceProfile,
    /// Additional GPUs in the server (paper §7 future work: multi-GPU
    /// serving). Clients are placed on the device with the most free
    /// memory at admission.
    pub extra_devices: Vec<DeviceProfile>,
    /// Master seed; every run with the same seed, config and workload is
    /// bit-identical.
    pub seed: u64,
    /// Size of the shared CPU worker-thread pool. TF-Serving sizes this from
    /// the OS thread budget; it is the resource Olympian exhausts first for
    /// some models (§4.3 of the paper).
    pub pool_size: u32,
    /// Maximum gang width: CPU threads a single job may hold at once.
    pub max_gang: u32,
    /// Minimum *effective* gang width drawn per (run, client) in baseline
    /// mode — models OS scheduling nondeterminism: a client whose threads
    /// get scheduled less aggressively keeps fewer kernels in flight and
    /// falls behind (the Figure 3 spread). Set equal to `max_gang` to
    /// disable the variation.
    pub min_effective_gang: u32,
    /// CPU time a gang thread spends submitting one kernel.
    pub launch_overhead: SimDuration,
    /// Relative jitter (σ) on CPU work durations.
    pub cpu_jitter: f64,
    /// Relative spread (lognormal σ) of each client's per-run submission
    /// latency factor — one ingredient of baseline unpredictability.
    pub submit_latency_spread: f64,
    /// Relative spread (lognormal σ) of each client's per-run GPU-driver
    /// arbitration bias. This is the dominant source of the Figure 3
    /// finish-time spread: the driver favours some CUDA contexts over
    /// others, differently in every run. Irrelevant under Olympian, where
    /// only one job has kernels queued at a time.
    pub driver_bias_spread: f64,
    /// Latency of a token hand-off: waking the granted gang's condition
    /// variable plus the pipeline refill bubble on the GPU. This is the
    /// per-switch price that makes overhead fall with larger quanta
    /// (Figure 8).
    pub switch_latency: SimDuration,
    /// Simulate TensorFlow's CUPTI cost profiler running *online*: inflates
    /// every node execution by `profiling_inflation` (the paper measures
    /// 21–29%, Figure 6).
    pub online_profiling: bool,
    /// Multiplicative execution inflation while `online_profiling` is set.
    pub profiling_inflation: f64,
    /// Queued admission: when a client's memory does not fit, wait for
    /// memory instead of rejecting (TF-Serving's reject-on-OOM is the
    /// default, false). Semantics: first-fit on arrival — a client that
    /// fits is admitted immediately — with FIFO retry among waiters as
    /// memory frees.
    pub queue_admission: bool,
    /// Structured-trace capture (see [`crate::trace`]). Off by default:
    /// traces of full-scale experiments hold millions of events, and the
    /// off mode keeps the hot path branch-cheap.
    pub trace: trace::TraceConfig,
    /// Live telemetry capture (see [`crate::telemetry`]). Off by default;
    /// when off the engine pays one predicted branch per event, the same
    /// discipline as the tracer.
    pub telemetry: telemetry::TelemetryConfig,
    /// Deterministic fault injection and recovery (see [`faults`]). `None`
    /// by default: the engine's fault hooks collapse to one predicted
    /// branch each, the same zero-cost-when-off discipline as tracing and
    /// telemetry.
    pub faults: Option<faults::FaultConfig>,
    /// Model-lifecycle management (see [`crate::lifecycle`]): versioned
    /// registry, memory-budgeted hot load/unload and canary rollouts.
    /// `None` by default — clients then carry pre-loaded models and
    /// admission is the classic one-shot memory check; the lifecycle
    /// hooks collapse to one predicted branch each.
    pub lifecycle: Option<lifecycle::LifecycleConfig>,
    /// Closed-loop control plane (see [`controlplane`]): deadline-aware
    /// token policies, a burn-rate-driven degradation ladder and online
    /// profile recalibration. `None` by default — every control hook then
    /// collapses to one predicted branch, the same zero-cost-when-off
    /// discipline as faults and lifecycle.
    pub control: Option<controlplane::ControlConfig>,
    /// Fleet orchestration (see [`crate::cluster`]): N heterogeneous
    /// devices each with its own lifecycle manager and memory budget, a
    /// cost-aware per-arrival router and a periodic min-cost-flow
    /// reconfiguration loop. `None` by default — the engine then runs the
    /// classic single-pool path and every cluster hook collapses to one
    /// predicted branch. Mutually exclusive with `lifecycle` (the cluster
    /// owns its per-device managers) and with `extra_devices` (the device
    /// list comes from the cluster config).
    pub cluster: Option<cluster::ClusterConfig>,
    /// Hard cap on simulated events — a watchdog against scheduling bugs.
    pub max_events: u64,
    /// Worker threads for [`run_sharded_experiment`]: how many OS threads
    /// execute the per-device shard groups concurrently. The *decomposition*
    /// is always one group per device, so results are byte-identical for
    /// every value of `shards` — this knob trades wall-clock only. Ignored
    /// by the classic [`run_experiment`] path; `1` (the default) keeps
    /// everything serial.
    ///
    /// [`run_sharded_experiment`]: crate::run_sharded_experiment
    /// [`run_experiment`]: crate::run_experiment
    pub shards: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            device: DeviceProfile::gtx_1080_ti(),
            extra_devices: Vec::new(),
            seed: 1,
            pool_size: 200,
            max_gang: 4,
            min_effective_gang: 4,
            launch_overhead: SimDuration::from_micros(5),
            cpu_jitter: 0.05,
            submit_latency_spread: 0.10,
            driver_bias_spread: 0.25,
            switch_latency: SimDuration::from_micros(80),
            online_profiling: false,
            profiling_inflation: 0.25,
            queue_admission: false,
            trace: trace::TraceConfig::off(),
            telemetry: telemetry::TelemetryConfig::off(),
            faults: None,
            lifecycle: None,
            control: None,
            cluster: None,
            max_events: 500_000_000,
            shards: 1,
        }
    }
}

impl EngineConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty, gang bounds are inverted or zero, or any
    /// spread is negative.
    pub fn validate(&self) {
        assert!(self.pool_size > 0, "worker pool must be non-empty");
        assert!(self.max_gang > 0, "gang width must be at least 1");
        assert!(
            (1..=self.max_gang).contains(&self.min_effective_gang),
            "min effective gang must be in 1..=max_gang"
        );
        assert!(self.cpu_jitter >= 0.0, "negative cpu jitter");
        assert!(self.submit_latency_spread >= 0.0, "negative submit spread");
        assert!(self.driver_bias_spread >= 0.0, "negative bias spread");
        assert!(self.profiling_inflation >= 0.0, "negative inflation");
        assert!(self.max_events > 0, "event watchdog must be positive");
        assert!(self.shards > 0, "shard worker count must be at least 1");
        self.telemetry.validate();
        if let Some(f) = &self.faults {
            f.validate();
        }
        if let Some(lc) = &self.lifecycle {
            assert!(
                self.extra_devices.is_empty(),
                "lifecycle management currently assumes a single device"
            );
            lc.validate();
        }
        if let Some(ctl) = &self.control {
            ctl.validate();
        }
        if let Some(cc) = &self.cluster {
            assert!(
                self.lifecycle.is_none(),
                "cluster mode owns its per-device lifecycle managers; do not also set lifecycle"
            );
            assert!(
                self.extra_devices.len() + 1 == cc.devices.len(),
                "cluster mode derives the device list from the cluster config; use with_cluster"
            );
            cc.validate();
        }
    }

    /// A copy with a different seed (for multi-run experiments).
    pub fn with_seed(&self, seed: u64) -> EngineConfig {
        EngineConfig { seed, ..self.clone() }
    }

    /// A copy with `n` identical GPUs (clones of `device`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_device_count(&self, n: usize) -> EngineConfig {
        assert!(n > 0, "need at least one device");
        EngineConfig {
            extra_devices: vec![self.device.clone(); n - 1],
            ..self.clone()
        }
    }

    /// Total number of simulated GPUs.
    pub fn device_count(&self) -> usize {
        1 + self.extra_devices.len()
    }

    /// A copy with trace capture configured (see [`crate::trace`]).
    pub fn with_trace(&self, trace: trace::TraceConfig) -> EngineConfig {
        EngineConfig { trace, ..self.clone() }
    }

    /// A copy with live telemetry configured (see [`crate::telemetry`]).
    pub fn with_telemetry(&self, telemetry: telemetry::TelemetryConfig) -> EngineConfig {
        EngineConfig { telemetry, ..self.clone() }
    }

    /// A copy with fault injection and recovery configured (see [`faults`]).
    pub fn with_faults(&self, faults: faults::FaultConfig) -> EngineConfig {
        EngineConfig { faults: Some(faults), ..self.clone() }
    }

    /// A copy with model-lifecycle management configured (see
    /// [`crate::lifecycle`]): clients naming a managed model are routed to
    /// its serving version at issue time instead of carrying their own
    /// weights.
    pub fn with_lifecycle(&self, lifecycle: lifecycle::LifecycleConfig) -> EngineConfig {
        EngineConfig { lifecycle: Some(lifecycle), ..self.clone() }
    }

    /// A copy with fleet orchestration configured (see [`crate::cluster`]):
    /// the engine instantiates one GPU per profile in the cluster config,
    /// each with its own lifecycle manager and memory budget, routes every
    /// arriving run to the cheapest device and runs the periodic
    /// min-cost-flow reconfiguration loop. The engine's device list is
    /// derived from the cluster's profiles.
    ///
    /// # Panics
    ///
    /// Panics if the cluster config has no devices.
    pub fn with_cluster(&self, cluster: cluster::ClusterConfig) -> EngineConfig {
        assert!(!cluster.devices.is_empty(), "cluster needs at least one device");
        EngineConfig {
            device: cluster.devices[0].clone(),
            extra_devices: cluster.devices[1..].to_vec(),
            cluster: Some(cluster),
            lifecycle: None,
            ..self.clone()
        }
    }

    /// A copy with the closed-loop control plane configured (see
    /// [`controlplane`]): the engine runs a periodic control tick that
    /// drives the degradation ladder, cancels laxity-negative runs early
    /// and recalibrates drifting profiles in place.
    pub fn with_control(&self, control: controlplane::ControlConfig) -> EngineConfig {
        EngineConfig { control: Some(control), ..self.clone() }
    }

    /// A copy with the online cost profiler enabled (Figure 6's condition).
    pub fn with_online_profiling(&self, inflation: f64) -> EngineConfig {
        EngineConfig {
            online_profiling: true,
            profiling_inflation: inflation,
            ..self.clone()
        }
    }

    /// A copy with baseline nondeterminism disabled — used when profiling
    /// offline, where the paper gives the job an idle, exclusive GPU.
    pub fn quiescent(&self) -> EngineConfig {
        EngineConfig {
            min_effective_gang: self.max_gang,
            submit_latency_spread: 0.0,
            driver_bias_spread: 0.0,
            cpu_jitter: 0.0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        EngineConfig::default().validate();
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = EngineConfig::default();
        let b = a.with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(b.pool_size, a.pool_size);
    }

    #[test]
    fn quiescent_removes_noise() {
        let q = EngineConfig::default().quiescent();
        assert_eq!(q.min_effective_gang, q.max_gang);
        assert_eq!(q.submit_latency_spread, 0.0);
        assert_eq!(q.driver_bias_spread, 0.0);
        assert_eq!(q.cpu_jitter, 0.0);
        q.validate();
    }

    #[test]
    fn with_cluster_derives_the_device_list() {
        let cc = cluster::ClusterConfig::new(
            vec![DeviceProfile::gtx_1080_ti(), DeviceProfile::titan_x()],
            lifecycle::LifecycleConfig::new(lifecycle::DeploymentPlan::new()),
        );
        let cfg = EngineConfig::default().with_cluster(cc);
        assert_eq!(cfg.device_count(), 2);
        assert_eq!(cfg.device.name(), "gtx-1080-ti");
        assert_eq!(cfg.extra_devices[0].name(), "titan-x");
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "do not also set lifecycle")]
    fn cluster_and_lifecycle_are_mutually_exclusive() {
        let cc = cluster::ClusterConfig::new(
            vec![DeviceProfile::gtx_1080_ti()],
            lifecycle::LifecycleConfig::new(lifecycle::DeploymentPlan::new()),
        );
        let mut cfg = EngineConfig::default().with_cluster(cc);
        cfg.lifecycle = Some(lifecycle::LifecycleConfig::new(lifecycle::DeploymentPlan::new()));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "gang width")]
    fn zero_gang_rejected() {
        let c = EngineConfig {
            max_gang: 0,
            ..EngineConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min effective gang")]
    fn inverted_gang_bounds_rejected() {
        let base = EngineConfig::default();
        let c = EngineConfig {
            min_effective_gang: base.max_gang + 1,
            ..base
        };
        c.validate();
    }
}
