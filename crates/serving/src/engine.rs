//! The discrete-event serving engine: TF-Serving's processing loop
//! (Algorithm 1) with Olympian's hook points (Algorithm 2) on a virtual
//! clock.
//!
//! # How a job executes
//!
//! A job (`Session::Run`) owns a readiness-driven BFS over its graph. Gang
//! threads come from the shared worker pool: a thread takes a ready node,
//! passes the scheduler's yield check, then either runs a CPU node inline or
//! spends the launch overhead submitting a GPU kernel and blocks until the
//! kernel completes. Children whose parents have all finished become ready.
//!
//! # Worker-pool semantics (the §4.3 scalability mechanism)
//!
//! * A gang thread with no ready node is returned to the pool **only while
//!   its job may run**. Threads of a *suspended* job stay parked inside the
//!   scheduler's yield — they keep their pool slot, which is why Olympian
//!   exhausts the thread pool at lower client counts than TF-Serving.
//! * A runnable job that cannot obtain any worker joins a starvation queue
//!   and is woken when the pool refills; if the pool never refills (every
//!   slot parked under suspended gangs), the run ends with the job stalled.
//!
//! # Baseline nondeterminism
//!
//! Two seeded draws per client model the OS/driver noise that makes vanilla
//! TF-Serving unpredictable (Figure 3): an *effective gang width* (how many
//! kernels the client keeps in flight) and a *submission latency factor*.
//! Under Olympian both still exist but exclusive quanta mask them.

use crate::client::ClientSpec;
use crate::config::EngineConfig;
use crate::report::{ClientOutcome, ClientReport, RunReport};
use crate::scheduler::{ClientId, JobCtx, JobId, Scheduler, Verdict};
use crate::trace::{SwitchReason, TraceBuffer, TraceKind};
use dataflow::{Graph, NodeId, Placement};
use faults::{BreakerEvent, BreakerState, CircuitBreaker, FaultInjector, RetryPolicy};
use gpusim::{Allocation, GpuDevice, JobTag, MemoryPool};
use lifecycle::{Effects as LcEffects, LifecycleEvent, LifecycleManager, Route, VersionKey};
use simtime::{DetRng, SimDuration, SimTime, TimingWheel};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use telemetry::{Alert, EngineGauges, TelemetryHub};

/// Initial event-queue capacity: covers the paper-scale experiments' peak
/// pending-event count, so the hot loop never reallocates the heap.
const EVENT_QUEUE_CAPACITY: usize = 4096;
/// Initial capacity of the per-run quanta log.
const QUANTA_CAPACITY: usize = 32;

#[derive(Debug)]
enum Event {
    ClientStart(ClientId),
    /// A bursty client's think time elapsed; issue its next batch.
    NextBatch(ClientId),
    SubmitKernel { job: JobId, node: NodeId },
    NodeDone { job: JobId, node: NodeId, gpu: Option<SimDuration> },
    ResumeJob(JobId),
    /// A run's deadline elapsed; cancel it if it is still alive.
    RunDeadline(JobId),
    SchedTimer(u64),
    /// A faulted kernel's backoff elapsed; submit it again.
    RetryKernel { job: JobId, node: NodeId },
    /// A device stall window ended; resume pumping the device.
    PumpDevice(u32),
    /// A faulted admission's backoff elapsed; attempt admission again.
    RetryAdmit(ClientId),
    /// Workers donated by a drained shard group arrive (sharded runs only;
    /// always scheduled at a window-barrier instant).
    PoolGrant(u32),
    /// A lifecycle transition is due: a version publish, a load
    /// completion or a warm-up run boundary.
    LifecycleTick,
    /// The control plane's periodic tick: degradation-ladder cool-down and
    /// laxity-negative run cancellation.
    ControlTick,
    /// The fleet orchestrator's reconfiguration cadence: solve the
    /// demand-window min-cost flow and issue the load/drain plan.
    ClusterTick,
}

/// Live fault-injection state for one run: the seeded injector plus the
/// recovery state machines the engine drives around it. Held in an
/// `Option` so the fault-free hot path pays one predicted branch per hook.
struct FaultRuntime {
    injector: FaultInjector,
    retry: RetryPolicy,
    /// One breaker per client, indexed by `ClientId.0`.
    breakers: Vec<CircuitBreaker>,
    /// Failed submission attempts per (job id, node index); entries are
    /// created on the first fault and cleared on success or job death.
    attempts: HashMap<(u64, u32), u32>,
    /// Consecutive failed admission attempts per client.
    admit_attempts: Vec<u32>,
    /// Backoff jitter stream, forked off the fault stream so jitter draws
    /// never perturb fault verdicts.
    retry_rng: DetRng,
    /// Per device: a post-stall pump event is already scheduled.
    stall_pump: Vec<bool>,
}

impl FaultRuntime {
    fn new(cfg: &faults::FaultConfig, seed: u64, clients: usize, devices: usize) -> Self {
        let mut injector = cfg.injector(seed);
        let retry_rng = injector.retry_rng();
        FaultRuntime {
            injector,
            retry: cfg.retry,
            breakers: vec![CircuitBreaker::new(cfg.breaker); clients],
            attempts: HashMap::new(),
            admit_attempts: vec![0; clients],
            retry_rng,
            stall_pump: vec![false; devices],
        }
    }
}

/// Live model-lifecycle state for one run: the manager plus the
/// job → version map that attributes each completion to the version it
/// was issued against. Held in an `Option` so the unmanaged hot path pays
/// one predicted branch per hook.
struct LifecycleRuntime {
    mgr: LifecycleManager,
    /// Versions of in-flight jobs, keyed by `JobId.0`.
    job_versions: HashMap<u64, VersionKey>,
}

/// Live control-plane state for one run: the static configuration plus the
/// degradation-ladder state machine. Held in an `Option` so the
/// uncontrolled hot path pays one predicted branch per hook.
struct ControlRuntime {
    cfg: controlplane::ControlConfig,
    machine: controlplane::DegradeMachine,
}

/// Live fleet-orchestration state for one run: one lifecycle manager per
/// device, the router's per-device drain estimates, and the demand window
/// the reconfiguration tick solves over. Held in an `Option` so the
/// single-pool hot path pays one predicted branch per hook.
struct ClusterRuntime {
    cfg: cluster::ClusterConfig,
    /// One manager per device, indexed like `Engine::devices`. Every
    /// manager holds the same deployment plan, so version keys and model
    /// indices agree across devices; residency is per device.
    managers: Vec<LifecycleManager>,
    /// In-flight routed jobs, keyed by `JobId.0`:
    /// `(device, version, estimated execute ns)`.
    job_routes: HashMap<u64, (u32, VersionKey, u64)>,
    /// Lifecycle-parked clients: `client -> (device, estimated ns)`. The
    /// estimate is charged to the device's queue while the client waits
    /// for a load, and returned when it is woken and re-routed.
    parked: HashMap<u32, (u32, u64)>,
    /// Estimated not-yet-finished execute time per device, in ns — the
    /// router's queue-drain term.
    outstanding_ns: Vec<u64>,
    /// Arrivals per model since the last reconfiguration tick.
    window_demand: Vec<u64>,
    /// Latest per-arrival execute estimate per model (ns at speed 1.0) —
    /// the flow problem's cost basis for models seen this window.
    exec_est: Vec<u64>,
    /// Device speed factors, cached from the profiles.
    speed: Vec<f64>,
}

/// Outcome of the fleet router for one arriving run.
enum FleetRoute {
    /// Issue against this version; the estimate is the routed device's
    /// execute ns, charged to its queue until the run finishes.
    Issue(VersionKey, u64),
    /// Parked inside the routed device's manager until a load completes.
    Wait,
    /// The model is not in the cluster's deployment plan; fall through to
    /// the unmanaged admission path.
    Unmanaged,
}

/// Hot half of a job slot: every field the per-node dispatch and
/// completion paths read or write. Kept in its own dense table
/// (`Engine::job_hot`), separate from [`JobCold`], for two reasons:
/// the hot loop's working set stays compact in cache, and the graph can be
/// borrowed from the cold table while the hot row is mutably borrowed —
/// which removes the per-node `Arc` clone the combined struct forced.
#[derive(Debug)]
struct JobHot {
    client: ClientId,
    remaining_parents: Vec<u32>,
    ready: VecDeque<NodeId>,
    done_nodes: u32,
    total_nodes: u32,
    /// Workers currently owned by this gang (busy + parked-idle).
    held: u32,
    /// Of `held`, workers executing a node or blocked on a kernel.
    busy: u32,
    /// Earliest time the gang may proceed after being granted the token.
    resume_at: SimTime,
    resume_scheduled: bool,
    starving: bool,
    /// Whether a YieldBlock trace event is outstanding for this gang (only
    /// maintained while tracing is on).
    yield_blocked: bool,
    gpu_busy: SimDuration,
    quantum_acc: SimDuration,
    /// Time of the last token grant whose hand-off latency has not been
    /// measured yet; `SimTime::MAX` otherwise. Only maintained while
    /// telemetry is on.
    granted_at: SimTime,
}

/// Cold half of a job slot: bookkeeping the hot loop only reads through
/// (the graph) or touches at quantum/run boundaries.
#[derive(Debug)]
struct JobCold {
    graph: Arc<Graph>,
    /// Completed quanta as `(end time, GPU duration received)`.
    quanta: Vec<(SimTime, SimDuration)>,
    /// Registration time — the run's latency baseline for telemetry.
    started_at: SimTime,
}

impl JobHot {
    fn new(client: ClientId, graph: &Graph) -> Self {
        let remaining_parents: Vec<u32> =
            graph.node_ids().map(|id| graph.parent_count(id)).collect();
        let ready: VecDeque<NodeId> = graph.roots().into();
        let total_nodes = graph.node_count() as u32;
        JobHot {
            client,
            remaining_parents,
            ready,
            done_nodes: 0,
            total_nodes,
            held: 0,
            busy: 0,
            resume_at: SimTime::ZERO,
            resume_scheduled: false,
            starving: false,
            yield_blocked: false,
            gpu_busy: SimDuration::ZERO,
            quantum_acc: SimDuration::ZERO,
            granted_at: SimTime::MAX,
        }
    }

    /// Re-initialises a recycled slot for a fresh run, reusing the
    /// `remaining_parents` and `ready` allocations so steady-state serving
    /// allocates nothing per run.
    fn reset(&mut self, client: ClientId, graph: &Graph) {
        self.remaining_parents.clear();
        self.remaining_parents
            .extend(graph.node_ids().map(|id| graph.parent_count(id)));
        self.ready.clear();
        // Same contents and order as `graph.roots()`, without the fresh Vec.
        self.ready
            .extend(graph.node_ids().filter(|&id| graph.parent_count(id) == 0));
        self.total_nodes = graph.node_count() as u32;
        self.client = client;
        self.done_nodes = 0;
        self.held = 0;
        self.busy = 0;
        self.resume_at = SimTime::ZERO;
        self.resume_scheduled = false;
        self.starving = false;
        self.yield_blocked = false;
        self.gpu_busy = SimDuration::ZERO;
        self.quantum_acc = SimDuration::ZERO;
        self.granted_at = SimTime::MAX;
    }
}

impl JobCold {
    fn new(graph: Arc<Graph>) -> Self {
        JobCold {
            graph,
            quanta: Vec::with_capacity(QUANTA_CAPACITY),
            started_at: SimTime::ZERO,
        }
    }

    /// Counterpart of [`JobHot::reset`], reusing the `quanta` allocation.
    fn reset(&mut self, graph: Arc<Graph>) {
        self.graph = graph;
        self.quanta.clear();
        self.started_at = SimTime::ZERO;
    }
}

/// A job handle in the dense `job_refs` table, indexed by `JobId.0`.
///
/// Job ids are allocated densely from zero, so a `Vec` index replaces the
/// `HashMap` probe on the per-node hot path.
#[derive(Debug, Clone, Copy)]
enum JobRef {
    /// Rejected at registration, or completed.
    Dead,
    /// Live, holding this job's slot index in the hot/cold job tables.
    Live(u32),
    /// Cancelled by a deadline; remembers the device index so stale kernel
    /// completions still pump the device.
    Cancelled(u32),
}

#[derive(Debug)]
struct ClientState {
    spec: ClientSpec,
    outcome: Option<ClientOutcome>,
    batches_done: u32,
    current_job: Option<JobId>,
    gang_limit: u32,
    submit_factor: f64,
    /// Which GPU this client's *current run* executes on. Outside cluster
    /// mode this never changes after admission.
    device: u32,
    /// Which GPU holds this client's activation memory (fixed at
    /// admission; cluster routing moves runs, not activations).
    home: u32,
    activations: Option<Allocation>,
    run_finish_times: Vec<SimTime>,
    run_gpu_durations: Vec<SimDuration>,
    quantum_marks: Vec<(SimTime, SimDuration)>,
    rng: DetRng,
}

pub(crate) struct Engine<'a> {
    cfg: EngineConfig,
    queue: TimingWheel<Event>,
    now: SimTime,
    devices: Vec<GpuDevice>,
    memories: Vec<MemoryPool>,
    scheduler: &'a mut dyn Scheduler,
    clients: Vec<ClientState>,
    /// Job handles, indexed by `JobId.0` — ids are dense from 0 (one per
    /// `register` call, including rejected ones).
    job_refs: Vec<JobRef>,
    /// Job-state slots in struct-of-arrays layout: `job_hot[s]` and
    /// `job_cold[s]` are the two halves of slot `s`. Completed slots go on
    /// `free_slots` and are `reset` for the next run instead of reallocated.
    job_hot: Vec<JobHot>,
    job_cold: Vec<JobCold>,
    free_slots: Vec<u32>,
    pool_idle: u32,
    starving: VecDeque<JobId>,
    /// Clients waiting for memory under queued admission, FIFO.
    admission_waiting: VecDeque<ClientId>,
    /// Loaded weights, keyed by (model name, device index).
    weights_loaded: HashMap<(String, u32), Allocation>,
    /// In-flight kernel slab: the device payload is the slab index.
    kernels: Vec<Option<(JobId, NodeId)>>,
    kernel_free: Vec<u32>,
    last_switch: Option<SimTime>,
    /// Cached `telemetry.next_due()` — refreshed after every telemetry tick
    /// so the per-event boundary check reads a local field instead of
    /// calling across the crate boundary.
    telemetry_due: SimTime,
    faults: Option<FaultRuntime>,
    lifecycle: Option<LifecycleRuntime>,
    control: Option<ControlRuntime>,
    cluster: Option<ClusterRuntime>,
    trace: TraceBuffer,
    telemetry: TelemetryHub,
    intervals: Vec<SimDuration>,
    switch_count: u64,
    timer_gen: u64,
    event_count: u64,
}

/// Runs one experiment to completion and reports the results.
///
/// Deterministic: identical `(cfg, clients, scheduler)` inputs produce
/// identical reports.
///
/// # Panics
///
/// Panics if the configuration or a client spec is invalid, or if the event
/// watchdog (`cfg.max_events`) trips — which indicates an engine or
/// scheduler bug, never a legal workload.
pub fn run_experiment(
    cfg: &EngineConfig,
    clients: Vec<ClientSpec>,
    scheduler: &mut dyn Scheduler,
) -> RunReport {
    let mut engine = build_engine(cfg, clients, scheduler);
    engine.run();
    engine.finalize()
}

/// Validates inputs, constructs the engine and schedules every client's
/// start event — everything [`run_experiment`] does before the event loop.
/// The sharded runner builds one engine per device group this way and
/// drives them window-by-window instead of straight to completion.
///
/// # Panics
///
/// Panics if the configuration or a client spec is invalid.
pub(crate) fn build_engine<'a>(
    cfg: &EngineConfig,
    clients: Vec<ClientSpec>,
    scheduler: &'a mut dyn Scheduler,
) -> Engine<'a> {
    cfg.validate();
    for spec in &clients {
        spec.validate();
    }
    let mut master_rng = DetRng::new(cfg.seed);
    let client_states: Vec<ClientState> = clients
        .into_iter()
        .enumerate()
        .map(|(i, spec)| ClientState {
            spec,
            outcome: None,
            batches_done: 0,
            current_job: None,
            gang_limit: cfg.max_gang,
            submit_factor: 1.0,
            device: 0,
            home: 0,
            activations: None,
            run_finish_times: Vec::new(),
            run_gpu_durations: Vec::new(),
            quantum_marks: Vec::new(),
            rng: master_rng.fork(i as u64),
        })
        .collect();

    let mut profiles = vec![cfg.device.clone()];
    profiles.extend(cfg.extra_devices.iter().cloned());
    let devices: Vec<GpuDevice> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| GpuDevice::new(p.clone(), cfg.seed ^ 0x6709 ^ ((i as u64) << 32)))
        .collect();
    let memories: Vec<MemoryPool> = profiles
        .iter()
        .map(|p| MemoryPool::new(p.memory_bytes()))
        .collect();
    let faults = cfg
        .faults
        .as_ref()
        .map(|f| FaultRuntime::new(f, cfg.seed, client_states.len(), devices.len()));
    let lifecycle = cfg.lifecycle.as_ref().map(|lc| LifecycleRuntime {
        mgr: LifecycleManager::new(lc, memories[0].capacity())
            .unwrap_or_else(|e| panic!("invalid lifecycle config: {e}")),
        job_versions: HashMap::new(),
    });
    let control = cfg.control.as_ref().map(|c| ControlRuntime {
        cfg: c.clone(),
        machine: c.machine(),
    });
    let cluster_rt = cfg.cluster.as_ref().map(|cc| {
        let managers: Vec<LifecycleManager> = memories
            .iter()
            .map(|m| {
                LifecycleManager::new(&cc.lifecycle, m.capacity())
                    .unwrap_or_else(|e| panic!("invalid cluster lifecycle config: {e}"))
            })
            .collect();
        let n_models = managers[0].model_count();
        ClusterRuntime {
            cfg: cc.clone(),
            job_routes: HashMap::new(),
            parked: HashMap::new(),
            outstanding_ns: vec![0; managers.len()],
            window_demand: vec![0; n_models],
            exec_est: vec![0; n_models],
            speed: profiles.iter().map(|p| p.speed_factor()).collect(),
            managers,
        }
    });
    let telemetry = TelemetryHub::new(&cfg.telemetry);
    let telemetry_due = telemetry.next_due();
    let mut engine = Engine {
        cfg: cfg.clone(),
        queue: TimingWheel::with_capacity(EVENT_QUEUE_CAPACITY),
        now: SimTime::ZERO,
        devices,
        memories,
        scheduler,
        clients: client_states,
        job_refs: Vec::with_capacity(256),
        job_hot: Vec::new(),
        job_cold: Vec::new(),
        free_slots: Vec::new(),
        pool_idle: cfg.pool_size,
        starving: VecDeque::new(),
        admission_waiting: VecDeque::new(),
        weights_loaded: HashMap::new(),
        kernels: Vec::with_capacity(64),
        kernel_free: Vec::with_capacity(64),
        last_switch: None,
        telemetry_due,
        faults,
        lifecycle,
        control,
        cluster: cluster_rt,
        trace: TraceBuffer::new(&cfg.trace),
        telemetry,
        intervals: Vec::with_capacity(256),
        switch_count: 0,
        timer_gen: 0,
        event_count: 0,
    };
    // Schedule a lifecycle tick at every publish instant before any client
    // starts, so version state is current at admission time.
    let mut startup_fx = LcEffects::default();
    if let Some(rt) = &engine.lifecycle {
        rt.mgr.startup(&mut startup_fx);
    }
    if let Some(rt) = &engine.cluster {
        // Publish schedules are identical on every device's manager, so
        // one manager's startup ticks cover the whole fleet.
        rt.managers[0].startup(&mut startup_fx);
    }
    engine.apply_lifecycle_effects(startup_fx);
    for i in 0..engine.clients.len() {
        let at = engine.clients[i].spec.start_at;
        engine.queue.schedule(at, Event::ClientStart(ClientId(i as u32)));
    }
    if let Some(rt) = &engine.control {
        engine
            .queue
            .schedule(SimTime::ZERO + rt.cfg.tick, Event::ControlTick);
    }
    if let Some(rt) = &engine.cluster {
        if rt.cfg.reconfigure {
            engine
                .queue
                .schedule(SimTime::ZERO + rt.cfg.tick, Event::ClusterTick);
        }
    }
    engine
}

impl Engine<'_> {
    /// The slot index of `id` if it is live. Returns a copied index (not a
    /// reference) so callers can split borrows between the job tables and the
    /// engine's other fields.
    #[inline]
    fn live_slot(&self, id: JobId) -> Option<usize> {
        match self.job_refs.get(id.0 as usize) {
            Some(&JobRef::Live(s)) => Some(s as usize),
            _ => None,
        }
    }

    fn run(&mut self) {
        while let Some((t, event)) = self.queue.pop() {
            self.step(t, event);
        }
    }

    /// Processes events due at or before `bound`, then returns at the
    /// window barrier. The sharded runner drives one group engine per call;
    /// between calls the only outside mutation is a [`Event::PoolGrant`]
    /// scheduled at the barrier instant.
    pub(crate) fn run_window(&mut self, bound: SimTime) {
        while let Some((t, event)) = self.queue.pop_at_or_before(bound) {
            self.step(t, event);
        }
    }

    /// Whether any event is still pending.
    pub(crate) fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The engine clock: the time of the last processed event.
    pub(crate) fn clock(&self) -> SimTime {
        self.now
    }

    /// Whether any job is parked waiting for a worker thread.
    pub(crate) fn is_starved(&self) -> bool {
        !self.starving.is_empty()
    }

    /// The instant of the earliest pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Withdraws every currently idle worker from this engine's pool —
    /// the donation half of the barrier rebalance. Only meaningful on a
    /// drained engine (no pending events): live engines keep their share.
    pub(crate) fn take_idle_workers(&mut self) -> u32 {
        std::mem::take(&mut self.pool_idle)
    }

    /// Schedules `n` donated workers to arrive at the barrier instant
    /// `at`; the grant lands inside the event loop so starvation wake-ups
    /// replay identically for every shard count.
    pub(crate) fn grant_workers(&mut self, at: SimTime, n: u32) {
        self.queue.schedule(at, Event::PoolGrant(n));
    }

    #[inline]
    fn step(&mut self, t: SimTime, event: Event) {
        {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.event_count += 1;
            assert!(
                self.event_count <= self.cfg.max_events,
                "event watchdog tripped after {} events at {} — engine or scheduler bug",
                self.event_count,
                self.now
            );
            // One predicted branch when telemetry is off (`telemetry_due`
            // is `SimTime::MAX`); boundaries are emitted lazily, *before*
            // the first event at or past them, so snapshots capture the
            // state as of the boundary instant.
            if t >= self.telemetry_due {
                self.telemetry_tick();
            }
            match event {
                Event::ClientStart(c) => self.client_start(c),
                Event::NextBatch(c) => self.start_run(c),
                Event::SubmitKernel { job, node } => self.submit_kernel(job, node),
                Event::NodeDone { job, node, gpu } => self.node_done(job, node, gpu),
                Event::RunDeadline(job) => {
                    if self.live_slot(job).is_some() {
                        self.cancel_job(job);
                    }
                }
                Event::ResumeJob(job) => {
                    if let Some(slot) = self.live_slot(job) {
                        self.job_hot[slot].resume_scheduled = false;
                    }
                    self.dispatch(job);
                }
                Event::SchedTimer(gen) => {
                    if gen == self.timer_gen {
                        let verdict = self.scheduler.on_timer(self.now);
                        self.apply_verdict(verdict);
                        self.schedule_timer();
                    }
                }
                Event::RetryKernel { job, node } => {
                    if self.live_slot(job).is_some() {
                        self.submit_kernel(job, node);
                    } else if let Some(fr) = self.faults.as_mut() {
                        // The job died (deadline or shed) while the retry
                        // was pending; drop its attempt bookkeeping.
                        fr.attempts.remove(&(job.0, node.index() as u32));
                    }
                }
                Event::PumpDevice(dev) => {
                    if let Some(fr) = self.faults.as_mut() {
                        fr.stall_pump[dev as usize] = false;
                    }
                    self.pump_device(dev as usize);
                }
                Event::RetryAdmit(c) => self.retry_admit(c),
                Event::LifecycleTick => self.lifecycle_tick(),
                Event::ControlTick => self.control_tick(),
                Event::ClusterTick => self.cluster_tick(),
                Event::PoolGrant(n) => {
                    self.pool_idle += n;
                    self.wake_starving();
                }
            }
        }
    }

    // ---- client lifecycle -------------------------------------------------

    fn client_start(&mut self, c: ClientId) {
        // Admission gate: in the ladder's Shedding state new sessions are
        // refused outright — the cheapest load to serve is load never
        // admitted.
        if self
            .control
            .as_ref()
            .is_some_and(|rt| rt.machine.state() == controlplane::DegradeState::Shedding)
        {
            self.record(TraceKind::AdmissionShed { client: c.0 });
            self.telemetry.on_admission_shed();
            self.clients[c.0 as usize].outcome =
                Some(ClientOutcome::AdmissionShed { at: self.now });
            return;
        }
        let cfg = self.cfg.clone();
        let client = &mut self.clients[c.0 as usize];
        client.gang_limit = if cfg.min_effective_gang == cfg.max_gang {
            cfg.max_gang
        } else {
            cfg.min_effective_gang
                + (client.rng.next_u64() % (cfg.max_gang - cfg.min_effective_gang + 1) as u64)
                    as u32
        };
        client.submit_factor = if cfg.submit_latency_spread > 0.0 {
            client.rng.lognormal(0.0, cfg.submit_latency_spread)
        } else {
            1.0
        };

        // Model weights are loaded once and shared across clients of the
        // same model (TF-Serving's servable sharing).
        let model_name = client.spec.model.name().to_string();
        let weights_bytes = client.spec.model.weights_bytes();
        let activation_bytes = client.spec.model.activation_bytes();
        let bias = if cfg.driver_bias_spread > 0.0 {
            Some(client.rng.lognormal(0.0, cfg.driver_bias_spread))
        } else {
            None
        };
        // Place the client's model instance on the device with the most
        // free memory (deterministic lowest-index tie-break) — how a
        // serving deployment spreads servables across GPUs.
        let dev = (0..self.memories.len())
            .max_by_key(|&i| (self.memories[i].available(), usize::MAX - i))
            .expect("at least one device") as u32;
        self.clients[c.0 as usize].device = dev;
        self.clients[c.0 as usize].home = dev;
        // Per-(run, client) driver arbitration bias — the Figure 3 spread.
        if let Some(b) = bias {
            self.devices[dev as usize].set_bias(JobTag(c.0 as u64), b);
        }
        if self.try_admit(c, dev, model_name, weights_bytes, activation_bytes) {
            if self.telemetry.is_on() {
                let model = self.clients[c.0 as usize].spec.model.name().to_string();
                self.telemetry.bind_client(c.0, &model);
            }
            self.record(TraceKind::ClientAdmitted { client: c.0, device: dev });
            self.start_run(c);
        }
    }

    /// Attempts to reserve the client's memory on `dev`. On failure, either
    /// parks the client in the admission queue (queued admission) or
    /// rejects it outright (the default, TF-Serving's behaviour).
    fn try_admit(
        &mut self,
        c: ClientId,
        dev: u32,
        model_name: String,
        weights_bytes: u64,
        activation_bytes: u64,
    ) -> bool {
        if self.faults.is_some() && self.alloc_fault_fired(c) {
            // A retry (or a terminal shed) is already arranged.
            return false;
        }
        // A lifecycle-managed model's weights are owned by the manager
        // (loaded per version, on demand); admission reserves only the
        // client's activations.
        let managed = self
            .lifecycle
            .as_ref()
            .is_some_and(|rt| rt.mgr.manages(&model_name))
            || self
                .cluster
                .as_ref()
                .is_some_and(|rt| rt.managers[0].manages(&model_name));
        let key = (model_name, dev);
        if !managed && !self.weights_loaded.contains_key(&key) {
            match self.memories[dev as usize].alloc(weights_bytes) {
                Ok(a) => {
                    self.weights_loaded.insert(key, a);
                }
                Err(e) => {
                    self.admission_failure(c, e);
                    return false;
                }
            }
        }
        match self.memories[dev as usize].alloc(activation_bytes) {
            Ok(a) => {
                self.clients[c.0 as usize].activations = Some(a);
                true
            }
            Err(e) => {
                self.admission_failure(c, e);
                false
            }
        }
    }

    fn admission_failure(&mut self, c: ClientId, e: gpusim::MemoryError) {
        if self.cfg.queue_admission {
            if !self.admission_waiting.contains(&c) {
                self.record(TraceKind::AdmissionQueued { client: c.0 });
                self.admission_waiting.push_back(c);
            }
        } else {
            self.telemetry.on_oom_reject();
            self.clients[c.0 as usize].outcome = Some(ClientOutcome::RejectedOom {
                requested: e.requested,
                available: e.available,
            });
            self.record(TraceKind::ClientRejectedOom {
                client: c.0,
                requested: e.requested,
                available: e.available,
            });
        }
    }

    /// Draws the transient reservation-failure verdict for this admission
    /// attempt. When it fires, schedules a deterministic backoff
    /// re-admission — or sheds the client once the retry budget is spent —
    /// and returns true (the caller must not touch the memory pool).
    fn alloc_fault_fired(&mut self, c: ClientId) -> bool {
        let now = self.now;
        let fr = self.faults.as_mut().expect("fault path entered with faults on");
        if !fr.injector.alloc_fails(now) {
            fr.admit_attempts[c.0 as usize] = 0;
            return false;
        }
        let attempt = {
            let a = &mut fr.admit_attempts[c.0 as usize];
            *a += 1;
            *a
        };
        let retry_at = fr.retry.next_retry_at(now, attempt - 1, None, &mut fr.retry_rng);
        self.record(TraceKind::AllocFault { client: c.0, attempt });
        self.telemetry.on_alloc_fault();
        match retry_at {
            Some(at) => {
                // `job == u64::MAX` / `node == u32::MAX` mark an admission
                // retry on the trace (there is no job yet).
                self.record(TraceKind::RetryScheduled {
                    job: u64::MAX,
                    client: c.0,
                    node: u32::MAX,
                    attempt,
                    delay: at - now,
                });
                self.telemetry.on_retry();
                self.queue.schedule(at, Event::RetryAdmit(c));
            }
            None => {
                self.record(TraceKind::BreakerTransition { client: c.0, state: "shed" });
                self.telemetry
                    .on_client_shed(now, c.0, "retries-exhausted", u64::from(attempt));
                self.clients[c.0 as usize].outcome =
                    Some(ClientOutcome::RetriesExhausted { at: now, attempts: attempt });
            }
        }
        true
    }

    /// Re-attempts a faulted admission after its backoff elapsed. A client
    /// parked in the queued-admission FIFO retries through the queue so
    /// head-of-line ordering is preserved.
    fn retry_admit(&mut self, c: ClientId) {
        {
            let client = &self.clients[c.0 as usize];
            if client.outcome.is_some() || client.activations.is_some() {
                return;
            }
        }
        if self.admission_waiting.contains(&c) {
            self.pump_admission();
            return;
        }
        let (dev, model_name, weights, activations) = {
            let client = &self.clients[c.0 as usize];
            (
                client.device,
                client.spec.model.name().to_string(),
                client.spec.model.weights_bytes(),
                client.spec.model.activation_bytes(),
            )
        };
        if self.try_admit(c, dev, model_name, weights, activations) {
            if self.telemetry.is_on() {
                let model = self.clients[c.0 as usize].spec.model.name().to_string();
                self.telemetry.bind_client(c.0, &model);
            }
            self.record(TraceKind::ClientAdmitted { client: c.0, device: dev });
            self.start_run(c);
        }
    }

    /// Re-attempts admission for waiting clients, FIFO, after memory freed.
    fn pump_admission(&mut self) {
        while let Some(&c) = self.admission_waiting.front() {
            let client = &self.clients[c.0 as usize];
            let dev = client.device;
            let model_name = client.spec.model.name().to_string();
            let weights = client.spec.model.weights_bytes();
            let activations = client.spec.model.activation_bytes();
            if self.try_admit(c, dev, model_name, weights, activations) {
                self.admission_waiting.pop_front();
                if self.telemetry.is_on() {
                    let model = self.clients[c.0 as usize].spec.model.name().to_string();
                    self.telemetry.bind_client(c.0, &model);
                }
                self.record(TraceKind::ClientAdmitted { client: c.0, device: dev });
                self.start_run(c);
            } else {
                // Head-of-line blocking preserved: admission is FIFO.
                break;
            }
        }
    }

    fn start_run(&mut self, c: ClientId) {
        // Lifecycle routing: resolve the model's serving version at issue
        // time. `Wait` parks the client inside the manager; it is woken
        // (via `Effects::wake`) once a version starts serving.
        let mut routed: Option<VersionKey> = None;
        // Execute estimate of a cluster-routed run, charged to the routed
        // device's queue until the run finishes.
        let mut routed_est: u64 = 0;
        if self.cluster.is_some() {
            match self.cluster_route(c) {
                FleetRoute::Issue(key, est) => {
                    routed = Some(key);
                    routed_est = est;
                }
                FleetRoute::Wait => return,
                FleetRoute::Unmanaged => {}
            }
        } else if self.lifecycle.is_some() {
            let managed = {
                let name = self.clients[c.0 as usize].spec.model.name();
                self.lifecycle.as_ref().unwrap().mgr.manages(name)
            };
            if managed {
                let mut fx = LcEffects::default();
                // Past Healthy, clients of a managed model are resolved to
                // its cheapest resident version — trading answer fidelity
                // for GPU time while the ladder is elevated.
                let degraded = self.control.as_ref().is_some_and(|rt| {
                    rt.machine.state() != controlplane::DegradeState::Healthy
                });
                let route = {
                    let client = &self.clients[c.0 as usize];
                    let rt = self.lifecycle.as_mut().unwrap();
                    if degraded {
                        rt.mgr.route_cheapest(
                            client.spec.model.name(),
                            c.0,
                            self.now,
                            &mut self.memories[0],
                            &mut fx,
                        )
                    } else {
                        rt.mgr.route(
                            client.spec.model.name(),
                            c.0,
                            self.now,
                            &mut self.memories[0],
                            &mut fx,
                        )
                    }
                };
                self.apply_lifecycle_effects(fx);
                match route {
                    Route::Wait => {
                        self.record(TraceKind::LifecycleWait { client: c.0 });
                        return;
                    }
                    Route::Issue(key) => routed = Some(key),
                }
            }
        }
        let job_id = JobId(self.job_refs.len() as u64);
        // A routed run executes the *version's* graph and registers under
        // its versioned name, so per-version profiles drive scheduling.
        let graph = match routed {
            Some(key) => match self.cluster.as_ref() {
                // Every device's manager holds the same plan, so manager 0
                // resolves any routed key's model.
                Some(rt) => Arc::clone(rt.managers[0].version_model(key).graph()),
                None => {
                    let rt = self.lifecycle.as_ref().expect("routed without manager");
                    Arc::clone(rt.mgr.version_model(key).graph())
                }
            },
            None => Arc::clone(self.clients[c.0 as usize].spec.model.graph()),
        };
        // Degradation ladder: past Healthy, runs are metered at a shrunk
        // batch hint — the resolved profile's smaller costs buy shorter
        // quanta and earlier thresholds while the graph itself is
        // unchanged.
        let divisor = self.control.as_ref().and_then(|rt| {
            (rt.machine.state() != controlplane::DegradeState::Healthy)
                .then_some(rt.cfg.batch_divisor)
        });
        let client = &self.clients[c.0 as usize];
        let full_batch = client.spec.model.batch();
        let batch = match divisor {
            Some(d) => (full_batch / d).max(1),
            None => full_batch,
        };
        let ctx = JobCtx {
            client: c,
            model_name: match routed {
                Some(key) => match self.cluster.as_ref() {
                    Some(rt) => rt.managers[0].versioned_name(key),
                    None => self
                        .lifecycle
                        .as_ref()
                        .expect("routed without manager")
                        .mgr
                        .versioned_name(key),
                },
                None => client.spec.model.name(),
            },
            batch,
            weight: client.spec.weight,
            priority: client.spec.priority,
            device: client.device,
            now: self.now,
            deadline: client.spec.run_deadline.map(|d| self.now + d),
        };
        match self.scheduler.register(job_id, &ctx) {
            Ok(verdict) => {
                self.telemetry.on_run_start();
                self.record(TraceKind::RunRegistered { job: job_id.0, client: c.0 });
                if batch != full_batch {
                    self.record(TraceKind::BatchShrink {
                        client: c.0,
                        from: full_batch,
                        to: batch,
                    });
                    self.telemetry.on_batch_shrink();
                }
                let slot = match self.free_slots.pop() {
                    Some(s) => {
                        self.job_hot[s as usize].reset(c, &graph);
                        self.job_cold[s as usize].reset(graph);
                        s
                    }
                    None => {
                        self.job_hot.push(JobHot::new(c, &graph));
                        self.job_cold.push(JobCold::new(graph));
                        (self.job_hot.len() - 1) as u32
                    }
                };
                self.job_cold[slot as usize].started_at = self.now;
                self.job_refs.push(JobRef::Live(slot));
                if let Some(key) = routed {
                    if let Some(rt) = self.cluster.as_mut() {
                        let dev = self.clients[c.0 as usize].device;
                        rt.outstanding_ns[dev as usize] += routed_est;
                        rt.job_routes.insert(job_id.0, (dev, key, routed_est));
                    } else {
                        self.lifecycle
                            .as_mut()
                            .expect("routed without manager")
                            .job_versions
                            .insert(job_id.0, key);
                    }
                }
                self.clients[c.0 as usize].current_job = Some(job_id);
                if let Some(deadline) = self.clients[c.0 as usize].spec.run_deadline {
                    self.queue
                        .schedule(self.now + deadline, Event::RunDeadline(job_id));
                }
                self.apply_verdict(verdict);
                self.schedule_timer();
                self.dispatch(job_id);
            }
            Err(e) => {
                // The id was consumed by the `register` call; keep the
                // table dense.
                self.job_refs.push(JobRef::Dead);
                let client = &mut self.clients[c.0 as usize];
                client.outcome = Some(ClientOutcome::RejectedByScheduler(e.to_string()));
                let home = client.home as usize;
                let dev = client.device;
                if let Some(a) = client.activations.take() {
                    self.memories[home].free(a);
                    self.pump_admission();
                }
                if let Some(key) = routed {
                    // The issue never became a job: return the version's
                    // in-flight credit (no latency observation).
                    if self.cluster.is_some() {
                        self.cluster_run_finished(dev, key, None);
                    } else {
                        self.lifecycle_run_finished(key, None);
                    }
                }
            }
        }
    }

    fn complete_run(&mut self, job_id: JobId) {
        let slot = self.live_slot(job_id).expect("completing a live job");
        self.job_refs[job_id.0 as usize] = JobRef::Dead;
        let (held, c, gpu_busy, final_quantum, started_at) = {
            let job = &mut self.job_hot[slot];
            let cold = &mut self.job_cold[slot];
            debug_assert_eq!(job.busy, 0, "no in-flight work at completion");
            let mut flushed = None;
            if job.quantum_acc > SimDuration::ZERO {
                let acc = std::mem::take(&mut job.quantum_acc);
                cold.quanta.push((self.now, acc));
                flushed = Some(acc);
            }
            (
                std::mem::take(&mut job.held),
                job.client,
                job.gpu_busy,
                flushed,
                cold.started_at,
            )
        };
        // Return the whole gang to the pool.
        if held > 0 {
            self.pool_idle += held;
            self.wake_starving();
        }
        if let Some(acc) = final_quantum {
            self.record(TraceKind::QuantumEnd { job: job_id.0, client: c.0, gpu: acc });
            if let Some(alert) = self.telemetry.on_quantum(c.0, acc, self.now) {
                self.record_alert(&alert);
            }
        }
        self.record(TraceKind::RunCompleted { job: job_id.0, client: c.0 });
        self.telemetry.on_run_complete(c.0, self.now - started_at, self.now);
        {
            let cold = &self.job_cold[slot];
            let client = &mut self.clients[c.0 as usize];
            client.run_finish_times.push(self.now);
            client.run_gpu_durations.push(gpu_busy);
            client.quantum_marks.extend(cold.quanta.iter().copied());
            client.batches_done += 1;
            client.current_job = None;
        }
        // Recycle the slot *before* any nested `start_run` below, so the
        // client's next batch reuses this run's buffers.
        self.free_slots.push(slot as u32);
        let verdict = self.scheduler.deregister(job_id, self.now);
        self.apply_verdict(verdict);
        self.schedule_timer();
        if self.cluster.is_some() {
            self.cluster_job_done(job_id.0, Some(self.now - started_at));
        } else if self.lifecycle.is_some() {
            let key = self
                .lifecycle
                .as_mut()
                .unwrap()
                .job_versions
                .remove(&job_id.0);
            if let Some(key) = key {
                self.lifecycle_run_finished(key, Some(self.now - started_at));
            }
        }
        let client = &mut self.clients[c.0 as usize];
        if client.batches_done < client.spec.num_batches {
            if client.spec.think_time > SimDuration::ZERO {
                // Bursty client: idle between batches (paper §1).
                self.queue.schedule(
                    self.now + client.spec.think_time,
                    Event::NextBatch(c),
                );
            } else {
                self.start_run(c);
            }
        } else {
            client.outcome = Some(ClientOutcome::Finished(self.now));
            // The session is over: release its activation memory so queued
            // clients (and the peak-memory metric) see the truth.
            let dev = client.home as usize;
            let freed = client.activations.take();
            self.record(TraceKind::ClientFinished { client: c.0 });
            if let Some(a) = freed {
                self.memories[dev].free(a);
                self.pump_admission();
            }
        }
    }

    /// Cancels a live job whose deadline elapsed.
    fn cancel_job(&mut self, job_id: JobId) {
        let slot = self.live_slot(job_id).expect("cancelling a live job");
        let c = self.job_hot[slot].client;
        self.record(TraceKind::DeadlineCancelled { job: job_id.0, client: c.0 });
        self.telemetry.on_deadline_cancel();
        self.teardown_job(job_id, c, ClientOutcome::DeadlineExceeded(self.now));
    }

    /// Terminates a persistently failing client's session: the recovery
    /// layer gave up (retry budget spent, or the circuit breaker's trip
    /// budget spent), so its live job is torn down like a deadline
    /// cancellation and the session ends with `outcome`.
    fn shed_client(
        &mut self,
        c: ClientId,
        job_id: JobId,
        outcome: ClientOutcome,
        action: &'static str,
        detail: u64,
    ) {
        self.record(TraceKind::BreakerTransition { client: c.0, state: "shed" });
        self.telemetry.on_client_shed(self.now, c.0, action, detail);
        self.teardown_job(job_id, c, outcome);
    }

    /// Shared teardown for deadline cancellations and fault-recovery sheds:
    /// drops the job's queued kernels, returns its gang to the pool,
    /// deregisters it and aborts the session with `outcome`. Kernels
    /// already *executing* finish on the device (non-preemptive, as on real
    /// hardware) but their completions are swallowed.
    fn teardown_job(&mut self, job_id: JobId, c: ClientId, outcome: ClientOutcome) {
        let slot = self.live_slot(job_id).expect("tearing down a live job");
        let held = self.job_hot[slot].held;
        let dev = self.clients[c.0 as usize].device as usize;
        self.job_refs[job_id.0 as usize] = JobRef::Cancelled(dev as u32);
        self.free_slots.push(slot as u32);
        // Drop this job's not-yet-started kernels from the device queue.
        // Cancellation is rare, so the scratch collections are built only
        // here, and `doomed` is in ascending slab order so the free list
        // stays deterministic.
        let doomed: Vec<u64> = self
            .kernels
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Some((j, _)) if *j == job_id))
            .map(|(k, _)| k as u64)
            .collect();
        if !doomed.is_empty() {
            let doomed_set: std::collections::HashSet<u64> = doomed.iter().copied().collect();
            self.devices[dev].cancel_payloads(&doomed_set);
            for &k in &doomed {
                self.kernels[k as usize] = None;
                self.kernel_free.push(k as u32);
            }
        }
        // The gang's threads observe the cancellation and return.
        if held > 0 {
            self.pool_idle += held;
            self.wake_starving();
        }
        let verdict = self.scheduler.deregister(job_id, self.now);
        self.apply_verdict(verdict);
        self.schedule_timer();
        if self.cluster.is_some() {
            // Cancelled runs report no latency: they must not skew
            // the canary statistics.
            self.cluster_job_done(job_id.0, None);
        } else if self.lifecycle.is_some() {
            let key = self
                .lifecycle
                .as_mut()
                .unwrap()
                .job_versions
                .remove(&job_id.0);
            if let Some(key) = key {
                // Cancelled runs report no latency: they must not skew
                // the canary statistics.
                self.lifecycle_run_finished(key, None);
            }
        }
        // Abort the whole session and release its memory (activations live
        // on the home device, which may differ from the routed one).
        let client = &mut self.clients[c.0 as usize];
        client.current_job = None;
        client.outcome = Some(outcome);
        let home = client.home as usize;
        if let Some(a) = client.activations.take() {
            self.memories[home].free(a);
            self.pump_admission();
        }
    }

    // ---- model lifecycle --------------------------------------------------

    /// Advances the lifecycle manager's time-driven transitions (publishes,
    /// load completions, warm-up runs) and applies the effects. In cluster
    /// mode every device's manager is ticked, in device order.
    fn lifecycle_tick(&mut self) {
        if self.cluster.is_some() {
            let n = self.cluster.as_ref().unwrap().managers.len();
            for d in 0..n {
                let mut fx = LcEffects::default();
                {
                    let rt = self.cluster.as_mut().unwrap();
                    rt.managers[d].tick(self.now, &mut self.memories[d], &mut fx);
                }
                self.apply_lifecycle_effects(fx);
            }
            return;
        }
        let mut fx = LcEffects::default();
        {
            let rt = self.lifecycle.as_mut().expect("lifecycle tick with manager off");
            rt.mgr.tick(self.now, &mut self.memories[0], &mut fx);
        }
        self.apply_lifecycle_effects(fx);
    }

    /// Reports a routed run's completion (`latency == None` for cancelled
    /// or never-started runs) and applies the resulting effects: canary
    /// decisions, drain completions and retried loads.
    fn lifecycle_run_finished(&mut self, key: VersionKey, latency: Option<SimDuration>) {
        let mut fx = LcEffects::default();
        {
            let rt = self.lifecycle.as_mut().expect("lifecycle hook with manager off");
            rt.mgr
                .run_finished(key, self.now, latency, &mut self.memories[0], &mut fx);
        }
        self.apply_lifecycle_effects(fx);
    }

    /// Translates manager effects into engine actions: typed events onto
    /// the trace and telemetry, future ticks onto the event queue, parked
    /// clients back into `start_run`, and — after any unload or eviction —
    /// a queued-admission pump over the freed memory.
    fn apply_lifecycle_effects(&mut self, fx: LcEffects) {
        if fx.is_empty() {
            return;
        }
        let mut freed = false;
        for ev in &fx.events {
            match *ev {
                LifecycleEvent::Load { key, bytes, latency: _ } => {
                    self.record(TraceKind::VersionLoad {
                        model: key.model,
                        version: key.version,
                        bytes,
                    });
                    self.telemetry.on_version_load();
                }
                LifecycleEvent::Warmup { key, run } => {
                    self.record(TraceKind::WarmupRun {
                        model: key.model,
                        version: key.version,
                        run,
                    });
                    self.telemetry.on_warmup_run();
                }
                LifecycleEvent::Evicted { key, bytes } => {
                    self.record(TraceKind::Evict {
                        model: key.model,
                        version: key.version,
                        bytes,
                    });
                    self.telemetry.on_version_evict();
                    freed = true;
                }
                LifecycleEvent::Unloaded { .. } => {
                    self.telemetry.on_version_unload();
                    freed = true;
                }
                LifecycleEvent::Drain { key, inflight } => {
                    self.record(TraceKind::Drain {
                        model: key.model,
                        version: key.version,
                        inflight,
                    });
                    self.telemetry.on_drain_start();
                }
                LifecycleEvent::Promote { key, cand_us, base_us } => {
                    self.record(TraceKind::CanaryPromote {
                        model: key.model,
                        version: key.version,
                    });
                    self.telemetry.on_rollout(
                        self.now,
                        self.lifecycle.as_ref().expect("event without manager").mgr.model_name(key),
                        key.version,
                        "promote",
                        cand_us,
                        base_us,
                    );
                }
                LifecycleEvent::Rollback { key, cand_us, base_us } => {
                    self.record(TraceKind::CanaryRollback {
                        model: key.model,
                        version: key.version,
                    });
                    self.telemetry.on_rollout(
                        self.now,
                        self.lifecycle.as_ref().expect("event without manager").mgr.model_name(key),
                        key.version,
                        "rollback",
                        cand_us,
                        base_us,
                    );
                }
            }
        }
        for t in fx.ticks {
            self.queue.schedule(t.max(self.now), Event::LifecycleTick);
        }
        for c in fx.wake {
            self.start_run(ClientId(c));
        }
        if freed {
            self.pump_admission();
        }
    }

    // ---- fleet orchestration ----------------------------------------------

    /// Routes one arriving run across the fleet: estimates each device's
    /// cost (queued work + transfer-if-load-needed + profile-scaled
    /// execute), picks the cheapest (lowest index on ties), and resolves
    /// the version through that device's lifecycle manager.
    fn cluster_route(&mut self, c: ClientId) -> FleetRoute {
        let name = self.clients[c.0 as usize].spec.model.name().to_string();
        let Some(mi) = self.cluster.as_ref().unwrap().managers[0].model_index(&name) else {
            return FleetRoute::Unmanaged;
        };
        // Whole-run GPU estimate at speed 1.0: the oracle's figure when
        // bound, else the graph's summed kernel durations.
        let batch = self.clients[c.0 as usize].spec.model.batch();
        let base_ns = {
            let rt = self.cluster.as_ref().unwrap();
            rt.cfg
                .cost
                .as_ref()
                .and_then(|o| o.expected_gpu_ns(&name, batch))
                .unwrap_or_else(|| {
                    let g = self.clients[c.0 as usize].spec.model.graph();
                    g.node_ids()
                        .filter(|&id| g.node(id).placement() == Placement::Gpu)
                        .map(|id| g.node(id).duration().as_nanos())
                        .sum()
                })
        };
        // A woken client re-routes from scratch: return its parked charge.
        let parked_dev = {
            let rt = self.cluster.as_mut().unwrap();
            match rt.parked.remove(&c.0) {
                Some((pd, pest)) => {
                    rt.outstanding_ns[pd as usize] =
                        rt.outstanding_ns[pd as usize].saturating_sub(pest);
                    Some(pd)
                }
                None => None,
            }
        };
        let (dev, est_ns, cost_ns) = {
            let rt = self.cluster.as_mut().unwrap();
            if parked_dev.is_none() {
                // Demand is counted once per arrival, not per wake-up.
                rt.window_demand[mi] += 1;
            }
            rt.exec_est[mi] = base_ns;
            match rt.cfg.policy {
                cluster::RouterPolicy::Static => {
                    let d = mi % rt.managers.len();
                    let est = cluster::scaled_execute_ns(base_ns, rt.speed[d]);
                    (d as u32, est, est)
                }
                cluster::RouterPolicy::CostAware => {
                    let ests: Vec<cluster::DeviceEstimate> = (0..rt.managers.len())
                        .map(|d| {
                            let m = &rt.managers[d];
                            cluster::DeviceEstimate {
                                queued_ns: rt.outstanding_ns[d],
                                resident: m.serving_version(mi).is_some(),
                                loading: m.is_loading(mi),
                                transfer_ns: MemoryPool::transfer_time(
                                    m.aspired_weights_bytes(mi),
                                    m.load_gbps(),
                                )
                                .as_nanos(),
                                execute_ns: cluster::scaled_execute_ns(base_ns, rt.speed[d]),
                            }
                        })
                        .collect();
                    let d = cluster::pick_device(&ests);
                    (d as u32, ests[d].execute_ns, ests[d].cost_ns())
                }
            }
        };
        // A wake credit granted on a device the run no longer routes to
        // must be returned, or that version stays pinned forever.
        if let Some(pd) = parked_dev {
            if pd != dev {
                self.cluster.as_mut().unwrap().managers[pd as usize].cancel_wake_credit(mi);
            }
        }
        self.record(TraceKind::ClusterRoute {
            client: c.0,
            device: dev,
            cost_us: cost_ns / 1_000,
        });
        self.telemetry.on_cluster_route();
        let mut fx = LcEffects::default();
        let route = {
            let rt = self.cluster.as_mut().unwrap();
            rt.managers[dev as usize].route(
                &name,
                c.0,
                self.now,
                &mut self.memories[dev as usize],
                &mut fx,
            )
        };
        self.apply_lifecycle_effects(fx);
        match route {
            Route::Wait => {
                let rt = self.cluster.as_mut().unwrap();
                rt.parked.insert(c.0, (dev, est_ns));
                rt.outstanding_ns[dev as usize] += est_ns;
                self.record(TraceKind::LifecycleWait { client: c.0 });
                FleetRoute::Wait
            }
            Route::Issue(key) => {
                self.clients[c.0 as usize].device = dev;
                FleetRoute::Issue(key, est_ns)
            }
        }
    }

    /// Reports a routed run's completion to the device's manager — the
    /// cluster counterpart of [`lifecycle_run_finished`](Self::lifecycle_run_finished).
    fn cluster_run_finished(&mut self, dev: u32, key: VersionKey, latency: Option<SimDuration>) {
        let mut fx = LcEffects::default();
        {
            let rt = self.cluster.as_mut().expect("cluster hook with cluster off");
            rt.managers[dev as usize].run_finished(
                key,
                self.now,
                latency,
                &mut self.memories[dev as usize],
                &mut fx,
            );
        }
        self.apply_lifecycle_effects(fx);
    }

    /// Settles a finished (or cancelled) routed job: returns its queue
    /// charge and reports the completion to its device's manager.
    fn cluster_job_done(&mut self, job: u64, latency: Option<SimDuration>) {
        let entry = {
            let rt = self.cluster.as_mut().expect("cluster hook with cluster off");
            rt.job_routes.remove(&job).inspect(|&(dev, _, est)| {
                rt.outstanding_ns[dev as usize] =
                    rt.outstanding_ns[dev as usize].saturating_sub(est);
            })
        };
        if let Some((dev, key, _)) = entry {
            self.cluster_run_finished(dev, key, latency);
        }
    }

    /// One reconfiguration tick: solve the demand window's min-cost flow
    /// and execute the plan, then re-arm while any session is undecided.
    fn cluster_tick(&mut self) {
        let now = self.now;
        let (loads, drains) = self.cluster_reconfigure();
        if loads > 0 || drains > 0 {
            self.record(TraceKind::ClusterReconfig { loads, drains });
            self.telemetry.on_cluster_reconfig();
        }
        let tick = self.cluster.as_ref().expect("cluster tick with cluster off").cfg.tick;
        if self.clients.iter().any(|c| c.outcome.is_none()) {
            self.queue.schedule(now + tick, Event::ClusterTick);
        }
    }

    /// Solves the window's model-demand → device-capacity min-cost flow
    /// and drives the plan through the per-device lifecycle managers:
    /// loads where flow lands on a cold device, drains where a resident
    /// replica receives no flow. Returns `(accepted loads, accepted
    /// drains)`. Device capacities are run units proportional to relative
    /// speed (ceiling division, so aggregate capacity covers demand).
    fn cluster_reconfigure(&mut self) -> (u32, u32) {
        let now = self.now;
        let problem = {
            let rt = self.cluster.as_mut().unwrap();
            let n_models = rt.window_demand.len();
            let n_devs = rt.managers.len();
            let demands = std::mem::replace(&mut rt.window_demand, vec![0; n_models]);
            let total: u64 = demands.iter().sum();
            if total == 0 {
                return (0, 0);
            }
            let speed_ppm: Vec<u64> = rt.speed.iter().map(|s| (s * 1e6) as u64).collect();
            let sum_ppm: u64 = speed_ppm.iter().sum();
            let capacities: Vec<u64> = speed_ppm
                .iter()
                .map(|&p| (total * p).div_ceil(sum_ppm))
                .collect();
            // Per-unit cost in µs: the transfer a load would pay, plus the
            // profile-scaled execute estimate from this window's arrivals.
            let costs: Vec<Vec<u64>> = (0..n_models)
                .map(|mi| {
                    (0..n_devs)
                        .map(|d| {
                            let m = &rt.managers[d];
                            let warm = m.serving_version(mi).is_some() || m.is_loading(mi);
                            let transfer = if warm {
                                0
                            } else {
                                MemoryPool::transfer_time(
                                    m.aspired_weights_bytes(mi),
                                    m.load_gbps(),
                                )
                                .as_nanos()
                            };
                            (transfer + cluster::scaled_execute_ns(rt.exec_est[mi], rt.speed[d]))
                                / 1_000
                        })
                        .collect()
                })
                .collect();
            cluster::FlowProblem { demands, capacities, costs }
        };
        let assignment = cluster::solve(&problem);
        let n_models = problem.demands.len();
        let n_devs = problem.capacities.len();
        let mut loads = 0u32;
        let mut drains = 0u32;
        for mi in 0..n_models {
            let placements = assignment.placements(mi);
            if placements.is_empty() {
                continue;
            }
            for &d in &placements {
                let cold = {
                    let rt = self.cluster.as_ref().unwrap();
                    rt.managers[d].serving_version(mi).is_none()
                        && !rt.managers[d].is_loading(mi)
                };
                if !cold {
                    continue;
                }
                let mut fx = LcEffects::default();
                let ok = {
                    let rt = self.cluster.as_mut().unwrap();
                    rt.managers[d].request_load(mi, now, &mut self.memories[d], &mut fx)
                };
                self.apply_lifecycle_effects(fx);
                if ok {
                    loads += 1;
                }
            }
            for d in 0..n_devs {
                if placements.contains(&d) {
                    continue;
                }
                let serving = {
                    let rt = self.cluster.as_ref().unwrap();
                    rt.managers[d].serving_version(mi).is_some()
                };
                if !serving {
                    continue;
                }
                let mut fx = LcEffects::default();
                let ok = {
                    let rt = self.cluster.as_mut().unwrap();
                    rt.managers[d].request_drain(mi, now, &mut self.memories[d], &mut fx)
                };
                self.apply_lifecycle_effects(fx);
                if ok {
                    drains += 1;
                    self.record(TraceKind::ClusterMigrate {
                        model: mi as u32,
                        from: d as u32,
                        to: placements[0] as u32,
                    });
                    self.telemetry.on_cluster_migrate();
                }
            }
        }
        (loads, drains)
    }

    // ---- control plane ----------------------------------------------------

    /// One control-plane tick: steps the degradation ladder's cool-down,
    /// cancels laxity-negative runs early, and re-arms the tick while any
    /// session is still undecided.
    fn control_tick(&mut self) {
        let now = self.now;
        let (tick, transition, laxity_on) = {
            let Some(rt) = self.control.as_mut() else {
                return;
            };
            (rt.cfg.tick, rt.machine.on_tick(now), rt.cfg.laxity_cancel)
        };
        if let Some(tr) = transition {
            self.note_control_transition(tr);
        }
        if laxity_on {
            // Early cancellation: a run whose expected remaining GPU work
            // no longer fits before its deadline is torn down now instead
            // of at the deadline, freeing its quanta for runs that can
            // still make it.
            for (job, c, deficit_us) in self.laxity_doomed() {
                self.record(TraceKind::LaxityCancel {
                    job: job.0,
                    client: c.0,
                    deficit_us,
                });
                self.telemetry.on_laxity_cancel();
                self.teardown_job(job, c, ClientOutcome::DeadlineExceeded(now));
            }
        }
        if self.clients.iter().any(|c| c.outcome.is_none()) {
            self.queue.schedule(now + tick, Event::ControlTick);
        }
    }

    /// Runs that cannot meet their deadline any more, in client-index
    /// order: `(job, client, deficit in µs)`. The estimate charges each
    /// run its bound profile's whole-run GPU duration minus the GPU time
    /// it already received.
    fn laxity_doomed(&self) -> Vec<(JobId, ClientId, u64)> {
        let Some(cost) = self.control.as_ref().and_then(|rt| rt.cfg.cost.clone()) else {
            return Vec::new();
        };
        let mut doomed = Vec::new();
        for (i, client) in self.clients.iter().enumerate() {
            let (Some(job), Some(budget)) = (client.current_job, client.spec.run_deadline)
            else {
                continue;
            };
            let Some(slot) = self.live_slot(job) else {
                continue;
            };
            let Some(total) =
                cost.expected_gpu_ns(client.spec.model.name(), client.spec.model.batch())
            else {
                continue;
            };
            let deadline = self.job_cold[slot].started_at + budget;
            let received = self.job_hot[slot].gpu_busy.as_nanos();
            let eta = self.now + SimDuration::from_nanos(total.saturating_sub(received));
            if eta > deadline {
                doomed.push((job, ClientId(i as u32), (eta - deadline).as_nanos() / 1_000));
            }
        }
        doomed
    }

    /// Lands a degradation-ladder transition on the trace and telemetry.
    fn note_control_transition(&mut self, tr: controlplane::Transition) {
        self.record(TraceKind::ControlTransition {
            from: tr.from.as_str(),
            to: tr.to.as_str(),
        });
        self.telemetry.on_control_transition();
    }

    /// The control plane's alert reactions: an SLO burn escalates the
    /// degradation ladder (and resets the burn latch so a *sustained* burn
    /// keeps escalating), a drift alert recalibrates the drifting model's
    /// profile in place — no run is stopped; the next threshold computation
    /// simply sees the rescaled profile.
    fn control_on_alert(&mut self, alert: &Alert) {
        match alert {
            Alert::SloBurn { at, slo, .. } => {
                let transition = {
                    let rt = self.control.as_mut().expect("control hook with control on");
                    rt.machine.on_burn(*at)
                };
                self.telemetry.reset_burn_latch(*slo);
                if let Some(tr) = transition {
                    self.note_control_transition(tr);
                }
            }
            Alert::Drift { client, observed_us, expected_us, .. } => {
                let rebound = {
                    let rt = self.control.as_ref().expect("control hook with control on");
                    if !rt.cfg.recalibrate || *expected_us <= 0.0 {
                        return;
                    }
                    let Some(cost) = rt.cfg.cost.as_ref() else {
                        return;
                    };
                    let scale_ppm = controlplane::clamp_rebind_ppm(
                        ((observed_us / expected_us) * 1e6).round() as u64,
                    );
                    let spec = &self.clients[*client as usize].spec;
                    cost.rebind_scaled(spec.model.name(), spec.model.batch(), scale_ppm)
                        .then_some(scale_ppm)
                };
                if let Some(scale_ppm) = rebound {
                    self.record(TraceKind::ProfileRebind { client: *client, scale_ppm });
                    self.telemetry.on_profile_rebind();
                }
            }
            _ => {}
        }
    }

    // ---- scheduling plumbing ---------------------------------------------

    #[inline]
    fn record(&mut self, kind: TraceKind) {
        self.trace.record(self.now, kind);
    }

    /// Samples the gauge set telemetry publishes at snapshot boundaries.
    fn engine_gauges(&self) -> EngineGauges {
        let probe = self.scheduler.telemetry_probe();
        EngineGauges {
            queue_depth: self.admission_waiting.len() as u64,
            pool_idle: u64::from(self.pool_idle),
            starving: self.starving.len() as u64,
            active_jobs: u64::from(probe.active_jobs),
            holder_cost: probe.holder_cost,
            resident_model_bytes: match (&self.lifecycle, &self.cluster) {
                (Some(rt), _) => rt.mgr.resident_bytes(),
                (None, Some(rt)) => rt.managers.iter().map(LifecycleManager::resident_bytes).sum(),
                (None, None) => 0,
            },
        }
    }

    /// Emits every telemetry snapshot boundary due at `self.now` and lands
    /// any burn-rate alerts on the trace timeline.
    fn telemetry_tick(&mut self) {
        let gauges = self.engine_gauges();
        let alerts = self.telemetry.tick(self.now, &gauges);
        self.telemetry_due = self.telemetry.next_due();
        for a in &alerts {
            self.record_alert(a);
        }
    }

    /// Mirrors a telemetry alert into the trace ring as a typed event, so
    /// it shows up on the Perfetto timeline next to the quanta and runs
    /// that caused it.
    fn record_alert(&mut self, alert: &Alert) {
        if self.control.is_some() {
            self.control_on_alert(alert);
        }
        let kind = match alert {
            Alert::Drift { client, observed_us, expected_us, deviation, .. } => {
                TraceKind::DriftAlert {
                    client: *client,
                    observed_us: observed_us.round() as u64,
                    expected_us: expected_us.round() as u64,
                    deviation_ppm: (deviation * 1e6).round() as u64,
                }
            }
            Alert::SloBurn { slo, short_burn, long_burn, .. } => TraceKind::SloBurnAlert {
                slo: *slo,
                short_ppm: (short_burn * 1e6).round() as u64,
                long_ppm: (long_burn * 1e6).round() as u64,
            },
            // Fault-recovery alerts already have a typed trace event
            // recorded at the action site (BreakerTransition,
            // WatchdogRevoke, RetryScheduled); mirroring them here would
            // double-count.
            Alert::FaultRecovery { .. } => return,
            // Rollout alerts likewise: CanaryPromote / CanaryRollback are
            // recorded where the decision lands.
            Alert::Rollout { .. } => return,
        };
        self.trace.record(alert.at(), kind);
    }

    fn apply_verdict(&mut self, verdict: Verdict) {
        let Verdict::Moved { from, to, reason } = verdict else {
            return;
        };
        if matches!(reason, SwitchReason::WatchdogStall) {
            // The token-hold watchdog revoked a stalled holder: surface it
            // before `last_switch` advances, so the stall length is the
            // time since the holder was granted the token.
            if let Some(old) = from {
                let stalled_us = self
                    .last_switch
                    .map_or(0, |t| (self.now - t).as_nanos() / 1_000);
                if let Some(s) = self.live_slot(old) {
                    let client = self.job_hot[s].client.0;
                    self.record(TraceKind::WatchdogRevoke { job: old.0, client, stalled_us });
                    self.telemetry.on_watchdog_revoke(self.now, client, stalled_us);
                }
            }
        }
        self.switch_count += 1;
        self.telemetry.on_token_switch();
        if let Some(last) = self.last_switch {
            self.intervals.push(self.now - last);
        }
        self.last_switch = Some(self.now);
        if let Some(old) = from {
            if let Some(slot) = self.live_slot(old) {
                let (flushed, client) = {
                    let j = &mut self.job_hot[slot];
                    if j.quantum_acc > SimDuration::ZERO {
                        let acc = std::mem::take(&mut j.quantum_acc);
                        self.job_cold[slot].quanta.push((self.now, acc));
                        (Some(acc), j.client.0)
                    } else {
                        (None, j.client.0)
                    }
                };
                if let Some(acc) = flushed {
                    self.record(TraceKind::QuantumEnd { job: old.0, client, gpu: acc });
                    if let Some(alert) = self.telemetry.on_quantum(client, acc, self.now) {
                        self.record_alert(&alert);
                    }
                }
            }
        }
        if self.trace.is_on() {
            // A revoked/granted job may already be deregistered (its slot is
            // freed before the verdict reaches us), hence the Option client.
            if let Some(old) = from {
                let client = self.live_slot(old).map(|s| self.job_hot[s].client.0);
                self.record(TraceKind::TokenRevoke { job: old.0, client, reason });
            }
            if let Some(new) = to {
                let client = self.live_slot(new).map(|s| self.job_hot[s].client.0);
                self.record(TraceKind::TokenGrant { job: new.0, client, reason });
            }
        }
        if let Some(new) = to {
            if let Some(slot) = self.live_slot(new) {
                let telemetry_on = self.telemetry.is_on();
                let (unblocked, client) = {
                    let j = &mut self.job_hot[slot];
                    j.resume_at = self.now + self.cfg.switch_latency;
                    if telemetry_on {
                        // Hand-off latency runs from here to the holder's
                        // next kernel submission.
                        j.granted_at = self.now;
                    }
                    if !j.resume_scheduled {
                        j.resume_scheduled = true;
                        let at = j.resume_at;
                        self.queue.schedule(at, Event::ResumeJob(new));
                    }
                    (std::mem::take(&mut j.yield_blocked), j.client.0)
                };
                if unblocked {
                    self.record(TraceKind::YieldUnblock { job: new.0, client });
                }
            }
        }
    }

    fn schedule_timer(&mut self) {
        if let Some(t) = self.scheduler.next_timer(self.now) {
            self.timer_gen += 1;
            self.queue.schedule(t.max(self.now), Event::SchedTimer(self.timer_gen));
        }
    }

    fn wake_starving(&mut self) {
        while self.pool_idle > 0 {
            let Some(job) = self.starving.pop_front() else {
                break;
            };
            if let Some(slot) = self.live_slot(job) {
                self.job_hot[slot].starving = false;
                self.dispatch(job);
            }
        }
    }

    // ---- the processing loop (Algorithm 1 + Algorithm 2 hooks) ------------

    fn dispatch(&mut self, job_id: JobId) {
        loop {
            let Some(slot) = self.live_slot(job_id) else {
                return;
            };
            // Algorithm 2 line 12: scheduler.yield() — a suspended gang's
            // threads park here, keeping their pool slots.
            if !self.scheduler.may_run(job_id) {
                if self.trace.is_on() && !self.job_hot[slot].yield_blocked {
                    self.job_hot[slot].yield_blocked = true;
                    let client = self.job_hot[slot].client.0;
                    self.record(TraceKind::YieldBlock { job: job_id.0, client });
                }
                return;
            }
            let job = &self.job_hot[slot];
            // Gang wake-up latency after a token hand-off.
            if self.now < job.resume_at {
                let at = job.resume_at;
                let job = &mut self.job_hot[slot];
                if !job.resume_scheduled {
                    job.resume_scheduled = true;
                    self.queue.schedule(at, Event::ResumeJob(job_id));
                }
                return;
            }
            if job.ready.is_empty() {
                // Nothing to pick up: idle gang threads go back to the pool
                // (TF-Serving returns threads as soon as Process() drains).
                let idle = job.held - job.busy;
                if idle > 0 {
                    self.job_hot[slot].held -= idle;
                    self.pool_idle += idle;
                    self.wake_starving();
                }
                return;
            }
            // Acquire a worker: prefer an idle gang member, else the pool.
            let gang_limit = self.clients[job.client.0 as usize].gang_limit;
            if job.held == job.busy {
                if job.held < gang_limit && self.pool_idle > 0 {
                    self.pool_idle -= 1;
                    self.job_hot[slot].held += 1;
                } else {
                    if job.busy == 0 && !job.starving {
                        self.job_hot[slot].starving = true;
                        self.starving.push_back(job_id);
                    }
                    return;
                }
            }
            let job = &mut self.job_hot[slot];
            job.busy += 1;
            let node = job.ready.pop_front().expect("checked non-empty");
            self.execute_node(job_id, node);
        }
    }

    fn execute_node(&mut self, job_id: JobId, node: NodeId) {
        let slot = self.live_slot(job_id).expect("executing a live job");
        // Hot/cold split: the graph lives in the cold table, so borrowing it
        // alongside the mutable client row needs no `Arc` clone.
        let client_id = self.job_hot[slot].client.0;
        let graph = &self.job_cold[slot].graph;
        let client = &mut self.clients[client_id as usize];
        let n = graph.node(node);
        let inflation = if self.cfg.online_profiling {
            1.0 + self.cfg.profiling_inflation
        } else {
            1.0
        };
        let jitter = if self.cfg.cpu_jitter > 0.0 {
            client.rng.jitter(self.cfg.cpu_jitter)
        } else {
            1.0
        };
        match n.placement() {
            Placement::Cpu => {
                let d = n.duration().mul_f64(jitter * client.submit_factor * inflation);
                self.queue.schedule(
                    self.now + d,
                    Event::NodeDone { job: job_id, node, gpu: None },
                );
            }
            Placement::Gpu => {
                let launch = self
                    .cfg
                    .launch_overhead
                    .mul_f64(jitter * client.submit_factor * inflation);
                self.queue
                    .schedule(self.now + launch, Event::SubmitKernel { job: job_id, node });
            }
        }
    }

    fn submit_kernel(&mut self, job_id: JobId, node: NodeId) {
        let slot = match self.job_refs[job_id.0 as usize] {
            JobRef::Live(s) => s as usize,
            // Launch raced with a deadline cancellation.
            JobRef::Cancelled(_) => return,
            JobRef::Dead => unreachable!("submitting for a dead job"),
        };
        if self.telemetry.is_on() {
            let j = &mut self.job_hot[slot];
            if j.granted_at != SimTime::MAX {
                let granted = std::mem::replace(&mut j.granted_at, SimTime::MAX);
                self.telemetry.on_handoff(self.now - granted);
            }
        }
        if self.faults.is_some() && self.kernel_fault_fired(job_id, node, slot) {
            // The launch failed; a backoff retry is scheduled (or the
            // client was shed). The gang thread stays blocked either way.
            return;
        }
        let duration = self.job_cold[slot].graph.node(node).duration();
        let tag = JobTag(self.job_hot[slot].client.0 as u64);
        let inflation = if self.cfg.online_profiling {
            1.0 + self.cfg.profiling_inflation
        } else {
            1.0
        };
        let dev = self.clients[tag.0 as usize].device as usize;
        let kernel_id = match self.kernel_free.pop() {
            Some(k) => {
                self.kernels[k as usize] = Some((job_id, node));
                u64::from(k)
            }
            None => {
                self.kernels.push(Some((job_id, node)));
                (self.kernels.len() - 1) as u64
            }
        };
        if self.trace.records_kernels() {
            let client = self.job_hot[slot].client.0;
            self.record(TraceKind::KernelEnqueue {
                job: job_id.0,
                client,
                device: dev as u32,
                node: node.index() as u32,
            });
        }
        let mut extra = inflation;
        if let Some(fr) = self.faults.as_ref() {
            // A kernel enqueued inside a slowdown window runs `factor`×
            // slower (the window is sampled at submission).
            extra *= fr.injector.slowdown_factor(self.now);
        }
        self.devices[dev].enqueue(tag, kernel_id, duration, extra);
        self.pump_device(dev);
    }

    /// Draws the kernel-fault verdict for this submission. When it fires,
    /// runs the recovery path — count the attempt, drive the client's
    /// circuit breaker, then either schedule a backoff retry (never past
    /// the run deadline) or shed the session — and returns true: the
    /// kernel was not enqueued and the gang thread stays blocked on it.
    fn kernel_fault_fired(&mut self, job_id: JobId, node: NodeId, slot: usize) -> bool {
        let now = self.now;
        let c = self.job_hot[slot].client;
        let started_at = self.job_cold[slot].started_at;
        let dev = self.clients[c.0 as usize].device;
        let deadline = self.clients[c.0 as usize].spec.run_deadline.map(|d| started_at + d);
        let fr = self.faults.as_mut().expect("fault path entered with faults on");
        if !fr.injector.kernel_fails(now) {
            // A clean launch closes a half-open breaker (the probe
            // succeeded) and resets the failure streak.
            let b = &mut fr.breakers[c.0 as usize];
            let reopened = b.state() != BreakerState::Closed;
            b.record_success();
            if !fr.attempts.is_empty() {
                fr.attempts.remove(&(job_id.0, node.index() as u32));
            }
            if reopened {
                self.record(TraceKind::BreakerTransition { client: c.0, state: "closed" });
            }
            return false;
        }
        let attempt = {
            let a = fr.attempts.entry((job_id.0, node.index() as u32)).or_insert(0);
            *a += 1;
            *a
        };
        let breaker_event = fr.breakers[c.0 as usize].record_failure(now);
        let trips = fr.breakers[c.0 as usize].trips();
        let mut probe_scheduled = false;
        let retry_at = match breaker_event {
            BreakerEvent::Shed => None,
            _ => fr
                .retry
                .next_retry_at(now, attempt - 1, deadline, &mut fr.retry_rng)
                .map(|at| {
                    // An open breaker defers the retry to its cooldown
                    // edge; consulting it makes the retry the probe.
                    let b = &mut fr.breakers[c.0 as usize];
                    let was_open = b.state() == BreakerState::Open;
                    let earliest = b.earliest_attempt(now);
                    probe_scheduled = was_open;
                    at.max(earliest)
                }),
        };
        self.record(TraceKind::KernelFault {
            job: job_id.0,
            client: c.0,
            device: dev,
            node: node.index() as u32,
            attempt,
        });
        self.telemetry.on_kernel_fault();
        if let BreakerEvent::Opened { .. } = breaker_event {
            self.record(TraceKind::BreakerTransition { client: c.0, state: "open" });
            self.telemetry.on_breaker_open(now, c.0);
        }
        if probe_scheduled {
            self.record(TraceKind::BreakerTransition { client: c.0, state: "half-open" });
        }
        match retry_at {
            Some(at) => {
                self.record(TraceKind::RetryScheduled {
                    job: job_id.0,
                    client: c.0,
                    node: node.index() as u32,
                    attempt,
                    delay: at - now,
                });
                self.telemetry.on_retry();
                self.queue.schedule(at, Event::RetryKernel { job: job_id, node });
            }
            None => {
                let (outcome, action, detail) = if breaker_event == BreakerEvent::Shed {
                    (
                        ClientOutcome::CircuitOpen { at: now, trips },
                        "circuit-open",
                        u64::from(trips),
                    )
                } else {
                    (
                        ClientOutcome::RetriesExhausted { at: now, attempts: attempt },
                        "retries-exhausted",
                        u64::from(attempt),
                    )
                };
                self.shed_client(c, job_id, outcome, action, detail);
            }
        }
        true
    }

    /// Starts the next queued kernel if the device is free and schedules its
    /// completion. Called after every enqueue and every kernel completion —
    /// the device's pump protocol keeps exactly one completion outstanding.
    fn pump_device(&mut self, dev: usize) {
        if let Some(fr) = self.faults.as_mut() {
            if let Some(until) = fr.injector.stall_until(self.now) {
                // The device starts no new kernels during a stall window;
                // one wake-up event per (device, window) resumes pumping.
                if !fr.stall_pump[dev] {
                    fr.stall_pump[dev] = true;
                    self.record(TraceKind::DeviceStall {
                        device: dev as u32,
                        until_us: until.as_nanos() / 1_000,
                    });
                    self.queue.schedule(until, Event::PumpDevice(dev as u32));
                }
                return;
            }
        }
        if let Some(k) = self.devices[dev].try_start(self.now) {
            let idx = k.payload as usize;
            let (job, node) = self.kernels[idx]
                .take()
                .expect("started kernel was enqueued");
            self.kernel_free.push(idx as u32);
            if self.trace.records_kernels() {
                // A started kernel's job is still live: queued kernels of
                // cancelled jobs are dropped, and a job with in-flight work
                // cannot complete.
                if let Some(s) = self.live_slot(job) {
                    let client = self.job_hot[s].client.0;
                    self.record(TraceKind::KernelLaunch {
                        job: job.0,
                        client,
                        device: dev as u32,
                        node: node.index() as u32,
                        start: k.start,
                        end: k.end,
                    });
                }
            }
            self.queue.schedule(
                k.end,
                Event::NodeDone { job, node, gpu: Some(k.duration) },
            );
        }
    }

    fn node_done(&mut self, job_id: JobId, node: NodeId, gpu: Option<SimDuration>) {
        let slot = match self.job_refs[job_id.0 as usize] {
            JobRef::Live(s) => s as usize,
            JobRef::Cancelled(dev) => {
                // Overflow completion of a cancelled job: the device is free
                // again, but nobody is accounting for this job any more.
                if gpu.is_some() {
                    self.pump_device(dev as usize);
                }
                return;
            }
            JobRef::Dead => unreachable!("finishing a dead job"),
        };
        if gpu.is_some() {
            // A kernel just finished: its device is free for the next one.
            let dev =
                self.clients[self.job_hot[slot].client.0 as usize].device as usize;
            self.pump_device(dev);
        }
        let job = &mut self.job_hot[slot];
        job.busy -= 1;
        job.done_nodes += 1;
        if let Some(d) = gpu {
            // Algorithm 2 lines 14-18: cost is charged to the job that
            // launched the kernel, even if it was switched out meanwhile
            // (the overflow rule, Figures 10/15).
            job.gpu_busy += d;
            job.quantum_acc += d;
            let client = job.client.0;
            // Off-mode tracing costs one branch here; the threshold probes
            // and overflow check run only while capturing.
            let pre_cost = if self.trace.is_on() {
                if self.trace.records_kernels() {
                    let device = self.clients[client as usize].device;
                    self.record(TraceKind::KernelComplete {
                        job: job_id.0,
                        client,
                        device,
                        node: node.index() as u32,
                        gpu: d,
                    });
                }
                if !self.scheduler.may_run(job_id) {
                    let device = self.clients[client as usize].device;
                    self.record(TraceKind::OverflowCharge {
                        job: job_id.0,
                        client,
                        device,
                        gpu: d,
                    });
                }
                self.scheduler.cost_state(job_id)
            } else {
                None
            };
            let verdict = self.scheduler.on_gpu_node_done(job_id, node, self.now);
            if let Some((pre_c, threshold)) = pre_cost {
                if let Some((post_c, _)) = self.scheduler.cost_state(job_id) {
                    // A holder whose counter reset just crossed; reconstruct
                    // the pre-reset value for the trace.
                    let crossing = if post_c < pre_c { post_c + threshold } else { post_c };
                    if pre_c < threshold && crossing >= threshold {
                        self.record(TraceKind::CostThreshold {
                            job: job_id.0,
                            client,
                            cumulated: crossing,
                            threshold,
                        });
                    }
                }
            }
            self.apply_verdict(verdict);
            self.schedule_timer();
        }
        // Split borrow across the SoA halves: children come from the cold
        // graph while readiness mutates the hot row — no `Arc` clone.
        let job = &mut self.job_hot[slot];
        let graph = &self.job_cold[slot].graph;
        for &child in graph.children(node) {
            let r = &mut job.remaining_parents[child.index()];
            debug_assert!(*r > 0, "child readiness underflow");
            *r -= 1;
            if *r == 0 {
                job.ready.push_back(child);
            }
        }
        if job.done_nodes == job.total_nodes {
            self.complete_run(job_id);
        } else {
            self.dispatch(job_id);
        }
    }

    // ---- wrap-up -----------------------------------------------------------

    fn finalize(self) -> RunReport {
        let horizon = self.now;
        self.finalize_at(horizon)
    }

    /// [`finalize`](Self::finalize) against an explicit horizon — the
    /// sharded runner passes the global makespan so per-device utilization
    /// denominators agree across groups. `horizon >= self.now` required.
    pub(crate) fn finalize_at(mut self, horizon: SimTime) -> RunReport {
        debug_assert!(horizon >= self.now, "finalize horizon precedes the clock");
        let makespan = horizon;
        // Flush the telemetry tail (remaining boundaries plus the final
        // partial snapshot) before the trace ring is sealed, so burn-rate
        // alerts fired at the end of the run still land on the timeline.
        if self.telemetry.is_on() {
            // Surface the trace ring's drop count before the final snapshot
            // so it is visible in the last (totals) registry row.
            self.telemetry.on_trace_dropped(self.trace.dropped());
            let gauges = self.engine_gauges();
            let alerts = self.telemetry.finalize(makespan, &gauges);
            for a in &alerts {
                self.record_alert(a);
            }
        }
        let mut reports = Vec::with_capacity(self.clients.len());
        for (i, client) in self.clients.iter_mut().enumerate() {
            let outcome = client.outcome.take().unwrap_or(ClientOutcome::Stalled);
            reports.push(ClientReport {
                client: ClientId(i as u32),
                model_name: client.spec.model.name().to_string(),
                batch: client.spec.model.batch(),
                outcome,
                run_finish_times: std::mem::take(&mut client.run_finish_times),
                run_gpu_durations: std::mem::take(&mut client.run_gpu_durations),
                quantum_marks: std::mem::take(&mut client.quantum_marks),
                // Summed across devices: cluster routing may move a
                // client's runs between GPUs (other devices report zero).
                total_gpu: self
                    .devices
                    .iter()
                    .fold(SimDuration::ZERO, |acc, d| acc + d.job_busy(JobTag(i as u64))),
            });
        }
        let device_utilizations: Vec<f64> = self
            .devices
            .iter()
            .map(|d| {
                if makespan > SimTime::ZERO {
                    d.utilization(makespan.max(d.busy_until()))
                } else {
                    0.0
                }
            })
            .collect();
        let utilization = device_utilizations.iter().sum::<f64>()
            / device_utilizations.len().max(1) as f64;
        RunReport {
            clients: reports,
            makespan,
            utilization,
            scheduling_intervals: self.intervals,
            switch_count: self.switch_count,
            kernel_count: self.devices.iter().map(GpuDevice::kernel_count).sum(),
            event_count: self.event_count,
            scheduler_name: self.scheduler.name().to_string(),
            peak_memory: self.memories.iter().map(MemoryPool::peak).sum(),
            device_utilizations,
            trace: self.trace.finish(),
            telemetry: self.telemetry.into_report(makespan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FifoScheduler;

    fn tiny_clients(n: usize, batches: u32) -> Vec<ClientSpec> {
        (0..n)
            .map(|_| ClientSpec::new(models::mini::tiny(4), batches))
            .collect()
    }

    #[test]
    fn single_client_finishes() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert_eq!(report.kernel_count, 16);
        assert!(report.makespan > SimTime::ZERO);
    }

    #[test]
    fn runtime_close_to_serial_gpu_time() {
        // One client, one batch: makespan ≈ decode + Σ(kernel + launch gap).
        let cfg = EngineConfig::default().quiescent();
        let report = run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new());
        let t = report.makespan.as_secs_f64();
        // 16 nodes × (10 µs kernel + 10 µs launch) + 5 µs decode ≈ 325 µs.
        assert!(t > 250e-6 && t < 400e-6, "makespan {t}");
    }

    #[test]
    fn sequential_batches_accumulate() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(1, 5), &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert_eq!(report.clients[0].run_finish_times.len(), 5);
        assert_eq!(report.kernel_count, 5 * 16);
        // Runs are sequential: finish times strictly increase.
        let f = &report.clients[0].run_finish_times;
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_clients_all_finish_and_share_device() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(4, 2), &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert_eq!(report.kernel_count, 4 * 2 * 16);
        for c in &report.clients {
            assert!(c.total_gpu > SimDuration::ZERO);
        }
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = EngineConfig::default();
        let a = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let b = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.finish_times_secs(), b.finish_times_secs());
        assert_eq!(a.kernel_count, b.kernel_count);
        assert_eq!(a.event_count, b.event_count);
    }

    #[test]
    fn different_seed_changes_timeline() {
        let cfg = EngineConfig::default();
        let a = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let b = run_experiment(
            &cfg.with_seed(999),
            tiny_clients(3, 2),
            &mut FifoScheduler::new(),
        );
        assert_ne!(a.makespan, b.makespan);
    }

    #[test]
    fn online_profiling_inflates_makespan() {
        let cfg = EngineConfig::default().quiescent();
        let plain = run_experiment(&cfg, tiny_clients(1, 2), &mut FifoScheduler::new());
        let profiled = run_experiment(
            &cfg.with_online_profiling(0.25),
            tiny_clients(1, 2),
            &mut FifoScheduler::new(),
        );
        let ratio = profiled.makespan.as_secs_f64() / plain.makespan.as_secs_f64();
        assert!(ratio > 1.15 && ratio < 1.35, "inflation ratio {ratio}");
    }

    #[test]
    fn oom_client_is_rejected_others_proceed() {
        let mut cfg = EngineConfig::default();
        // Tiny device: fits one client's weights+activations but not two
        // clients' activations (weights are shared).
        let m = models::mini::tiny(4);
        let need = m.weights_bytes() + m.activation_bytes();
        cfg.device = gpusim::DeviceProfile::custom(
            "toy",
            1.0,
            need + m.activation_bytes() / 2,
            4,
            0.0,
        );
        let report = run_experiment(&cfg, tiny_clients(2, 1), &mut FifoScheduler::new());
        assert_eq!(report.finished_count(), 1);
        assert!(matches!(
            report.clients[1].outcome,
            ClientOutcome::RejectedOom { .. }
        ));
    }

    #[test]
    fn baseline_reports_no_scheduling_intervals() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(2, 1), &mut FifoScheduler::new());
        assert!(report.scheduling_intervals.is_empty());
        assert_eq!(report.switch_count, 0);
        assert_eq!(report.scheduler_name, "tf-serving");
    }

    #[test]
    fn utilization_is_a_fraction() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(3, 3), &mut FifoScheduler::new());
        assert!(report.utilization > 0.1 && report.utilization <= 1.0);
    }

    #[test]
    fn staggered_starts_respected() {
        let cfg = EngineConfig::default();
        let late_start = SimTime::from_millis(10);
        let clients = vec![
            ClientSpec::new(models::mini::tiny(4), 1),
            ClientSpec::new(models::mini::tiny(4), 1).with_start(late_start),
        ];
        let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert!(report.clients[1].finish_time() > late_start);
        assert!(report.clients[0].finish_time() < late_start);
    }

    #[test]
    fn watchdog_trips_on_tiny_budget() {
        let cfg = EngineConfig {
            max_events: 5,
            ..EngineConfig::default()
        };
        // The dyn ProfileBinder inside the lifecycle config keeps the
        // closure from being UnwindSafe; nothing is reused after the panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new())
        }));
        assert!(result.is_err(), "watchdog should panic");
    }

    #[test]
    fn two_devices_place_clients_apart() {
        let cfg = EngineConfig::default().with_device_count(2);
        let report = run_experiment(&cfg, tiny_clients(2, 2), &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert_eq!(report.device_utilizations.len(), 2);
        // Memory-balanced placement puts one client on each device, so both
        // accumulated busy time.
        assert!(report.device_utilizations.iter().all(|&u| u > 0.0));
        for c in &report.clients {
            assert!(c.total_gpu > SimDuration::ZERO);
        }
    }

    #[test]
    fn single_device_report_has_one_utilization() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new());
        assert_eq!(report.device_utilizations.len(), 1);
        assert!((report.device_utilizations[0] - report.utilization).abs() < 1e-12);
    }

    #[test]
    fn telemetry_off_report_is_empty() {
        let cfg = EngineConfig::default();
        let report = run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new());
        assert!(!report.telemetry.enabled);
        assert!(report.telemetry.snapshots.is_empty());
        assert_eq!(report.prometheus_text(), "");
    }

    #[test]
    fn telemetry_snapshot_count_matches_interval_arithmetic() {
        let cfg = EngineConfig::default().with_telemetry(
            telemetry::TelemetryConfig::enabled(SimDuration::from_micros(50)),
        );
        let report = run_experiment(&cfg, tiny_clients(2, 3), &mut FifoScheduler::new());
        let t = &report.telemetry;
        assert!(t.enabled);
        assert_eq!(t.makespan, report.makespan);
        assert_eq!(t.snapshots.len() as u64, t.expected_snapshots());
        assert_eq!(t.snapshots.last().unwrap().at, report.makespan);
        assert_eq!(t.counter("clients_admitted"), Some(2));
        assert_eq!(t.counter("runs_started"), Some(6));
        assert_eq!(t.counter("runs_completed"), Some(6));
        assert_eq!(t.hist("run_latency_us").unwrap().count, 6);
        // Quanta flush at run completion under the baseline scheduler.
        assert_eq!(t.hist("quantum_us").unwrap().count, 6);
        assert_eq!(t.client_models, vec!["mini-tiny".to_string(); 2]);
    }

    #[test]
    fn telemetry_is_deterministic() {
        let cfg = EngineConfig::default().with_telemetry(
            telemetry::TelemetryConfig::enabled(SimDuration::from_micros(100)),
        );
        let a = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let b = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        assert_eq!(a.telemetry_jsonl(), b.telemetry_jsonl());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let cfg = EngineConfig::default();
        let plain = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let telemetered = run_experiment(
            &cfg.with_telemetry(telemetry::TelemetryConfig::enabled(
                SimDuration::from_micros(50),
            )),
            tiny_clients(3, 2),
            &mut FifoScheduler::new(),
        );
        assert_eq!(plain.makespan, telemetered.makespan);
        assert_eq!(plain.finish_times_secs(), telemetered.finish_times_secs());
        assert_eq!(plain.event_count, telemetered.event_count);
    }

    fn chaos_cfg(plan: faults::FaultPlan) -> EngineConfig {
        EngineConfig::default()
            .with_faults(faults::FaultConfig::new(plan))
            .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(
                200,
            )))
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let cfg = EngineConfig::default();
        let plain = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let faulted = run_experiment(
            &cfg.with_faults(faults::FaultConfig::new(faults::FaultPlan::new())),
            tiny_clients(3, 2),
            &mut FifoScheduler::new(),
        );
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.finish_times_secs(), faulted.finish_times_secs());
        assert_eq!(plain.event_count, faulted.event_count);
    }

    #[test]
    fn transient_kernel_faults_retry_to_completion() {
        let cfg = chaos_cfg(faults::FaultPlan::new().with_kernel_failures(0.05));
        let report = run_experiment(&cfg, tiny_clients(2, 2), &mut FifoScheduler::new());
        assert!(report.all_finished(), "moderate fault rate must be survivable");
        let faults = report.telemetry.counter("faults_kernel").unwrap();
        let retries = report.telemetry.counter("kernel_retries").unwrap();
        assert!(faults > 0, "p=0.05 over 64 launches should fire");
        assert_eq!(retries, faults, "every transient fault earns a retry");
    }

    #[test]
    fn persistent_kernel_faults_shed_the_client() {
        let cfg = chaos_cfg(faults::FaultPlan::new().with_kernel_failures(0.97));
        let report = run_experiment(&cfg, tiny_clients(1, 1), &mut FifoScheduler::new());
        let outcome = &report.clients[0].outcome;
        assert!(
            matches!(
                outcome,
                ClientOutcome::RetriesExhausted { .. } | ClientOutcome::CircuitOpen { .. }
            ),
            "expected a shed, got {outcome}"
        );
        assert!(report.telemetry.counter("clients_shed").unwrap() >= 1);
    }

    #[test]
    fn device_stall_window_delays_but_run_completes() {
        let base = EngineConfig::default().quiescent();
        let plain = run_experiment(&base, tiny_clients(1, 1), &mut FifoScheduler::new());
        let stalled = run_experiment(
            &base.with_faults(faults::FaultConfig::new(
                faults::FaultPlan::new()
                    .with_stall(SimTime::from_micros(50), SimTime::from_micros(250)),
            )),
            tiny_clients(1, 1),
            &mut FifoScheduler::new(),
        );
        assert!(stalled.all_finished());
        assert!(
            stalled.makespan > plain.makespan,
            "a mid-run stall must push the makespan out"
        );
    }

    #[test]
    fn slowdown_window_inflates_makespan() {
        let base = EngineConfig::default().quiescent();
        let plain = run_experiment(&base, tiny_clients(1, 1), &mut FifoScheduler::new());
        let slowed = run_experiment(
            &base.with_faults(faults::FaultConfig::new(
                faults::FaultPlan::new().with_slowdown(
                    4.0,
                    SimTime::ZERO,
                    SimTime::from_millis(10),
                ),
            )),
            tiny_clients(1, 1),
            &mut FifoScheduler::new(),
        );
        assert!(slowed.all_finished());
        assert!(slowed.makespan > plain.makespan);
    }

    #[test]
    fn transient_alloc_faults_retry_admission() {
        let cfg = chaos_cfg(faults::FaultPlan::new().with_alloc_failures(0.5));
        let report = run_experiment(&cfg, tiny_clients(2, 1), &mut FifoScheduler::new());
        assert!(report.all_finished(), "admission retries must eventually land");
        assert!(report.telemetry.counter("faults_alloc").unwrap() > 0);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let cfg = chaos_cfg(
            faults::FaultPlan::new()
                .with_kernel_failures(0.1)
                .with_alloc_failures(0.2)
                .with_stall(SimTime::from_micros(100), SimTime::from_micros(300)),
        );
        let a = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        let b = run_experiment(&cfg, tiny_clients(3, 2), &mut FifoScheduler::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.event_count, b.event_count);
        assert_eq!(a.telemetry_jsonl(), b.telemetry_jsonl());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    /// A mini model re-badged under a deployment name, so lifecycle
    /// routing matches the clients that request it.
    fn managed(name: &str) -> models::LoadedModel {
        let m = models::mini::tiny(4);
        models::LoadedModel::from_parts(
            name,
            None,
            m.batch(),
            Arc::clone(m.graph()),
            m.weights_bytes(),
            m.activation_bytes(),
        )
    }

    fn lifecycle_cfg() -> EngineConfig {
        let plan = lifecycle::DeploymentPlan::new()
            .with_model(lifecycle::ModelDeployment::new("svc", managed("svc")));
        EngineConfig::default()
            .with_lifecycle(lifecycle::LifecycleConfig::new(plan))
            .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(
                200,
            )))
    }

    #[test]
    fn lifecycle_client_waits_for_load_then_finishes() {
        let clients = vec![ClientSpec::new(managed("svc"), 3)];
        let report = run_experiment(&lifecycle_cfg(), clients, &mut FifoScheduler::new());
        assert!(report.all_finished());
        let t = &report.telemetry;
        assert_eq!(t.counter("versions_loaded"), Some(1));
        assert!(t.counter("warmup_runs").unwrap() >= 1);
        assert_eq!(t.counter("runs_completed"), Some(3));
    }

    #[test]
    fn lifecycle_run_is_deterministic() {
        let mk = || vec![ClientSpec::new(managed("svc"), 2), ClientSpec::new(managed("svc"), 2)];
        let a = run_experiment(&lifecycle_cfg(), mk(), &mut FifoScheduler::new());
        let b = run_experiment(&lifecycle_cfg(), mk(), &mut FifoScheduler::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.event_count, b.event_count);
        assert_eq!(a.telemetry_jsonl(), b.telemetry_jsonl());
    }

    #[test]
    fn lifecycle_keeps_resident_bytes_under_budget() {
        // Three single-version deployments on a device that fits two
        // models' weights; clients of all three still finish because the
        // manager evicts idle versions.
        let m = managed("a");
        let weights = m.weights_bytes();
        let budget = 2 * weights + 4 * m.activation_bytes() + (64 << 10);
        let plan = lifecycle::DeploymentPlan::new()
            .with_model(lifecycle::ModelDeployment::new("a", managed("a")))
            .with_model(lifecycle::ModelDeployment::new("b", managed("b")))
            .with_model(lifecycle::ModelDeployment::new("c", managed("c")));
        let cfg = EngineConfig {
            device: gpusim::DeviceProfile::custom("lab", 1.0, budget, 8, 0.0),
            ..EngineConfig::default()
        }
        .with_lifecycle(lifecycle::LifecycleConfig::new(plan))
        .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(200)));
        let clients = vec![
            ClientSpec::new(managed("a"), 2),
            ClientSpec::new(managed("b"), 2).with_start(SimTime::from_millis(2)),
            ClientSpec::new(managed("c"), 2).with_start(SimTime::from_millis(4)),
        ];
        let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
        assert!(report.all_finished());
        assert!(report.telemetry.counter("versions_evicted").unwrap() >= 1);
        assert!(report.peak_memory <= budget);
    }

    fn fleet_cfg(policy: cluster::RouterPolicy, names: &[&str]) -> EngineConfig {
        let mut plan = lifecycle::DeploymentPlan::new();
        for n in names {
            plan = plan.with_model(lifecycle::ModelDeployment::new(*n, managed(n)));
        }
        let devices = vec![
            gpusim::DeviceProfile::gtx_1080_ti(),
            gpusim::DeviceProfile::titan_x(),
        ];
        let cc = cluster::ClusterConfig::new(devices, lifecycle::LifecycleConfig::new(plan))
            .with_tick(SimDuration::from_millis(1))
            .with_policy(policy);
        EngineConfig::default()
            .with_cluster(cc)
            .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(200)))
    }

    fn fleet_clients(names: &[&str], batches: u32) -> Vec<ClientSpec> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ClientSpec::new(managed(n), batches)
                    .with_start(SimTime::from_micros(50 * i as u64))
            })
            .collect()
    }

    #[test]
    fn cluster_routes_every_run_and_finishes() {
        let names = ["a", "b", "c"];
        let cfg = fleet_cfg(cluster::RouterPolicy::CostAware, &names);
        let report = run_experiment(&cfg, fleet_clients(&names, 3), &mut FifoScheduler::new());
        assert!(report.all_finished());
        let t = &report.telemetry;
        // Every issue attempt is a route; waits re-route on wake, so the
        // route count is at least the completed-run count.
        assert!(t.counter("cluster_routes").unwrap() >= 9);
        assert_eq!(t.counter("runs_completed"), Some(9));
        assert!(t.counter("versions_loaded").unwrap() >= 3);
        assert_eq!(report.device_utilizations.len(), 2);
    }

    #[test]
    fn cluster_static_policy_pins_models_round_robin() {
        let names = ["a", "b", "c"];
        let mut plan = lifecycle::DeploymentPlan::new();
        for n in names {
            plan = plan.with_model(lifecycle::ModelDeployment::new(n, managed(n)));
        }
        let devices = vec![
            gpusim::DeviceProfile::gtx_1080_ti(),
            gpusim::DeviceProfile::titan_x(),
        ];
        let cc = cluster::ClusterConfig::new(devices, lifecycle::LifecycleConfig::new(plan))
            .with_policy(cluster::RouterPolicy::Static)
            .with_reconfigure(false);
        let cfg = EngineConfig::default()
            .with_cluster(cc)
            .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(200)));
        let report = run_experiment(&cfg, fleet_clients(&names, 2), &mut FifoScheduler::new());
        assert!(report.all_finished());
        // Model a and c pin to device 0, b to device 1: both devices busy.
        assert!(report.device_utilizations.iter().all(|&u| u > 0.0));
        assert_eq!(report.telemetry.counter("cluster_migrations"), Some(0));
        assert_eq!(report.telemetry.counter("cluster_reconfigs"), Some(0));
    }

    #[test]
    fn cluster_run_is_deterministic() {
        let names = ["a", "b", "c", "d"];
        let cfg = fleet_cfg(cluster::RouterPolicy::CostAware, &names);
        let a = run_experiment(&cfg, fleet_clients(&names, 3), &mut FifoScheduler::new());
        let b = run_experiment(&cfg, fleet_clients(&names, 3), &mut FifoScheduler::new());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.event_count, b.event_count);
        assert_eq!(a.telemetry_jsonl(), b.telemetry_jsonl());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    #[test]
    fn cluster_keeps_each_device_under_its_budget() {
        // Devices sized for two of the three models each: serving all
        // three forces evictions/migrations, and the per-device managers'
        // internal budget assertion holds at every allocation.
        let m = managed("a");
        let weights = m.weights_bytes();
        let budget = 2 * weights + 4 * m.activation_bytes() + (64 << 10);
        let mut plan = lifecycle::DeploymentPlan::new();
        for n in ["a", "b", "c"] {
            plan = plan.with_model(lifecycle::ModelDeployment::new(n, managed(n)));
        }
        let devices = vec![
            gpusim::DeviceProfile::custom("lab0", 1.0, budget, 8, 0.0),
            gpusim::DeviceProfile::custom("lab1", 1.2, budget, 8, 0.0),
        ];
        let cc = cluster::ClusterConfig::new(devices, lifecycle::LifecycleConfig::new(plan))
            .with_tick(SimDuration::from_millis(1));
        let cfg = EngineConfig::default()
            .with_cluster(cc)
            .with_telemetry(telemetry::TelemetryConfig::enabled(SimDuration::from_micros(200)));
        let report =
            run_experiment(&cfg, fleet_clients(&["a", "b", "c"], 2), &mut FifoScheduler::new());
        assert!(report.all_finished());
        // Both pools stayed within their caps (peak is summed over pools;
        // each pool individually asserts on over-allocation).
        assert!(report.peak_memory <= 2 * budget);
    }

    #[test]
    fn quiescent_single_client_is_seed_stable_without_wobble() {
        // With clock wobble disabled via a custom device, two different
        // seeds give identical single-client makespans in quiescent mode.
        let cfg = EngineConfig {
            device: gpusim::DeviceProfile::custom("flat", 1.0, 1 << 33, 8, 0.0),
            ..EngineConfig::default().quiescent()
        };
        let a = run_experiment(&cfg.with_seed(1), tiny_clients(1, 1), &mut FifoScheduler::new());
        let b = run_experiment(&cfg.with_seed(2), tiny_clients(1, 1), &mut FifoScheduler::new());
        assert_eq!(a.makespan, b.makespan);
    }
}
