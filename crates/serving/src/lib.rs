#![deny(missing_docs)]

//! The model-serving middleware: a faithful simulation of TF-Serving's
//! execution model on the virtual clock.
//!
//! # Execution model (paper §2, Algorithm 1)
//!
//! Every client runs a sequence of `Session::Run` invocations ("jobs"). A
//! job is executed by a *gang* of CPU worker threads drawn from a shared
//! pool: threads pop ready nodes off the job's BFS queue, execute CPU nodes
//! inline, and manage GPU nodes by submitting a kernel to the driver and
//! blocking until it completes. The simulated GPU driver is a FIFO that has
//! no idea which job a kernel belongs to — exactly the property that makes
//! vanilla TF-Serving's finish times unpredictable (Figure 3).
//!
//! # The scheduler hook surface (paper §3, Algorithm 2)
//!
//! Olympian's extension points appear here as the [`Scheduler`] trait:
//! a yield check before every node ([`Scheduler::may_run`]), a cost update
//! after every GPU node ([`Scheduler::on_gpu_node_done`]), and
//! register/deregister around each job. The baseline [`FifoScheduler`]
//! implements the trait as no-ops, giving stock TF-Serving behaviour; the
//! `olympian` crate provides the real scheduler.
//!
//! ```
//! use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
//!
//! let cfg = EngineConfig::default();
//! let clients = vec![ClientSpec::new(models::mini::tiny(4), 2)];
//! let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
//! assert!(report.clients[0].is_finished());
//! ```

pub mod attrib {
    //! Re-export of the latency-attribution crate: phase decomposition,
    //! cross-request critical paths and run-diff blame over the trace a
    //! run captured, consumed via [`RunReport::attribution`].
    //!
    //! [`RunReport::attribution`]: crate::RunReport::attribution
    pub use ::attrib::*;
}
pub mod batching;
mod client;
pub mod cluster {
    //! Re-export of the fleet-orchestration crate: heterogeneous device
    //! placement, cost-aware request routing and two-cadence min-cost-flow
    //! reconfiguration, consumed via [`EngineConfig::with_cluster`].
    //!
    //! [`EngineConfig::with_cluster`]: crate::EngineConfig::with_cluster
    pub use ::cluster::*;
}
mod config;
pub mod control {
    //! Re-export of the control-plane crate: deadline-aware scheduling
    //! support, the burn-rate degradation ladder and online recalibration
    //! consumed via [`EngineConfig::with_control`].
    //!
    //! [`EngineConfig::with_control`]: crate::EngineConfig::with_control
    pub use ::controlplane::*;
}
mod engine;
pub mod faults {
    //! Re-export of the fault-injection crate: plans, retry policies and
    //! circuit breakers consumed via [`EngineConfig::with_faults`].
    //!
    //! [`EngineConfig::with_faults`]: crate::EngineConfig::with_faults
    pub use ::faults::*;
}
pub mod lifecycle {
    //! Re-export of the model-lifecycle crate: versioned registries,
    //! memory-budgeted residency and canary rollouts consumed via
    //! [`EngineConfig::with_lifecycle`].
    //!
    //! [`EngineConfig::with_lifecycle`]: crate::EngineConfig::with_lifecycle
    pub use ::lifecycle::*;
}
mod report;
mod scheduler;
pub mod shard;
pub mod telemetry;
pub mod tsdb {
    //! Re-export of the embedded time-series store: tiered downsampling
    //! over telemetry, the query layer, the persistent run catalog and
    //! dashboard rendering, consumed via [`RunReport::tsdb`].
    //!
    //! [`RunReport::tsdb`]: crate::RunReport::tsdb
    pub use ::tsdb::*;
}
pub mod trace;
pub mod workload;

pub use client::ClientSpec;
pub use config::EngineConfig;
pub use engine::run_experiment;
pub use report::{ClientOutcome, ClientReport, RunReport};
pub use shard::run_sharded_experiment;
pub use scheduler::{
    ClientId, FifoScheduler, JobCtx, JobId, RegisterError, Scheduler, SchedulerProbe, Verdict,
};
pub use telemetry::{TelemetryConfig, TelemetryReport};
pub use trace::{SwitchReason, TraceConfig, TraceMode};
