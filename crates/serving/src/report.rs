//! Experiment output: everything the figure harness needs.

use crate::scheduler::ClientId;
use simtime::{SimDuration, SimTime};

/// How a client's session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOutcome {
    /// All batches completed; the finish time of the last one.
    Finished(SimTime),
    /// The client could not be admitted: its activations (or its model's
    /// weights) did not fit in GPU memory.
    RejectedOom {
        /// Bytes the admission attempt needed.
        requested: u64,
        /// Bytes that were free.
        available: u64,
    },
    /// The scheduler refused the client's jobs (e.g. missing profile).
    RejectedByScheduler(String),
    /// A `Session::Run` blew through its deadline; the job was cancelled
    /// and the session aborted at this instant.
    DeadlineExceeded(SimTime),
    /// Fault recovery gave up: a kernel (or admission) kept failing past
    /// the retry budget, so the session was shed at this instant.
    RetriesExhausted {
        /// When the session was shed.
        at: SimTime,
        /// Failed attempts accumulated on the operation that gave up.
        attempts: u32,
    },
    /// The client's circuit breaker spent its trip budget: persistent
    /// failures shed the session at this instant.
    CircuitOpen {
        /// When the session was shed.
        at: SimTime,
        /// Breaker trips accumulated before shedding.
        trips: u32,
    },
    /// The control plane's degradation ladder was in its Shedding state
    /// when the client arrived: admission was refused outright to protect
    /// the clients already inside their SLOs.
    AdmissionShed {
        /// When admission was refused.
        at: SimTime,
    },
    /// The run ended with this client unable to make progress (typically
    /// worker-thread starvation under gang-holding schedulers, §4.3).
    Stalled,
}

impl std::fmt::Display for ClientOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientOutcome::Finished(t) => write!(f, "finished at {t}"),
            ClientOutcome::RejectedOom { requested, available } => {
                write!(f, "rejected (OOM: needed {requested} B, {available} B free)")
            }
            ClientOutcome::RejectedByScheduler(why) => {
                write!(f, "rejected by scheduler ({why})")
            }
            ClientOutcome::DeadlineExceeded(t) => write!(f, "deadline exceeded at {t}"),
            ClientOutcome::RetriesExhausted { at, attempts } => {
                write!(f, "retries exhausted at {at} ({attempts} attempts)")
            }
            ClientOutcome::CircuitOpen { at, trips } => {
                write!(f, "circuit open at {at} ({trips} trips)")
            }
            ClientOutcome::AdmissionShed { at } => {
                write!(f, "admission shed at {at}")
            }
            ClientOutcome::Stalled => write!(f, "stalled"),
        }
    }
}

/// Per-client results.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// The client.
    pub client: ClientId,
    /// Model name it queried.
    pub model_name: String,
    /// Batch size.
    pub batch: u64,
    /// How the session ended.
    pub outcome: ClientOutcome,
    /// Finish time of each completed `Session::Run`.
    pub run_finish_times: Vec<SimTime>,
    /// GPU duration of each completed run (the paper's per-run `D_j`).
    pub run_gpu_durations: Vec<SimDuration>,
    /// Completed quanta as `(end time, GPU duration received)`, across the
    /// whole session (Figures 14/16). Empty under the baseline scheduler.
    pub quantum_marks: Vec<(SimTime, SimDuration)>,
    /// Total GPU busy time attributed to the client.
    pub total_gpu: SimDuration,
}

impl ClientReport {
    /// Whether the client finished all batches.
    pub fn is_finished(&self) -> bool {
        matches!(self.outcome, ClientOutcome::Finished(_))
    }

    /// Finish time of the whole session.
    ///
    /// # Panics
    ///
    /// Panics if the client did not finish; check [`is_finished`][Self::is_finished] first.
    pub fn finish_time(&self) -> SimTime {
        match self.outcome {
            ClientOutcome::Finished(t) => t,
            ref other => panic!("client {} did not finish: {other}", self.client),
        }
    }

    /// GPU durations of the completed quanta, without timestamps.
    pub fn quantum_gpu_durations(&self) -> Vec<SimDuration> {
        self.quantum_marks.iter().map(|&(_, d)| d).collect()
    }

    /// Mean per-quantum GPU duration in microseconds, dropping the first and
    /// last quantum of the session (ramp-up and final partial quantum), as
    /// the paper averages "while all jobs are active". Returns `None` when
    /// fewer than three quanta were observed.
    pub fn mean_quantum_us(&self) -> Option<f64> {
        let q = &self.quantum_marks;
        if q.len() < 3 {
            return None;
        }
        let inner = &q[1..q.len() - 1];
        Some(inner.iter().map(|(_, d)| d.as_micros_f64()).sum::<f64>() / inner.len() as f64)
    }

    /// Per-quantum GPU durations in µs, trimmed as in
    /// [`mean_quantum_us`](Self::mean_quantum_us).
    pub fn trimmed_quanta_us(&self) -> Vec<f64> {
        let q = &self.quantum_marks;
        if q.len() < 3 {
            return Vec::new();
        }
        q[1..q.len() - 1].iter().map(|(_, d)| d.as_micros_f64()).collect()
    }

    /// Total GPU duration received in quanta that completed by `horizon` —
    /// the windowed share measurement behind the weighted-sharing analyses.
    pub fn gpu_received_by(&self, horizon: SimTime) -> SimDuration {
        self.quantum_marks
            .iter()
            .filter(|&&(t, _)| t <= horizon)
            .map(|&(_, d)| d)
            .sum()
    }
}

/// Whole-run results.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// One report per client, in client-id order.
    pub clients: Vec<ClientReport>,
    /// When the last client finished (or the run stalled).
    pub makespan: SimTime,
    /// Mean GPU busy fraction over `[0, makespan]` across all devices.
    pub utilization: f64,
    /// Per-device busy fractions (length = number of simulated GPUs).
    pub device_utilizations: Vec<f64>,
    /// Wall durations between consecutive token movements (Figure 12).
    /// Empty under the baseline scheduler.
    pub scheduling_intervals: Vec<SimDuration>,
    /// Number of token movements.
    pub switch_count: u64,
    /// Number of GPU kernels executed.
    pub kernel_count: u64,
    /// Number of simulation events processed.
    pub event_count: u64,
    /// Name of the scheduler that ran.
    pub scheduler_name: String,
    /// Peak GPU memory usage in bytes.
    pub peak_memory: u64,
    /// Structured execution trace; empty unless
    /// [`EngineConfig::trace`](crate::EngineConfig::trace) enabled capture.
    pub trace: crate::trace::Trace,
    /// Live telemetry: snapshots and alerts; empty unless
    /// [`EngineConfig::telemetry`](crate::EngineConfig::telemetry) enabled
    /// capture.
    pub telemetry: crate::telemetry::TelemetryReport,
}

impl RunReport {
    /// Finish times (seconds) of all finished clients, in client order.
    pub fn finish_times_secs(&self) -> Vec<f64> {
        self.clients
            .iter()
            .filter(|c| c.is_finished())
            .map(|c| c.finish_time().as_secs_f64())
            .collect()
    }

    /// Number of clients that finished.
    pub fn finished_count(&self) -> usize {
        self.clients.iter().filter(|c| c.is_finished()).count()
    }

    /// Whether every client finished.
    pub fn all_finished(&self) -> bool {
        self.finished_count() == self.clients.len()
    }

    /// Track metadata for the Chrome-trace exporter: one track per client
    /// (labelled `clientN (model)`) plus one per GPU device.
    pub fn trace_meta(&self) -> crate::trace::TraceMeta {
        crate::trace::TraceMeta {
            client_labels: self
                .clients
                .iter()
                .map(|c| format!("{} ({})", c.client, c.model_name))
                .collect(),
            device_count: self.device_utilizations.len() as u32,
        }
    }

    /// The run's trace as Chrome trace-event JSON, loadable in Perfetto or
    /// `chrome://tracing`. Meaningful only when the run captured a trace.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json(&self.trace, &self.trace_meta())
    }

    /// Decomposes every traced run into latency phases that tile its span
    /// exactly. `horizon` is the hand-off window charged after each token
    /// grant — pass the engine's `switch_latency + launch_overhead`.
    /// Meaningful only when the run captured a trace.
    pub fn attribution(&self, horizon: SimDuration) -> crate::attrib::Attribution {
        crate::attrib::Attribution::from_trace(&self.trace, horizon.as_nanos())
    }

    /// Chrome trace-event JSON with the attribution's phase slices and
    /// highlighted critical path appended as a third process, next to the
    /// client and GPU tracks the plain export carries.
    pub fn chrome_trace_json_with_phases(
        &self,
        attr: &crate::attrib::Attribution,
        path: &crate::attrib::CriticalPath,
    ) -> String {
        let mut doc = crate::trace::chrome_trace(&self.trace, &self.trace_meta());
        if let microjson::Value::Object(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "traceEvents" {
                    if let microjson::Value::Array(events) = value {
                        events.extend(crate::attrib::phase_trace_rows(attr, path));
                    }
                }
            }
        }
        let mut out = String::new();
        doc.write(&mut out);
        out
    }

    /// The run's telemetry as a JSON-lines time series (one self-describing
    /// document per line). Meaningful only when the run captured telemetry.
    pub fn telemetry_jsonl(&self) -> String {
        crate::telemetry::json_lines(&self.telemetry)
    }

    /// The run's final telemetry state as Prometheus text exposition
    /// (version 0.0.4). Empty when the run captured no telemetry.
    pub fn prometheus_text(&self) -> String {
        crate::telemetry::prometheus_text(&self.telemetry)
    }

    /// The run's telemetry ingested into an embedded time-series store:
    /// every counter/gauge/histogram-digest snapshot, per-client GPU
    /// time, the exact per-run latency log and the alert stream, ready
    /// for range/rate/quantile queries, catalog persistence and
    /// dashboards. Empty when the run captured no telemetry.
    pub fn tsdb(&self) -> crate::tsdb::Store {
        crate::tsdb::Store::from_telemetry(&self.telemetry)
    }

    /// Mean scheduling-interval duration in milliseconds, if any.
    pub fn mean_interval_ms(&self) -> Option<f64> {
        if self.scheduling_intervals.is_empty() {
            return None;
        }
        Some(
            self.scheduling_intervals
                .iter()
                .map(|d| d.as_millis_f64())
                .sum::<f64>()
                / self.scheduling_intervals.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_quanta(q: Vec<u64>) -> ClientReport {
        ClientReport {
            client: ClientId(0),
            model_name: "m".into(),
            batch: 1,
            outcome: ClientOutcome::Finished(SimTime::from_millis(1)),
            run_finish_times: vec![],
            run_gpu_durations: vec![],
            quantum_marks: q
                .into_iter()
                .enumerate()
                .map(|(i, d)| (SimTime::from_micros(i as u64), SimDuration::from_micros(d)))
                .collect(),
            total_gpu: SimDuration::ZERO,
        }
    }

    #[test]
    fn mean_quantum_trims_first_and_last() {
        let r = report_with_quanta(vec![5, 100, 120, 110, 7]);
        assert!((r.mean_quantum_us().unwrap() - 110.0).abs() < 1e-9);
        assert_eq!(r.trimmed_quanta_us().len(), 3);
    }

    #[test]
    fn mean_quantum_needs_three() {
        assert_eq!(report_with_quanta(vec![5, 6]).mean_quantum_us(), None);
        assert!(report_with_quanta(vec![1, 2]).trimmed_quanta_us().is_empty());
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn finish_time_of_stalled_panics() {
        let mut r = report_with_quanta(vec![]);
        r.outcome = ClientOutcome::Stalled;
        let _ = r.finish_time();
    }
}
