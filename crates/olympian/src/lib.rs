#![deny(missing_docs)]

//! **Olympian** — the paper's contribution: fair, weighted and prioritized
//! GPU time-slicing for a DNN serving system, built from two mechanisms:
//!
//! 1. **Offline profiling** ([`profiler`], [`profile`]): per-`(model, batch)`
//!    profiles of node costs (`C_j`, TensorFlow cost-model units) and GPU
//!    duration (`D_j`). The *cost-accumulation rate* `C_j / D_j` converts a
//!    target quantum `Q` into a per-job cost threshold
//!    `T_j = Q · C_j / D_j` that can be checked online at zero cost
//!    (paper §3.3). *Overhead-Q curves* map an operator's overhead tolerance
//!    to the smallest acceptable `Q` (Figure 8).
//! 2. **Cooperative co-scheduling** ([`scheduler`], [`policy`]): a token,
//!    rotated by the active policy whenever the holder's accumulated cost
//!    crosses its threshold, decides which job's gang of CPU threads may
//!    proceed; everyone else parks in the yield hook (paper §3.4,
//!    Algorithm 2).
//!
//! The [`threaded`] module demonstrates the same cooperative gang mechanism
//! on real OS threads with condition variables.
//!
//! ```
//! use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
//! use serving::{run_experiment, ClientSpec, EngineConfig};
//! use simtime::SimDuration;
//! use std::sync::Arc;
//!
//! let cfg = EngineConfig::default();
//! let model = models::mini::small(4);
//! let mut store = ProfileStore::new();
//! store.insert(Profiler::new(&cfg).profile(&model));
//!
//! let mut sched = OlympianScheduler::new(
//!     Arc::new(store),
//!     Box::new(RoundRobin::new()),
//!     SimDuration::from_micros(200),
//! );
//! let clients = vec![ClientSpec::new(model.clone(), 2); 3];
//! let report = run_experiment(&cfg, clients, &mut sched);
//! assert!(report.all_finished());
//! assert!(report.switch_count > 0);
//! ```

pub mod deadline;
pub mod drift;
pub mod lifecycle;
pub mod multi;
pub mod oracle;
pub mod policy;
pub mod profile;
pub mod profiler;
pub mod scheduler;
pub mod server;
pub mod threaded;

pub use deadline::{DeadlineMode, DeadlinePolicy};
pub use lifecycle::StoreBinder;
pub use multi::MultiGpuScheduler;
pub use oracle::StoreCostOracle;
pub use policy::{DeficitRoundRobin, Lottery, Policy, Priority, RoundRobin, WeightedFair};
pub use profile::{ModelProfile, ProfileStore};
pub use profiler::{LinearCostModel, OverheadQCurve, Profiler};
pub use scheduler::{OlympianScheduler, QuantumMeter};
pub use server::{OlympianServer, PolicyKind, ServerBuilder};
