//! Offline profiles and their persistent store.

use dataflow::{CostModel, NodeId};
use microjson::Value;
use simtime::SimDuration;
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// The offline profile of one `(model, batch)` configuration.
///
/// Contains everything Olympian's online scheduler needs: the per-node cost
/// table, the total cost `C_j`, and the exclusive-access GPU duration `D_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name (the serving-layer profile key).
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// Per-node measured costs.
    pub costs: CostModel,
    /// Total cost `C_j` (sum of `costs`).
    pub total_cost: u64,
    /// GPU duration `D_j`: total time ≥ 1 node of the job occupied the GPU
    /// during an exclusive-access run.
    pub gpu_duration: SimDuration,
}

impl ModelProfile {
    /// The cost-accumulation rate `C_j / D_j` in cost units per nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the profile recorded zero GPU duration.
    pub fn rate(&self) -> f64 {
        let d = self.gpu_duration.as_nanos();
        assert!(d > 0, "profile for {} has zero GPU duration", self.model);
        self.total_cost as f64 / d as f64
    }

    /// The quantum threshold `T_j = Q · C_j / D_j` (paper §3.3): a job has
    /// consumed one quantum of GPU duration `q` once it accumulates this
    /// much cost.
    ///
    /// A profile with zero GPU duration (a CPU-only model) yields
    /// `u64::MAX`: such a job never consumes GPU quanta, so its turn never
    /// expires on cost — it simply runs to completion and deregisters.
    pub fn threshold(&self, q: SimDuration) -> u64 {
        if self.gpu_duration == SimDuration::ZERO {
            return u64::MAX;
        }
        ((q.as_nanos() as f64 * self.rate()).round() as u64).max(1)
    }

    /// Cost of a single node.
    pub fn node_cost(&self, node: NodeId) -> u64 {
        self.costs.cost(node)
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("model".into(), Value::str(&self.model)),
            ("batch".into(), Value::UInt(self.batch)),
            ("costs".into(), self.costs.to_json()),
            ("total_cost".into(), Value::UInt(self.total_cost)),
            ("gpu_duration".into(), Value::UInt(self.gpu_duration.as_nanos())),
        ])
    }

    fn from_json(v: &Value) -> Result<ModelProfile, microjson::Error> {
        let u64_field = |key: &str| -> Result<u64, microjson::Error> {
            v.field(key)?.as_u64().ok_or_else(|| {
                microjson::Error::decode(format!("field {key:?} is not a non-negative integer"))
            })
        };
        Ok(ModelProfile {
            model: v
                .field("model")?
                .as_str()
                .ok_or_else(|| microjson::Error::decode("field \"model\" is not a string"))?
                .to_string(),
            batch: u64_field("batch")?,
            costs: CostModel::from_json(v.field("costs")?)?,
            total_cost: u64_field("total_cost")?,
            gpu_duration: SimDuration::from_nanos(u64_field("gpu_duration")?),
        })
    }
}

/// Error from loading or saving a profile store.
#[derive(Debug)]
pub enum StoreError {
    /// I/O failure.
    Io(std::io::Error),
    /// Malformed serialized store.
    Format(microjson::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "profile store I/O error: {e}"),
            StoreError::Format(e) => write!(f, "malformed profile store: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<microjson::Error> for StoreError {
    fn from(e: microjson::Error) -> Self {
        StoreError::Format(e)
    }
}

/// A collection of offline profiles keyed by `(model, batch)`.
///
/// Profiles are computed once per model (for a few common batch sizes,
/// with [`crate::LinearCostModel`] interpolating the rest) and persisted —
/// the paper's profiler writes them alongside the servable.
///
/// ```
/// use olympian::{ModelProfile, ProfileStore};
/// use dataflow::CostModel;
/// use simtime::SimDuration;
///
/// let mut store = ProfileStore::new();
/// store.insert(ModelProfile {
///     model: "m".into(),
///     batch: 8,
///     costs: CostModel::from_costs(vec![10, 20]),
///     total_cost: 30,
///     gpu_duration: SimDuration::from_micros(3),
/// });
/// assert!(store.get("m", 8).is_some());
/// assert!(store.get("m", 16).is_none());
/// ```
#[derive(Debug, Default)]
pub struct ProfileStore {
    profiles: HashMap<(String, u64), Arc<ModelProfile>>,
    linear: HashMap<String, crate::profiler::LinearCostModel>,
    /// Profiles registered at model-load time and retired at unload (the
    /// lifecycle manager's per-version cost rates). Interior mutability:
    /// the store is shared `Arc<ProfileStore>` by the time versions load,
    /// so registration must work through `&self`. Never persisted.
    dynamic: std::sync::Mutex<HashMap<(String, u64), Arc<ModelProfile>>>,
    /// Online recalibration layer: rescaled copies installed by
    /// [`override_scaled`](Self::override_scaled) when drift is detected.
    /// Checked *first* by [`resolve`](Self::resolve) — a rebind must win
    /// over the stale base measurement it corrects. Interior mutability
    /// for the same reason as `dynamic`; never persisted.
    overrides: std::sync::Mutex<HashMap<(String, u64), Arc<ModelProfile>>>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a profile, returning the previous one if present.
    pub fn insert(&mut self, profile: ModelProfile) -> Option<Arc<ModelProfile>> {
        self.profiles
            .insert((profile.model.clone(), profile.batch), Arc::new(profile))
    }

    /// Looks up the profile for `(model, batch)`.
    pub fn get(&self, model: &str, batch: u64) -> Option<Arc<ModelProfile>> {
        self.profiles.get(&(model.to_string(), batch)).cloned()
    }

    /// Registers a fitted linear batch-size model so that
    /// [`resolve`](Self::resolve) can serve *any* batch size of `model`
    /// (paper §4.4: profile a few common batch sizes, interpolate the rest).
    pub fn insert_linear(&mut self, linear: crate::profiler::LinearCostModel) {
        self.linear.insert(linear.model().to_string(), linear);
    }

    /// Registers a profile for a dynamically loaded model version. Unlike
    /// [`insert`](Self::insert), this works through `&self` (the store is
    /// already shared when versions load) and the profile is dropped by
    /// [`retire_dynamic`](Self::retire_dynamic), not persisted.
    ///
    /// # Panics
    ///
    /// Panics if the dynamic-section lock is poisoned.
    pub fn register_dynamic(&self, profile: ModelProfile) {
        self.dynamic
            .lock()
            .expect("dynamic profile lock poisoned")
            .insert((profile.model.clone(), profile.batch), Arc::new(profile));
    }

    /// Retires a dynamically registered profile (the version unloaded).
    /// Unknown keys are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the dynamic-section lock is poisoned.
    pub fn retire_dynamic(&self, model: &str, batch: u64) {
        self.dynamic
            .lock()
            .expect("dynamic profile lock poisoned")
            .remove(&(model.to_string(), batch));
    }

    /// Installs a recalibrated copy of the `(model, batch)` profile whose
    /// GPU duration is the *base* profile's duration scaled by
    /// `scale_ppm` parts-per-million (clamped to at least 1 ns). Returns
    /// false when no base profile resolves.
    ///
    /// The scale is always applied to the original measurement, never to a
    /// previous override, so repeated drift alerts converge on the observed
    /// rate instead of compounding. Node costs are untouched: drift models
    /// a *device* running slower, which stretches `D_j` while the profiled
    /// cost totals (TensorFlow cost-model units) stay what they were.
    ///
    /// # Panics
    ///
    /// Panics if the override lock is poisoned.
    pub fn override_scaled(&self, model: &str, batch: u64, scale_ppm: u64) -> bool {
        let Some(base) = self.resolve_base(model, batch) else {
            return false;
        };
        let scaled_ns = ((base.gpu_duration.as_nanos() as u128 * scale_ppm as u128)
            / 1_000_000) as u64;
        let mut rebound = (*base).clone();
        rebound.gpu_duration = SimDuration::from_nanos(scaled_ns.max(1));
        self.overrides
            .lock()
            .expect("override lock poisoned")
            .insert((model.to_string(), batch), Arc::new(rebound));
        true
    }

    /// Drops the recalibration override for `(model, batch)`, if any, so
    /// [`resolve`](Self::resolve) serves the base profile again.
    ///
    /// # Panics
    ///
    /// Panics if the override lock is poisoned.
    pub fn clear_override(&self, model: &str, batch: u64) {
        self.overrides
            .lock()
            .expect("override lock poisoned")
            .remove(&(model.to_string(), batch));
    }

    /// Resolves a profile: a live recalibration override if one is
    /// installed, otherwise an exact measurement, otherwise a live
    /// dynamically registered one, otherwise a prediction from the model's
    /// linear fit, otherwise `None`.
    ///
    /// Predictions are memoized would-be — they are cheap enough (one pass
    /// over the node table) that this returns a fresh `Arc` each call.
    pub fn resolve(&self, model: &str, batch: u64) -> Option<Arc<ModelProfile>> {
        if let Some(p) = self
            .overrides
            .lock()
            .expect("override lock poisoned")
            .get(&(model.to_string(), batch))
        {
            return Some(Arc::clone(p));
        }
        self.resolve_base(model, batch)
    }

    /// [`resolve`](Self::resolve) without the recalibration layer: the
    /// measurement (or prediction) as profiled offline.
    pub fn resolve_base(&self, model: &str, batch: u64) -> Option<Arc<ModelProfile>> {
        if let Some(p) = self.get(model, batch) {
            return Some(p);
        }
        if let Some(p) = self
            .dynamic
            .lock()
            .expect("dynamic profile lock poisoned")
            .get(&(model.to_string(), batch))
        {
            return Some(Arc::clone(p));
        }
        self.linear.get(model).map(|lin| Arc::new(lin.predict(batch)))
    }

    /// Number of registered linear models.
    pub fn linear_count(&self) -> usize {
        self.linear.len()
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates over stored profiles in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ModelProfile>> {
        self.profiles.values()
    }

    /// Serializes the store as JSON to a writer.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O or serialization failure.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), StoreError> {
        let mut items: Vec<&ModelProfile> = self.profiles.values().map(|p| p.as_ref()).collect();
        items.sort_by(|a, b| (&a.model, a.batch).cmp(&(&b.model, b.batch)));
        let doc = Value::Array(items.iter().map(|p| p.to_json()).collect());
        writer.write_all(doc.to_string().as_bytes())?;
        Ok(())
    }

    /// Loads a store previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure or malformed input.
    pub fn load<R: Read>(reader: R) -> Result<ProfileStore, StoreError> {
        let doc = Value::from_reader(reader)?;
        let items = doc
            .as_array()
            .ok_or_else(|| microjson::Error::decode("profile store is not an array"))?;
        let mut store = ProfileStore::new();
        for item in items {
            store.insert(ModelProfile::from_json(item)?);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(model: &str, batch: u64) -> ModelProfile {
        ModelProfile {
            model: model.into(),
            batch,
            costs: CostModel::from_costs(vec![5, 0, 10]),
            total_cost: 15,
            gpu_duration: SimDuration::from_nanos(10),
        }
    }

    #[test]
    fn rate_and_threshold() {
        let p = sample("m", 4);
        assert!((p.rate() - 1.5).abs() < 1e-12);
        assert_eq!(p.threshold(SimDuration::from_nanos(100)), 150);
        assert_eq!(p.threshold(SimDuration::ZERO), 1, "threshold is at least 1");
    }

    #[test]
    fn cpu_only_profile_never_expires() {
        let mut p = sample("cpu", 1);
        p.gpu_duration = SimDuration::ZERO;
        assert_eq!(p.threshold(SimDuration::from_micros(1)), u64::MAX);
    }

    #[test]
    fn store_roundtrip_through_json() {
        let mut store = ProfileStore::new();
        store.insert(sample("a", 1));
        store.insert(sample("b", 2));
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let loaded = ProfileStore::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("a", 1).unwrap().total_cost, 15);
        assert!(loaded.get("a", 2).is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut store = ProfileStore::new();
        store.insert(sample("a", 1));
        let mut newer = sample("a", 1);
        newer.total_cost = 99;
        let old = store.insert(newer);
        assert_eq!(old.unwrap().total_cost, 15);
        assert_eq!(store.get("a", 1).unwrap().total_cost, 99);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn resolve_prefers_exact_then_linear() {
        use crate::profiler::LinearCostModel;
        let mk = |batch: u64| ModelProfile {
            model: "lin".into(),
            batch,
            costs: CostModel::from_costs(vec![10 * batch, 20 * batch]),
            total_cost: 30 * batch,
            gpu_duration: SimDuration::from_nanos(100 * batch),
        };
        let p50 = mk(50);
        let p100 = mk(100);
        let lin = LinearCostModel::fit(&[&p50, &p100]).unwrap();
        let mut store = ProfileStore::new();
        store.insert(p50.clone());
        store.insert_linear(lin);
        assert_eq!(store.linear_count(), 1);
        // Exact hit returns the measurement.
        assert_eq!(store.resolve("lin", 50).unwrap().as_ref(), &p50);
        // Unprofiled batch is predicted.
        let predicted = store.resolve("lin", 75).unwrap();
        assert_eq!(predicted.total_cost, 30 * 75);
        assert_eq!(predicted.gpu_duration, SimDuration::from_nanos(7_500));
        // Unknown model still misses.
        assert!(store.resolve("ghost", 10).is_none());
    }

    #[test]
    fn dynamic_profiles_resolve_until_retired() {
        let mut store = ProfileStore::new();
        store.insert(sample("svc@v1", 4));
        store.register_dynamic(sample("svc@v2", 4));
        // Exact static profiles win; dynamic ones fill the gaps.
        assert!(store.resolve("svc@v1", 4).is_some());
        assert_eq!(store.resolve("svc@v2", 4).unwrap().total_cost, 15);
        assert!(store.resolve("svc@v2", 8).is_none(), "batch must match");
        store.retire_dynamic("svc@v2", 4);
        assert!(store.resolve("svc@v2", 4).is_none());
        // Retiring an unknown key is a no-op.
        store.retire_dynamic("ghost", 1);
        // Dynamic entries are not persisted.
        let mut buf = Vec::new();
        store.register_dynamic(sample("svc@v3", 4));
        store.save(&mut buf).unwrap();
        let loaded = ProfileStore::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.resolve("svc@v3", 4).is_none());
    }

    #[test]
    fn override_scaled_wins_resolve_and_scales_from_base() {
        let store = {
            let mut s = ProfileStore::new();
            s.insert(sample("m", 4)); // gpu_duration 10 ns
            s
        };
        assert!(store.override_scaled("m", 4, 1_400_000), "base exists");
        assert_eq!(
            store.resolve("m", 4).unwrap().gpu_duration,
            SimDuration::from_nanos(14)
        );
        // Costs are untouched; only the duration stretches.
        assert_eq!(store.resolve("m", 4).unwrap().total_cost, 15);
        // A second rebind scales the *base*, not the previous override.
        assert!(store.override_scaled("m", 4, 2_000_000));
        assert_eq!(
            store.resolve("m", 4).unwrap().gpu_duration,
            SimDuration::from_nanos(20)
        );
        // The base layer still serves the original measurement.
        assert_eq!(
            store.resolve_base("m", 4).unwrap().gpu_duration,
            SimDuration::from_nanos(10)
        );
        store.clear_override("m", 4);
        assert_eq!(
            store.resolve("m", 4).unwrap().gpu_duration,
            SimDuration::from_nanos(10)
        );
        // No base profile: the rebind reports failure.
        assert!(!store.override_scaled("ghost", 1, 1_500_000));
    }

    #[test]
    fn override_duration_never_collapses_to_zero() {
        let mut s = ProfileStore::new();
        s.insert(sample("m", 1)); // 10 ns
        assert!(s.override_scaled("m", 1, 1)); // would be 0 ns unclamped
        assert_eq!(
            s.resolve("m", 1).unwrap().gpu_duration,
            SimDuration::from_nanos(1)
        );
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            ProfileStore::load(&b"not json"[..]),
            Err(StoreError::Format(_))
        ));
    }

    #[test]
    #[should_panic(expected = "zero GPU duration")]
    fn zero_duration_rate_panics() {
        let mut p = sample("m", 1);
        p.gpu_duration = SimDuration::ZERO;
        let _ = p.rate();
    }
}
