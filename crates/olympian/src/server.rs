//! A batteries-included server facade.
//!
//! Wires the pieces a deployment needs — offline profiling, Overhead-Q
//! measurement, quantum selection, policy choice, scheduler construction —
//! behind one builder, so the common path is three calls:
//!
//! ```
//! use olympian::server::{PolicyKind, ServerBuilder};
//! use serving::ClientSpec;
//!
//! let model = models::mini::small(4);
//! let mut server = ServerBuilder::new()
//!     .policy(PolicyKind::Fair)
//!     .overhead_tolerance(0.05)
//!     .build_for_models(std::slice::from_ref(&model));
//! let report = server.run(vec![ClientSpec::new(model, 2); 3]);
//! assert!(report.all_finished());
//! ```

use crate::multi::MultiGpuScheduler;
use crate::policy::{DeficitRoundRobin, Lottery, Policy, Priority, RoundRobin, WeightedFair};
use crate::profiler::Profiler;
use crate::profile::ProfileStore;
use crate::scheduler::OlympianScheduler;
use models::LoadedModel;
use serving::{run_experiment, ClientSpec, EngineConfig, RunReport, Scheduler};
use simtime::SimDuration;
use std::sync::Arc;

/// Which scheduling policy the server applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Round-robin fair sharing (the paper's default).
    Fair,
    /// Weighted fair sharing (client weights from [`ClientSpec::weight`]).
    WeightedFair,
    /// Strict priorities (client priorities from [`ClientSpec::priority`]).
    Priority,
    /// Deficit round robin (extension).
    DeficitRoundRobin,
    /// Lottery scheduling with the given draw seed (extension).
    Lottery(u64),
}

impl PolicyKind {
    fn instantiate(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Fair => Box::new(RoundRobin::new()),
            PolicyKind::WeightedFair => Box::new(WeightedFair::new()),
            PolicyKind::Priority => Box::new(Priority::new()),
            PolicyKind::DeficitRoundRobin => Box::new(DeficitRoundRobin::new()),
            PolicyKind::Lottery(seed) => Box::new(Lottery::new(seed)),
        }
    }
}

/// How the server picks its quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
enum QuantumChoice {
    /// Fixed value supplied by the operator.
    Fixed(SimDuration),
    /// Measured from Overhead-Q curves at this tolerance (paper §3.3).
    FromTolerance(f64),
}

/// Builder for an [`OlympianServer`].
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    cfg: EngineConfig,
    policy: PolicyKind,
    quantum: QuantumChoice,
    q_grid: Vec<SimDuration>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerBuilder {
    /// Starts from the default platform (single simulated GTX 1080 Ti),
    /// fair sharing, 2.5% overhead tolerance.
    pub fn new() -> Self {
        ServerBuilder {
            cfg: EngineConfig::default(),
            policy: PolicyKind::Fair,
            quantum: QuantumChoice::FromTolerance(0.025),
            q_grid: [100u64, 200, 400, 800, 1_200, 1_600, 2_400, 4_000, 6_000, 10_000]
                .into_iter()
                .map(SimDuration::from_micros)
                .collect(),
        }
    }

    /// Uses a custom engine configuration (devices, pool, seeds…).
    pub fn engine(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Selects the scheduling policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Pins the quantum instead of deriving it from Overhead-Q curves.
    pub fn fixed_quantum(mut self, q: SimDuration) -> Self {
        self.quantum = QuantumChoice::Fixed(q);
        self
    }

    /// Derives the quantum from Overhead-Q curves at this tolerance
    /// (the default, at 2.5%).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive.
    pub fn overhead_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.quantum = QuantumChoice::FromTolerance(tolerance);
        self
    }

    /// Profiles the given models (each `(model, batch)` once), measures
    /// Overhead-Q curves if the quantum comes from a tolerance, and builds
    /// the server.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn build_for_models(self, models: &[LoadedModel]) -> OlympianServer {
        assert!(!models.is_empty(), "server needs at least one model");
        let profiler = Profiler::new(&self.cfg).with_pair_batches(3);
        let mut store = ProfileStore::new();
        let mut distinct: Vec<&LoadedModel> = Vec::new();
        for m in models {
            if store.get(m.name(), m.batch()).is_none() {
                store.insert(profiler.profile(m));
                distinct.push(m);
            }
        }
        let quantum = match self.quantum {
            QuantumChoice::Fixed(q) => q,
            QuantumChoice::FromTolerance(tol) => {
                let curves: Vec<_> = distinct
                    .iter()
                    .map(|m| profiler.overhead_q_curve(m, &self.q_grid))
                    .collect();
                Profiler::q_for_tolerance(&curves, tol)
                    .unwrap_or_else(|| *self.q_grid.last().expect("non-empty grid"))
            }
        };
        OlympianServer {
            cfg: self.cfg,
            store: Arc::new(store),
            policy: self.policy,
            quantum,
        }
    }
}

/// A ready-to-serve Olympian deployment: profiles measured, quantum chosen,
/// policy fixed. Each [`run`](Self::run) constructs a fresh scheduler, so a
/// server can serve many independent workloads.
#[derive(Debug)]
pub struct OlympianServer {
    cfg: EngineConfig,
    store: Arc<ProfileStore>,
    policy: PolicyKind,
    quantum: SimDuration,
}

impl OlympianServer {
    /// The quantum the server operates at.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The profile store backing admission.
    pub fn profiles(&self) -> &Arc<ProfileStore> {
        &self.store
    }

    /// The configured policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Builds the scheduler this server would run with (multi-GPU aware).
    pub fn make_scheduler(&self) -> Box<dyn Scheduler> {
        if self.cfg.device_count() > 1 {
            let policy = self.policy;
            Box::new(MultiGpuScheduler::new(
                Arc::clone(&self.store),
                move || policy.instantiate(),
                self.quantum,
            ))
        } else {
            Box::new(OlympianScheduler::new(
                Arc::clone(&self.store),
                self.policy.instantiate(),
                self.quantum,
            ))
        }
    }

    /// Serves a workload to completion.
    pub fn run(&mut self, clients: Vec<ClientSpec>) -> RunReport {
        let mut scheduler = self.make_scheduler();
        run_experiment(&self.cfg, clients, scheduler.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_quantum_server_round_trips() {
        let model = models::mini::small(4);
        let mut server = ServerBuilder::new()
            .fixed_quantum(SimDuration::from_micros(250))
            .build_for_models(std::slice::from_ref(&model));
        assert_eq!(server.quantum(), SimDuration::from_micros(250));
        assert_eq!(server.policy(), PolicyKind::Fair);
        let report = server.run(vec![ClientSpec::new(model, 2); 3]);
        assert!(report.all_finished());
        assert!(report.switch_count > 0);
    }

    #[test]
    fn tolerance_quantum_is_measured() {
        let model = models::mini::small(4);
        let server = ServerBuilder::new()
            .overhead_tolerance(0.10)
            .build_for_models(&[model]);
        // A measured quantum from the grid range.
        let q = server.quantum();
        assert!(q >= SimDuration::from_micros(100) && q <= SimDuration::from_micros(10_000));
    }

    #[test]
    fn multi_gpu_server_uses_multi_scheduler() {
        let model = models::mini::small(4);
        let mut server = ServerBuilder::new()
            .engine(EngineConfig::default().with_device_count(2))
            .fixed_quantum(SimDuration::from_micros(200))
            .build_for_models(std::slice::from_ref(&model));
        let report = server.run(vec![ClientSpec::new(model, 2); 4]);
        assert!(report.all_finished());
        assert_eq!(report.device_utilizations.len(), 2);
        assert!(report.scheduler_name.contains("multi"));
    }

    #[test]
    fn server_reuses_across_runs() {
        let model = models::mini::tiny(2);
        let mut server = ServerBuilder::new()
            .fixed_quantum(SimDuration::from_micros(100))
            .policy(PolicyKind::WeightedFair)
            .build_for_models(std::slice::from_ref(&model));
        let a = server.run(vec![ClientSpec::new(model.clone(), 1); 2]);
        let b = server.run(vec![ClientSpec::new(model, 1); 2]);
        assert!(a.all_finished() && b.all_finished());
        assert_eq!(a.makespan, b.makespan, "fresh scheduler per run");
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_model_list_panics() {
        let _ = ServerBuilder::new().build_for_models(&[]);
    }
}
