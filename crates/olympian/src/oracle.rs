//! The control plane's window into the profile store.
//!
//! [`controlplane`] is deliberately ignorant of profiles — it sees GPU
//! costs only through its [`CostOracle`](controlplane::CostOracle) trait.
//! [`StoreCostOracle`] implements that trait over the shared
//! [`ProfileStore`], which gives the engine's control loops exactly two
//! powers: read a model's expected whole-run GPU duration (the laxity
//! estimate), and install a rescaled override when telemetry detects drift
//! (the in-run recalibration path — the scheduler's next `resolve` sees
//! the corrected `D_j` without any run stopping).

use crate::ProfileStore;
use controlplane::CostOracle;
use std::sync::Arc;

/// A [`CostOracle`] over a shared [`ProfileStore`].
#[derive(Debug)]
pub struct StoreCostOracle {
    store: Arc<ProfileStore>,
}

impl StoreCostOracle {
    /// Wraps `store` for the control plane. The same `Arc` should back the
    /// scheduler, so rebinds land where thresholds are computed.
    pub fn new(store: Arc<ProfileStore>) -> Arc<StoreCostOracle> {
        Arc::new(StoreCostOracle { store })
    }
}

impl CostOracle for StoreCostOracle {
    fn expected_gpu_ns(&self, model: &str, batch: u64) -> Option<u64> {
        self.store
            .resolve(model, batch)
            .map(|p| p.gpu_duration.as_nanos())
    }

    fn rebind_scaled(&self, model: &str, batch: u64, scale_ppm: u64) -> bool {
        self.store.override_scaled(model, batch, scale_ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelProfile;
    use dataflow::CostModel;
    use simtime::SimDuration;

    #[test]
    fn oracle_reads_and_rebinds_through_the_store() {
        let mut s = ProfileStore::new();
        s.insert(ModelProfile {
            model: "m".into(),
            batch: 2,
            costs: CostModel::from_costs(vec![100]),
            total_cost: 100,
            gpu_duration: SimDuration::from_micros(50),
        });
        let store = Arc::new(s);
        let oracle = StoreCostOracle::new(Arc::clone(&store));
        assert_eq!(oracle.expected_gpu_ns("m", 2), Some(50_000));
        assert_eq!(oracle.expected_gpu_ns("m", 4), None);
        assert!(oracle.rebind_scaled("m", 2, 1_400_000));
        // The rebind is visible through both the oracle and the store the
        // scheduler resolves against.
        assert_eq!(oracle.expected_gpu_ns("m", 2), Some(70_000));
        assert_eq!(
            store.resolve("m", 2).unwrap().gpu_duration,
            SimDuration::from_micros(70)
        );
        assert!(!oracle.rebind_scaled("ghost", 1, 2_000_000));
    }
}
