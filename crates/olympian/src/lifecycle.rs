//! Profile wiring for the model-lifecycle manager: pre-calibrated
//! per-version cost profiles, registered into the shared [`ProfileStore`]
//! when a version loads and retired when it unloads.
//!
//! The paper's profiler runs *offline* on an idle GPU, so version profiles
//! cannot be measured mid-simulation. [`StoreBinder::calibrate`] profiles
//! every version of a deployment plan up front (as the operator would at
//! model-publish time) and keeps them in a catalog; the lifecycle manager
//! then calls [`bind`](serving::lifecycle::ProfileBinder::bind) /
//! [`unbind`](serving::lifecycle::ProfileBinder::unbind) as versions come
//! and go, which flips the catalog entries into and out of the store's
//! dynamic section. The Olympian scheduler resolves jobs registered under
//! versioned names (`"{name}@v{n}"`) against exactly these entries.

use crate::{ModelProfile, ProfileStore, Profiler};
use serving::lifecycle::{DeploymentPlan, ProfileBinder};
use serving::EngineConfig;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`ProfileBinder`] over a shared [`ProfileStore`]: holds one
/// pre-calibrated profile per `(versioned name, batch)` and registers or
/// retires it as the lifecycle manager loads and unloads versions.
#[derive(Debug)]
pub struct StoreBinder {
    store: Arc<ProfileStore>,
    catalog: HashMap<(String, u64), ModelProfile>,
}

impl StoreBinder {
    /// Profiles every version in `plan` on an idle, quiescent device (the
    /// paper's offline-profiling condition) and returns a binder over
    /// `store`. Profiles are catalogued under versioned names
    /// (`"{name}@v{n}"`), matching the names the manager registers jobs
    /// with.
    pub fn calibrate(
        cfg: &EngineConfig,
        plan: &DeploymentPlan,
        store: Arc<ProfileStore>,
    ) -> Arc<StoreBinder> {
        let profiler = Profiler::new(cfg);
        let mut catalog = HashMap::new();
        for dep in &plan.models {
            for (k, spec) in dep.versions.iter().enumerate() {
                let mut p = profiler.profile(&spec.model);
                p.model = format!("{}@v{}", dep.name, k + 1);
                catalog.insert((p.model.clone(), p.batch), p);
            }
        }
        Arc::new(StoreBinder { store, catalog })
    }

    /// Number of catalogued version profiles.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }
}

impl ProfileBinder for StoreBinder {
    fn bind(&self, versioned_name: &str, batch: u64) {
        if let Some(p) = self.catalog.get(&(versioned_name.to_string(), batch)) {
            self.store.register_dynamic(p.clone());
        }
    }

    fn unbind(&self, versioned_name: &str, batch: u64) {
        self.store.retire_dynamic(versioned_name, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::lifecycle::ModelDeployment;
    use simtime::SimTime;

    fn named(name: &str) -> models::LoadedModel {
        let m = models::mini::tiny(4);
        models::LoadedModel::from_parts(
            name,
            None,
            m.batch(),
            Arc::clone(m.graph()),
            m.weights_bytes(),
            m.activation_bytes(),
        )
    }

    #[test]
    fn calibrate_profiles_every_version_under_its_versioned_name() {
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", named("svc"))
                .with_version(named("svc"), SimTime::from_millis(5)),
        );
        let store = Arc::new(ProfileStore::new());
        let binder = StoreBinder::calibrate(&EngineConfig::default(), &plan, Arc::clone(&store));
        assert_eq!(binder.len(), 2);
        assert!(!binder.is_empty());
        // Nothing resolves until a version binds.
        assert!(store.resolve("svc@v1", 4).is_none());
        binder.bind("svc@v1", 4);
        let p = store.resolve("svc@v1", 4).expect("bound profile resolves");
        assert!(p.total_cost > 0);
        binder.unbind("svc@v1", 4);
        assert!(store.resolve("svc@v1", 4).is_none());
        // Unknown names bind as no-ops.
        binder.bind("ghost@v9", 4);
        assert!(store.resolve("ghost@v9", 4).is_none());
    }
}
