//! Profile drift detection — operational tooling around the paper's
//! "predictability of DNNs" assumption (its §7 reflections call out
//! adaptive re-profiling as the remedy when the assumption erodes).
//!
//! Offline profiles encode a cost-accumulation rate measured once. If the
//! deployment drifts — driver update, thermal regime, a re-exported model —
//! the observed per-quantum GPU duration systematically departs from the
//! configured `Q`. The detector compares observed quanta against `Q` and
//! flags profiles that need re-measurement.
//!
//! The deviation rule itself lives in [`telemetry::drift`], where the
//! *streaming* detector ([`telemetry::DriftDetector`]) applies it online,
//! quantum by quantum, and raises mid-run re-profile alerts. This module
//! is the offline, end-of-run wrapper over the same semantics: same panic
//! conditions, same strict `deviation > tolerance` staleness rule.

use crate::profile::ModelProfile;
use serving::ClientReport;
use simtime::SimDuration;

/// Outcome of a drift check for one client's session.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Model under test.
    pub model: String,
    /// Batch size under test.
    pub batch: u64,
    /// The quantum the scheduler aimed for, in µs.
    pub expected_quantum_us: f64,
    /// Mean observed per-quantum GPU duration, in µs.
    pub observed_mean_us: f64,
    /// Relative deviation `|observed - expected| / expected`.
    pub deviation: f64,
    /// Whether the deviation exceeds the tolerance — time to re-profile.
    pub stale: bool,
}

/// Checks one client's observed quanta against the configured quantum.
///
/// A thin wrapper over [`telemetry::drift::assess`]: validation panics
/// fire before the quanta-count gate, and a session with fewer than
/// `min_quanta.max(3)` quanta is inconclusive (the trimmed mean needs at
/// least one inner quantum).
///
/// Returns `None` when the session produced too few quanta to judge
/// (fewer than `min_quanta`).
///
/// # Panics
///
/// Panics if `tolerance` is not positive or `quantum` is zero.
pub fn detect_drift(
    profile: &ModelProfile,
    quantum: SimDuration,
    report: &ClientReport,
    tolerance: f64,
    min_quanta: usize,
) -> Option<DriftReport> {
    telemetry::drift::validate(quantum, tolerance);
    if report.quantum_marks.len() < min_quanta.max(3) {
        return None;
    }
    let observed = report.mean_quantum_us()?;
    let (deviation, stale) = telemetry::drift::assess(quantum, observed, tolerance);
    Some(DriftReport {
        model: profile.model.clone(),
        batch: profile.batch,
        expected_quantum_us: quantum.as_micros_f64(),
        observed_mean_us: observed,
        deviation,
        stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::CostModel;
    use serving::{ClientId, ClientOutcome};
    use simtime::SimTime;

    fn profile() -> ModelProfile {
        ModelProfile {
            model: "m".into(),
            batch: 8,
            costs: CostModel::from_costs(vec![10]),
            total_cost: 10,
            gpu_duration: SimDuration::from_micros(10),
        }
    }

    fn report_with_quanta(quanta_us: &[u64]) -> ClientReport {
        ClientReport {
            client: ClientId(0),
            model_name: "m".into(),
            batch: 8,
            outcome: ClientOutcome::Finished(SimTime::from_millis(1)),
            run_finish_times: vec![],
            run_gpu_durations: vec![],
            quantum_marks: quanta_us
                .iter()
                .enumerate()
                .map(|(i, &d)| (SimTime::from_micros(i as u64), SimDuration::from_micros(d)))
                .collect(),
            total_gpu: SimDuration::ZERO,
        }
    }

    #[test]
    fn healthy_profile_is_not_stale() {
        let r = report_with_quanta(&[1000, 1010, 990, 1005, 995, 1000]);
        let d = detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.10, 3)
            .expect("enough quanta");
        assert!(!d.stale, "{d:?}");
        assert!(d.deviation < 0.02);
    }

    #[test]
    fn drifted_profile_is_flagged() {
        // Observed quanta 30% above the target: the rate C/D is stale.
        let r = report_with_quanta(&[1300, 1310, 1290, 1305, 1295, 1300]);
        let d = detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.10, 3)
            .expect("enough quanta");
        assert!(d.stale);
        assert!((d.deviation - 0.30).abs() < 0.02, "{d:?}");
        assert_eq!(d.model, "m");
        assert_eq!(d.batch, 8);
    }

    #[test]
    fn too_few_quanta_is_inconclusive() {
        let r = report_with_quanta(&[1000, 1000]);
        assert!(detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.1, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        let r = report_with_quanta(&[1000; 5]);
        detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.0, 3);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        let r = report_with_quanta(&[1000; 5]);
        detect_drift(&profile(), SimDuration::ZERO, &r, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn panics_fire_even_below_the_quanta_gate() {
        // Argument validation precedes the min-quanta check: an empty
        // session with a bad tolerance still panics instead of returning
        // `None`.
        let r = report_with_quanta(&[]);
        detect_drift(&profile(), SimDuration::from_micros(1000), &r, -1.0, 3);
    }

    #[test]
    fn min_quanta_floor_is_three() {
        // `min_quanta` below 3 is clamped up: the trimmed mean needs at
        // least one inner quantum.
        let two = report_with_quanta(&[1000, 1000]);
        assert!(detect_drift(&profile(), SimDuration::from_micros(1000), &two, 0.1, 0).is_none());
        let three = report_with_quanta(&[1000, 1000, 1000]);
        assert!(detect_drift(&profile(), SimDuration::from_micros(1000), &three, 0.1, 0).is_some());
        // A caller-specified floor above 3 is respected as-is.
        let five = report_with_quanta(&[1000; 5]);
        assert!(detect_drift(&profile(), SimDuration::from_micros(1000), &five, 0.1, 6).is_none());
        assert!(detect_drift(&profile(), SimDuration::from_micros(1000), &five, 0.1, 5).is_some());
    }

    #[test]
    fn exactly_at_tolerance_is_fresh() {
        // Staleness is strict: deviation == tolerance does not flag.
        // Inner quanta are all 1100µs against a 1000µs target → 0.10.
        let r = report_with_quanta(&[900, 1100, 1100, 1100, 1300]);
        let d = detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.10, 3)
            .expect("enough quanta");
        assert!((d.deviation - 0.10).abs() < 1e-12, "{d:?}");
        assert!(!d.stale, "exactly-at-tolerance must stay fresh");
        // One µs more and it crosses.
        let r = report_with_quanta(&[900, 1101, 1101, 1101, 1300]);
        let d = detect_drift(&profile(), SimDuration::from_micros(1000), &r, 0.10, 3).unwrap();
        assert!(d.stale);
    }
}
